"""Deterministic shard planning over the SCC condensation.

Sharding splits each condensation level's methods into K partitions that
independent worker groups solve concurrently; summaries and evidence are
exchanged only at the level barrier, exactly where the unsharded
scheduler already merges.  Because every solve within a level reads the
*level-start* summary snapshot and merged outcomes are reassembled in
sorted method-key order before any store mutation, the partition choice
can never change results — it only changes which worker group computed
each outcome.  The planner below is nevertheless fully deterministic so
that per-shard artifacts (timings, blobs, logs) are reproducible too.

The plan is *global*: one assignment covering every method of the
condensation, computed level-major with greedy least-loaded placement
and a stable tie-break.  A global plan lets the process executor build
one long-lived worker group per shard, each shipping only its own
shard's PFGs — the per-group memory footprint shrinks by ~1/K, which is
what makes 100k-method corpora fit.
"""


def resolve_shard_count(shards, jobs):
    """The effective shard count: an explicit ``shards`` wins; the auto
    default derives from the worker count — one shard per two workers,
    capped so small runs keep a single group (no overhead) and large
    runs don't fragment the pool."""
    if shards and shards > 0:
        return int(shards)
    return max(1, min(4, int(jobs) // 2))


def plan_shards(levels, shard_count, key_of):
    """``{method_ref: shard index}`` for every method in ``levels``.

    Level-major, sorted-key order within each level, greedy least-loaded
    assignment with ties broken by the lowest shard index.  Methods of
    the same SCC sit in the same level, so an SCC's Jacobi iterates stay
    within whatever shards its members landed in — the plan only ever
    splits work that the level barrier already synchronizes.
    """
    assignment = {}
    if shard_count <= 1:
        for level in levels:
            for ref in level:
                assignment[ref] = 0
        return assignment
    loads = [0] * shard_count
    for level in levels:
        for ref in sorted(level, key=lambda item: key_of[item]):
            shard = min(range(shard_count), key=lambda s: (loads[s], s))
            assignment[ref] = shard
            loads[shard] += 1
    return assignment
