"""Per-method probabilistic models (paper Definition 1).

``MethodModel`` assembles the factor graph Φ_m for one method: variables
for every PFG node, priors from declared specs (§3.2), logical and
heuristic constraints (§3.3), callee summaries applied at call-site
boundary nodes (APPLYSUMMARY), and caller evidence attached to the
method's own boundary nodes.
"""

import numpy as np

from repro.core.constraints import ConstraintGenerator
from repro.core.pfg import PFGNodeKind
from repro.core.priors import (
    KIND_DOMAIN,
    SpecEnvironment,
    boundary_priors,
)
from repro.factorgraph.factors import Factor
from repro.factorgraph.graph import FactorGraph
from repro.permissions.states import state_space_of_class


class NodeVariables:
    """Creates and caches the kind/state variables of PFG nodes."""

    def __init__(self, graph, program):
        self.graph = graph
        self.program = program
        self._state_domains = {}
        self._kind_vars = {}
        self._state_vars = {}

    def state_domain(self, class_name):
        """The state domain for a class; None when no protocol declared."""
        if class_name is None:
            return None
        if class_name not in self._state_domains:
            decl = self.program.lookup_class(class_name)
            domain = None
            if decl is not None:
                space = state_space_of_class(decl)
                if len(space.states) > 1:
                    domain = tuple(space.states)
            self._state_domains[class_name] = domain
        return self._state_domains[class_name]

    def kind(self, node):
        if node.node_id not in self._kind_vars:
            self._kind_vars[node.node_id] = self.graph.add_variable(
                "n%d.kind" % node.node_id, KIND_DOMAIN
            )
        return self._kind_vars[node.node_id]

    def state(self, node):
        if node.node_id in self._state_vars:
            return self._state_vars[node.node_id]
        domain = self.state_domain(node.class_name)
        variable = None
        if domain is not None:
            variable = self.graph.add_variable(
                "n%d.state" % node.node_id, domain
            )
        self._state_vars[node.node_id] = variable
        return variable


def _prior_vector(variable, prior_dict):
    vector = np.array(
        [prior_dict.get(value, 0.0) for value in variable.domain]
    )
    total = vector.sum()
    if total <= 0:
        return variable.uniform()
    return vector / total


class MethodModel:
    """The factor graph for one method, ready for SOLVE."""

    def __init__(self, program, pfg, config, spec_env=None, summary_store=None):
        self.program = program
        self.pfg = pfg
        self.config = config
        self.spec_env = spec_env or SpecEnvironment(program)
        self.summary_store = summary_store
        self.graph = FactorGraph(
            name=pfg.method_ref.qualified_name if pfg.method_ref else "model"
        )
        self.vars = NodeVariables(self.graph, program)
        self.generator = ConstraintGenerator(
            self.graph, pfg, config, self.vars
        )

    # -- assembly -------------------------------------------------------------------

    def build(self):
        # Materialize variables for every node first.
        for node in self.pfg.nodes:
            self.vars.kind(node)
            self.vars.state(node)
        self._apply_own_spec_priors()
        self._apply_callee_summaries()
        self._apply_caller_evidence()
        self.generator.add_logical()
        self.generator.add_heuristics()
        return self

    def _set_prior(self, node, kind_prior, state_prior):
        if kind_prior is not None:
            variable = self.vars.kind(node)
            variable.prior = _prior_vector(variable, kind_prior)
        if state_prior is not None:
            variable = self.vars.state(node)
            if variable is not None:
                variable.prior = _prior_vector(variable, state_prior)

    def _apply_own_spec_priors(self):
        """Priors on this method's boundary nodes from its own spec."""
        spec = self.spec_env.spec_of(self.pfg.method_ref)
        if spec.is_empty:
            return
        strength = self.config.spec_prior
        for target, node in self.pfg.param_pre.items():
            domain = self.vars.state_domain(node.class_name)
            kind_prior, state_prior = boundary_priors(
                spec, target, True, domain, strength
            )
            self._set_prior(node, kind_prior, state_prior)
        for target, node in self.pfg.param_post.items():
            domain = self.vars.state_domain(node.class_name)
            kind_prior, state_prior = boundary_priors(
                spec, target, False, domain, strength
            )
            self._set_prior(node, kind_prior, state_prior)
        if self.pfg.result_node is not None:
            node = self.pfg.result_node
            domain = self.vars.state_domain(node.class_name)
            kind_prior, state_prior = boundary_priors(
                spec, "result", False, domain, strength
            )
            self._set_prior(node, kind_prior, state_prior)

    def _apply_callee_summaries(self):
        """APPLYSUMMARY: callee specs/summaries become call-node priors."""
        strength = self.config.spec_prior
        for site in self.pfg.call_sites:
            callee = site["callee"]
            spec = None
            if callee is not None:
                spec = self.spec_env.spec_of(callee)
            annotated = spec is not None and not spec.is_empty
            for slot, nodes in (("pre", site["pre"]), ("post", site["post"])):
                for target, node in nodes.items():
                    domain = self.vars.state_domain(node.class_name)
                    if annotated:
                        kind_prior, state_prior = boundary_priors(
                            spec, target, slot == "pre", domain, strength
                        )
                        self._set_prior(node, kind_prior, state_prior)
                    else:
                        self._apply_summary_prior(callee, slot, target, node)
            if site["result"] is not None:
                node = site["result"]
                domain = self.vars.state_domain(node.class_name)
                if annotated:
                    kind_prior, state_prior = boundary_priors(
                        spec, "result", False, domain, strength
                    )
                    self._set_prior(node, kind_prior, state_prior)
                else:
                    self._apply_summary_prior(callee, "result", "result", node)

    def _apply_summary_prior(self, callee, slot, target, node):
        if self.summary_store is None or callee is None:
            return
        summary = self.summary_store.summary_of(callee)
        marginal = summary.get(slot, target)
        if marginal is None:
            return
        self._set_prior(node, marginal.kind, marginal.state)

    def _apply_caller_evidence(self):
        """Evidence factors on our boundary nodes from callers' demands."""
        if self.summary_store is None:
            return
        method_ref = self.pfg.method_ref
        slots = []
        for target, node in self.pfg.param_pre.items():
            slots.append(("pre", target, node))
        for target, node in self.pfg.param_post.items():
            slots.append(("post", target, node))
        if self.pfg.result_node is not None:
            slots.append(("result", "result", self.pfg.result_node))
        for slot, target, node in slots:
            evidence = self.summary_store.evidence_for(method_ref, slot, target)
            if evidence:
                self._add_evidence_factor(node, evidence, slot, target)

    def _add_evidence_factor(self, node, evidence, slot, target):
        """One aggregated evidence factor per boundary node.

        Individual site marginals are combined by geometric mean — the
        *vote direction* of many call sites is preserved (167 ALIVE sites
        outvote 3 HASNEXT sites) while the factor's overall sharpness
        stays bounded, preventing runaway feedback across worklist
        iterations.
        """
        kind_votes = [m.kind for m in evidence if m.kind is not None]
        if kind_votes:
            variable = self.vars.kind(node)
            table = self._geometric_mean(variable, kind_votes)
            self.graph.add_factor(
                Factor("ev/%s/%s/kind" % (slot, target), [variable], table)
            )
        state_votes = [m.state for m in evidence if m.state is not None]
        if state_votes:
            variable = self.vars.state(node)
            if variable is not None:
                state_votes = [
                    vote
                    for vote in state_votes
                    if len(vote) == len(variable.domain)
                ]
                if state_votes:
                    table = self._geometric_mean(variable, state_votes)
                    self.graph.add_factor(
                        Factor(
                            "ev/%s/%s/state" % (slot, target),
                            [variable],
                            table,
                        )
                    )

    @staticmethod
    def _geometric_mean(variable, votes):
        logs = np.zeros(variable.cardinality)
        for vote in votes:
            vector = np.array(
                [max(vote.get(value, 0.0), 1e-6) for value in variable.domain]
            )
            logs += np.log(vector / vector.sum())
        table = np.exp(logs / len(votes))
        return table / table.sum()

    # -- solving ----------------------------------------------------------------------

    def solve(self, max_iters=40, damping=0.1, tolerance=1e-6):
        from repro.factorgraph.sumproduct import run_sum_product

        return run_sum_product(
            self.graph,
            max_iters=max_iters,
            damping=damping,
            tolerance=tolerance,
        )

    def boundary_marginals(self, result):
        """Extract TargetMarginals for this method's boundary nodes."""
        from repro.core.summaries import marginal_from_result

        marginals = {}
        for target, node in self.pfg.param_pre.items():
            marginals[("pre", target)] = marginal_from_result(
                result, self.vars.kind(node), self.vars.state(node)
            )
        for target, node in self.pfg.param_post.items():
            marginals[("post", target)] = marginal_from_result(
                result, self.vars.kind(node), self.vars.state(node)
            )
        if self.pfg.result_node is not None:
            node = self.pfg.result_node
            marginals[("result", "result")] = marginal_from_result(
                result, self.vars.kind(node), self.vars.state(node)
            )
        return marginals

    def callsite_marginals(self, result):
        """Marginals at call-site boundary nodes, for evidence deposits.

        Yields (callee, slot, target, site_key, TargetMarginal) for calls
        into *unannotated* program methods.
        """
        from repro.core.summaries import marginal_from_result

        for index, site in enumerate(self.pfg.call_sites):
            callee = site["callee"]
            if callee is None:
                continue
            if self.spec_env.is_annotated(callee):
                continue
            site_key = (self.pfg.method_ref, index)
            for slot, nodes in (("pre", site["pre"]), ("post", site["post"])):
                for target, node in nodes.items():
                    yield (
                        callee,
                        slot,
                        target,
                        site_key,
                        marginal_from_result(
                            result, self.vars.kind(node), self.vars.state(node)
                        ),
                    )
            if site["result"] is not None:
                node = site["result"]
                yield (
                    callee,
                    "result",
                    "result",
                    site_key,
                    marginal_from_result(
                        result, self.vars.kind(node), self.vars.state(node)
                    ),
                )
