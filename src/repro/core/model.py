"""Per-method probabilistic models (paper Definition 1).

``MethodModel`` assembles the factor graph Φ_m for one method: variables
for every PFG node, priors from declared specs (§3.2), logical and
heuristic constraints (§3.3), callee summaries applied at call-site
boundary nodes (APPLYSUMMARY), and caller evidence attached to the
method's own boundary nodes.

The worklist revisits each method many times with only its *inputs*
(callee summaries, deposited caller evidence) changed, so a model built
once can be reused: ``build(reserve_evidence_slots=True)`` pre-allocates
one (initially uniform, hence neutral) evidence factor per boundary
node, ``refresh`` rewrites just the summary-derived priors and evidence
tables that changed, and ``solve(engine="compiled")`` pushes those
mutated slots into the flat-array kernel and re-sweeps — no constraint
regeneration, no graph reconstruction.  :class:`ModelCache` packages
that lifecycle (plus fingerprint-based solve skipping) for the
inference engines.
"""

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.constraints import ConstraintGenerator
from repro.core.pfg import PFGNodeKind
from repro.core.priors import (
    KIND_DOMAIN,
    SpecEnvironment,
    boundary_priors,
)
from repro.factorgraph.compiled import CompiledGraph
from repro.factorgraph.factors import Factor
from repro.factorgraph.graph import FactorGraph
from repro.permissions.states import state_space_of_class

#: Engines accepted by ``MethodModel.solve`` / ``InferenceSettings.engine``.
ENGINES = ("compiled", "loopy")


class NodeVariables:
    """Creates and caches the kind/state variables of PFG nodes."""

    def __init__(self, graph, program):
        self.graph = graph
        self.program = program
        self._state_domains = {}
        self._kind_vars = {}
        self._state_vars = {}

    def state_domain(self, class_name):
        """The state domain for a class; None when no protocol declared."""
        if class_name is None:
            return None
        if class_name not in self._state_domains:
            decl = self.program.lookup_class(class_name)
            domain = None
            if decl is not None:
                space = state_space_of_class(decl)
                if len(space.states) > 1:
                    domain = tuple(space.states)
            self._state_domains[class_name] = domain
        return self._state_domains[class_name]

    def kind(self, node):
        if node.node_id not in self._kind_vars:
            self._kind_vars[node.node_id] = self.graph.add_variable(
                "n%d.kind" % node.node_id, KIND_DOMAIN
            )
        return self._kind_vars[node.node_id]

    def state(self, node):
        if node.node_id in self._state_vars:
            return self._state_vars[node.node_id]
        domain = self.state_domain(node.class_name)
        variable = None
        if domain is not None:
            variable = self.graph.add_variable(
                "n%d.state" % node.node_id, domain
            )
        self._state_vars[node.node_id] = variable
        return variable


def _prior_vector(variable, prior_dict):
    vector = np.array(
        [prior_dict.get(value, 0.0) for value in variable.domain]
    )
    total = vector.sum()
    if total <= 0:
        return variable.uniform()
    return vector / total


class MethodModel:
    """The factor graph for one method, ready for SOLVE."""

    def __init__(self, program, pfg, config, spec_env=None, summary_store=None):
        self.program = program
        self.pfg = pfg
        self.config = config
        self.spec_env = spec_env or SpecEnvironment(program)
        self.summary_store = summary_store
        self.graph = FactorGraph(
            name=pfg.method_ref.qualified_name if pfg.method_ref else "model"
        )
        self.vars = NodeVariables(self.graph, program)
        self.generator = ConstraintGenerator(
            self.graph, pfg, config, self.vars
        )
        self._compiled = None
        #: (slot, target, axis) -> (factor index, Factor) reserved slots.
        self._evidence_slots = {}
        #: Mutated-since-last-compile bookkeeping for incremental solves.
        self._dirty_priors = set()
        self._dirty_factors = {}

    # -- assembly -------------------------------------------------------------------

    def build(self, reserve_evidence_slots=False):
        """Assemble the factor graph.

        With ``reserve_evidence_slots`` every boundary node gets a
        pre-allocated unary evidence factor (uniform until real evidence
        arrives — a uniform unary factor is the multiplicative identity
        under BP's per-message normalization).  That fixes the graph
        *structure* across worklist visits, so later visits only rewrite
        prior vectors and evidence tables in place.
        """
        # Materialize variables for every node first.
        for node in self.pfg.nodes:
            self.vars.kind(node)
            self.vars.state(node)
        self._apply_own_spec_priors()
        self._apply_callee_summaries()
        if reserve_evidence_slots:
            self._reserve_evidence_slots()
            self._refresh_evidence()
        else:
            self._apply_caller_evidence()
        self.generator.add_logical()
        self.generator.add_heuristics()
        return self

    def refresh(self, summary_store=None):
        """Reapply the mutable inputs of a built model.

        Re-runs APPLYSUMMARY (callee summaries → call-node priors) and
        the caller-evidence aggregation against the current summary
        store, recording exactly which prior vectors and evidence tables
        changed so the compiled kernel can be patched instead of
        rebuilt.  Requires ``build(reserve_evidence_slots=True)``.
        """
        if summary_store is not None:
            self.summary_store = summary_store
        self._apply_callee_summaries()
        self._refresh_evidence()
        return self

    def _write_prior(self, variable, vector):
        if np.array_equal(variable.prior, vector):
            return
        variable.prior = vector
        self._dirty_priors.add(variable.name)

    def _set_prior(self, node, kind_prior, state_prior):
        if kind_prior is not None:
            variable = self.vars.kind(node)
            self._write_prior(variable, _prior_vector(variable, kind_prior))
        if state_prior is not None:
            variable = self.vars.state(node)
            if variable is not None:
                self._write_prior(
                    variable, _prior_vector(variable, state_prior)
                )

    def _apply_own_spec_priors(self):
        """Priors on this method's boundary nodes from its own spec."""
        spec = self.spec_env.spec_of(self.pfg.method_ref)
        if spec.is_empty:
            return
        strength = self.config.spec_prior
        for target, node in self.pfg.param_pre.items():
            domain = self.vars.state_domain(node.class_name)
            kind_prior, state_prior = boundary_priors(
                spec, target, True, domain, strength
            )
            self._set_prior(node, kind_prior, state_prior)
        for target, node in self.pfg.param_post.items():
            domain = self.vars.state_domain(node.class_name)
            kind_prior, state_prior = boundary_priors(
                spec, target, False, domain, strength
            )
            self._set_prior(node, kind_prior, state_prior)
        if self.pfg.result_node is not None:
            node = self.pfg.result_node
            domain = self.vars.state_domain(node.class_name)
            kind_prior, state_prior = boundary_priors(
                spec, "result", False, domain, strength
            )
            self._set_prior(node, kind_prior, state_prior)

    def _apply_callee_summaries(self):
        """APPLYSUMMARY: callee specs/summaries become call-node priors."""
        strength = self.config.spec_prior
        for site in self.pfg.call_sites:
            callee = site["callee"]
            spec = None
            if callee is not None:
                spec = self.spec_env.spec_of(callee)
            annotated = spec is not None and not spec.is_empty
            for slot, nodes in (("pre", site["pre"]), ("post", site["post"])):
                for target, node in nodes.items():
                    domain = self.vars.state_domain(node.class_name)
                    if annotated:
                        kind_prior, state_prior = boundary_priors(
                            spec, target, slot == "pre", domain, strength
                        )
                        self._set_prior(node, kind_prior, state_prior)
                    else:
                        self._apply_summary_prior(callee, slot, target, node)
            if site["result"] is not None:
                node = site["result"]
                domain = self.vars.state_domain(node.class_name)
                if annotated:
                    kind_prior, state_prior = boundary_priors(
                        spec, "result", False, domain, strength
                    )
                    self._set_prior(node, kind_prior, state_prior)
                else:
                    self._apply_summary_prior(callee, "result", "result", node)

    def _apply_summary_prior(self, callee, slot, target, node):
        if self.summary_store is None or callee is None:
            return
        summary = self.summary_store.summary_of(callee)
        marginal = summary.get(slot, target)
        if marginal is None:
            return
        self._set_prior(node, marginal.kind, marginal.state)

    # -- caller evidence ---------------------------------------------------------

    def _boundary_slots(self):
        """(slot, target, node) triples of this method's boundary nodes."""
        slots = []
        for target, node in self.pfg.param_pre.items():
            slots.append(("pre", target, node))
        for target, node in self.pfg.param_post.items():
            slots.append(("post", target, node))
        if self.pfg.result_node is not None:
            slots.append(("result", "result", self.pfg.result_node))
        return slots

    def _apply_caller_evidence(self):
        """Evidence factors on our boundary nodes from callers' demands."""
        if self.summary_store is None:
            return
        method_ref = self.pfg.method_ref
        for slot, target, node in self._boundary_slots():
            evidence = self.summary_store.evidence_for(method_ref, slot, target)
            if evidence:
                self._add_evidence_factor(node, evidence, slot, target)

    def _reserve_evidence_slots(self):
        """Pre-allocate one evidence factor per boundary variable.

        Uniform tables are BP-neutral, so an unused slot never perturbs
        the marginals; with slots fixed up front, evidence arriving on a
        later worklist visit becomes a table rewrite instead of a graph
        change.
        """
        for slot, target, node in self._boundary_slots():
            kind_var = self.vars.kind(node)
            self._reserve_slot(slot, target, "kind", kind_var)
            state_var = self.vars.state(node)
            if state_var is not None:
                self._reserve_slot(slot, target, "state", state_var)

    def _reserve_slot(self, slot, target, axis, variable):
        index = len(self.graph.factors)
        factor = Factor(
            "ev/%s/%s/%s" % (slot, target, axis),
            [variable],
            variable.uniform(),
        )
        self.graph.add_factor(factor)
        self._evidence_slots[(slot, target, axis)] = (index, factor, variable)

    def _refresh_evidence(self):
        """Rewrite reserved evidence tables from the current store."""
        store = self.summary_store
        method_ref = self.pfg.method_ref
        for slot, target, node in self._boundary_slots():
            evidence = (
                store.evidence_for(method_ref, slot, target) if store else []
            )
            kind_table, state_table = self._evidence_tables(node, evidence)
            self._write_evidence(slot, target, "kind", kind_table)
            self._write_evidence(slot, target, "state", state_table)

    def _write_evidence(self, slot, target, axis, table):
        entry = self._evidence_slots.get((slot, target, axis))
        if entry is None:
            return
        index, factor, variable = entry
        if table is None:
            table = variable.uniform()
        if np.array_equal(factor.table, table):
            return
        factor.table = table
        self._dirty_factors[index] = factor

    def _evidence_tables(self, node, evidence):
        """Aggregated (kind, state) evidence tables; None means no votes.

        Individual site marginals are combined by geometric mean — the
        *vote direction* of many call sites is preserved (167 ALIVE sites
        outvote 3 HASNEXT sites) while the factor's overall sharpness
        stays bounded, preventing runaway feedback across worklist
        iterations.
        """
        kind_table = None
        state_table = None
        kind_votes = [m.kind for m in evidence if m.kind is not None]
        if kind_votes:
            kind_table = self._geometric_mean(self.vars.kind(node), kind_votes)
        state_votes = [m.state for m in evidence if m.state is not None]
        if state_votes:
            variable = self.vars.state(node)
            if variable is not None:
                state_votes = [
                    vote
                    for vote in state_votes
                    if len(vote) == len(variable.domain)
                ]
                if state_votes:
                    state_table = self._geometric_mean(variable, state_votes)
        return kind_table, state_table

    def _add_evidence_factor(self, node, evidence, slot, target):
        """One aggregated evidence factor per boundary node (legacy
        non-reserved path: factors exist only where evidence does)."""
        kind_table, state_table = self._evidence_tables(node, evidence)
        if kind_table is not None:
            variable = self.vars.kind(node)
            self.graph.add_factor(
                Factor("ev/%s/%s/kind" % (slot, target), [variable], kind_table)
            )
        if state_table is not None:
            variable = self.vars.state(node)
            self.graph.add_factor(
                Factor(
                    "ev/%s/%s/state" % (slot, target), [variable], state_table
                )
            )

    @staticmethod
    def _geometric_mean(variable, votes):
        logs = np.zeros(variable.cardinality)
        for vote in votes:
            vector = np.array(
                [max(vote.get(value, 0.0), 1e-6) for value in variable.domain]
            )
            logs += np.log(vector / vector.sum())
        table = np.exp(logs / len(votes))
        return table / table.sum()

    # -- solving ----------------------------------------------------------------------

    def solve(self, max_iters=40, damping=0.1, tolerance=1e-6,
              engine="compiled"):
        """SOLVE: run BP over Φ_m with the selected engine.

        ``compiled`` (default) lowers the graph once into the flat-array
        kernel and re-sweeps it, patching only the prior/evidence slots
        mutated since the last solve; ``loopy`` runs the per-message
        reference engine.  Both produce identical marginals.
        """
        if engine == "loopy":
            from repro.factorgraph.sumproduct import run_sum_product

            return run_sum_product(
                self.graph,
                max_iters=max_iters,
                damping=damping,
                tolerance=tolerance,
            )
        if engine != "compiled":
            raise ValueError(
                "unknown engine %r (expected one of %s)"
                % (engine, ", ".join(ENGINES))
            )
        if self._compiled is None:
            try:
                self._compiled = CompiledGraph(self.graph)
            except ValueError as exc:
                warnings.warn(
                    "compiled engine unavailable for %s (%s); using loopy"
                    % (self.graph.name, exc),
                    RuntimeWarning,
                    stacklevel=2,
                )
                return self.solve(
                    max_iters=max_iters,
                    damping=damping,
                    tolerance=tolerance,
                    engine="loopy",
                )
            self._dirty_priors.clear()
            self._dirty_factors.clear()
        else:
            for name in sorted(self._dirty_priors):
                self._compiled.set_prior(
                    name, self.graph.variables[name].prior
                )
            for index in sorted(self._dirty_factors):
                self._compiled.set_table(
                    index, self._dirty_factors[index].table
                )
            self._dirty_priors.clear()
            self._dirty_factors.clear()
        return self._compiled.run(
            max_iters=max_iters,
            tolerance=tolerance,
            damping=damping,
        )

    def boundary_marginals(self, result):
        """Extract TargetMarginals for this method's boundary nodes."""
        from repro.core.summaries import marginal_from_result

        marginals = {}
        for target, node in self.pfg.param_pre.items():
            marginals[("pre", target)] = marginal_from_result(
                result, self.vars.kind(node), self.vars.state(node)
            )
        for target, node in self.pfg.param_post.items():
            marginals[("post", target)] = marginal_from_result(
                result, self.vars.kind(node), self.vars.state(node)
            )
        if self.pfg.result_node is not None:
            node = self.pfg.result_node
            marginals[("result", "result")] = marginal_from_result(
                result, self.vars.kind(node), self.vars.state(node)
            )
        return marginals

    def callsite_marginals(self, result):
        """Marginals at call-site boundary nodes, for evidence deposits.

        Yields (callee, slot, target, site_key, TargetMarginal) for calls
        into *unannotated* program methods.
        """
        from repro.core.summaries import marginal_from_result

        for index, site in enumerate(self.pfg.call_sites):
            callee = site["callee"]
            if callee is None:
                continue
            if self.spec_env.is_annotated(callee):
                continue
            site_key = (self.pfg.method_ref, index)
            for slot, nodes in (("pre", site["pre"]), ("post", site["post"])):
                for target, node in nodes.items():
                    yield (
                        callee,
                        slot,
                        target,
                        site_key,
                        marginal_from_result(
                            result, self.vars.kind(node), self.vars.state(node)
                        ),
                    )
            if site["result"] is not None:
                node = site["result"]
                yield (
                    callee,
                    "result",
                    "result",
                    site_key,
                    marginal_from_result(
                        result, self.vars.kind(node), self.vars.state(node)
                    ),
                )


# ---------------------------------------------------------------------------
# Incremental model reuse across worklist visits
# ---------------------------------------------------------------------------


@dataclass
class ModelVisit:
    """What one worklist visit to a method's model actually did.

    Every consumer reads the visit's ``boundary`` marginals and
    ``deposits`` rather than touching the model/result directly, so a
    visit *replayed* from the persistent cache (``model`` and ``result``
    are then None — no graph was ever materialized) is indistinguishable
    downstream from a solved one.
    """

    model: object
    result: object
    #: True when constraint generation + graph construction ran.
    built: bool
    #: True when the input fingerprint matched and the solve was skipped
    #: entirely (``result`` is the cached previous solve).
    skipped: bool
    build_seconds: float
    solve_seconds: float
    #: {(slot, target): TargetMarginal} for this method's boundary nodes.
    boundary: dict = field(default_factory=dict)
    #: [(callee, slot, target, site_key, TargetMarginal), ...] demand
    #: evidence for unannotated callees.
    deposits: list = field(default_factory=list)
    #: True when the outcome came from the persistent cache — no build,
    #: no refresh, no BP sweep.
    replayed: bool = False
    #: Factors constructed by this visit (0 unless ``built``).
    factor_count: int = 0
    #: Constraint-rule counts of this visit's build (empty unless built).
    constraint_counts: dict = field(default_factory=dict)
    #: True when the solve fell to the prior-only floor of the
    #: resilience ladder (conservative marginals, not cached).
    degraded: bool = False
    #: FailureRecords emitted by the solve guard for this visit.
    failures: list = field(default_factory=list)

    @property
    def reused(self):
        """Solved on a reused model (slot rewrites only, no rebuild)."""
        return not self.built and not self.skipped and not self.replayed


class ModelCache:
    """Caches built MethodModels (plus their compiled kernels) per method.

    The paper's worklist revisits a method whenever its callee summaries
    or incoming caller evidence change; everything else about the model
    is visit-invariant.  The cache therefore:

    * builds each method's model (and compiles its kernel) exactly once;
    * on a revisit, fingerprints the store-derived inputs
      (:func:`repro.core.summaries.method_input_fingerprint`) — if the
      fingerprint is unchanged the previous solve is returned without
      touching the graph at all;
    * otherwise it ``refresh``\\ es the cached model (rewriting only the
      mutated prior/evidence slots) and re-solves.

    With ``reuse=False`` every visit builds a fresh model — the
    pre-cache behaviour, kept for benchmarking and as a bisection aid.

    A bound persistent cache (``cache``, see
    :class:`repro.cache.manager.BoundCache`) adds a third tier: before
    solving, the visit's input fingerprint addresses a stored outcome
    from an earlier run — on a hit the boundary marginals and deposits
    are *replayed* without building or sweeping anything, and because
    each visit is a pure function of its fingerprinted inputs, a
    replayed trajectory is bit-identical to a solved one.
    """

    def __init__(self, program, config, spec_env, engine="compiled",
                 reuse=True, cache=None):
        self.program = program
        self.config = config
        self.spec_env = spec_env
        self.engine = engine
        self.reuse = reuse
        self.cache = cache
        self._entries = {}
        #: Stable method-key memo for fault sites and failure records.
        self._site_keys = {}

    def entry_count(self):
        return len(self._entries)

    def shed(self):
        """Drop every cached model (soft-memory governance).

        Subsequent visits rebuild from scratch; PR 2's guarantee that a
        rebuild is bit-identical to a refresh means shedding can never
        change results — only how much build work is repeated.  Returns
        the number of entries released.
        """
        count = len(self._entries)
        self._entries.clear()
        return count

    def site_key(self, method_ref):
        from repro.java.symbols import method_key

        key = self._site_keys.get(method_ref)
        if key is None:
            key = self._site_keys[method_ref] = method_key(method_ref)
        return key

    def solve(self, method_ref, pfg, summary_store, settings):
        """Run one worklist visit; returns a :class:`ModelVisit`."""
        from repro.core.summaries import method_input_fingerprint

        fingerprint = None
        entry = None
        if self.reuse or self.cache is not None:
            fingerprint = method_input_fingerprint(
                summary_store, self.spec_env, pfg
            )
        if self.reuse:
            entry = self._entries.get(method_ref)
            if (
                entry is not None
                and entry["boundary"] is not None
                and entry["fingerprint"] == fingerprint
            ):
                return ModelVisit(
                    model=entry["model"],
                    result=entry["result"],
                    built=False,
                    skipped=True,
                    build_seconds=0.0,
                    solve_seconds=0.0,
                    boundary=entry["boundary"],
                    deposits=entry["deposits"],
                )
        solve_key = None
        if self.cache is not None:
            solve_key = self.cache.solve_key(method_ref, fingerprint)
            stored = self.cache.load_solve(solve_key)
            if stored is not None:
                boundary, deposits = stored
                if entry is not None:
                    # Keep the built model for later refreshes, but mark
                    # the in-memory result stale: it predates this input.
                    entry["fingerprint"] = fingerprint
                    entry["result"] = None
                    entry["boundary"] = boundary
                    entry["deposits"] = deposits
                elif self.reuse:
                    self._entries[method_ref] = {
                        "model": None,
                        "fingerprint": fingerprint,
                        "result": None,
                        "boundary": boundary,
                        "deposits": deposits,
                    }
                return ModelVisit(
                    model=None,
                    result=None,
                    built=False,
                    skipped=False,
                    build_seconds=0.0,
                    solve_seconds=0.0,
                    boundary=boundary,
                    deposits=deposits,
                    replayed=True,
                )
        from repro.resilience.faults import maybe_fault
        from repro.resilience.guard import guarded_solve

        policy = settings.effective_policy()
        site_key = self.site_key(method_ref)
        built = entry is None or entry["model"] is None
        start = time.perf_counter()
        if built:
            # A lex/parse failure quarantines a *unit* upstream; a crash
            # here (constraint generation / graph assembly) propagates to
            # the caller, which quarantines just this *method*.
            if policy.enabled:
                maybe_fault("constraints", site_key)
            model = MethodModel(
                self.program,
                pfg,
                self.config,
                spec_env=self.spec_env,
                summary_store=summary_store,
            ).build(reserve_evidence_slots=self.reuse)
            # Factor-graph ceiling: a degenerate method (giant body,
            # dense protocol use) whose graph would swamp the BP engines
            # is quarantined before any sweep runs.
            policy.limits.check(
                "max_graph_factors",
                "graph-factors",
                model.graph.factor_count + model.graph.variable_count,
                site_key,
            )
            if self.reuse:
                if entry is None:
                    entry = self._entries[method_ref] = {
                        "model": model,
                        "fingerprint": None,
                        "result": None,
                        "boundary": None,
                        "deposits": None,
                    }
                else:
                    entry["model"] = model
        else:
            model = entry["model"]
            model.refresh(summary_store)
        build_seconds = time.perf_counter() - start
        start = time.perf_counter()
        result, guard_record, degraded = guarded_solve(
            model, settings, policy, site_key, self.engine
        )
        solve_seconds = time.perf_counter() - start
        boundary = model.boundary_marginals(result)
        deposits = list(model.callsite_marginals(result))
        if entry is not None:
            if degraded:
                # A degraded outcome is not a pure function of the
                # visit's fingerprinted inputs (the fault may not refire)
                # — never serve it from the skip path.
                entry["fingerprint"] = None
                entry["result"] = None
                entry["boundary"] = None
                entry["deposits"] = None
            else:
                entry["fingerprint"] = fingerprint
                entry["result"] = result
                entry["boundary"] = boundary
                entry["deposits"] = deposits
        if solve_key is not None and not degraded:
            self.cache.store_solve(solve_key, boundary, deposits)
        return ModelVisit(
            model=model,
            result=result,
            built=built,
            skipped=False,
            build_seconds=build_seconds,
            solve_seconds=solve_seconds,
            boundary=boundary,
            deposits=deposits,
            factor_count=model.graph.factor_count if built else 0,
            constraint_counts=dict(model.generator.counts) if built else {},
            degraded=degraded,
            failures=[guard_record] if guard_record is not None else [],
        )
