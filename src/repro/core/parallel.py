"""Parallel ANEK-INFER: level-synchronous scheduling over the call graph.

The paper's modularity claim is that probabilistic method summaries are
the *only* channel between per-method models, so independent methods can
be solved concurrently.  This module makes that operational:

* the call graph is condensed into SCC levels
  (:func:`repro.analysis.callgraph.condensation_levels`) — methods in
  the same level share no cross-SCC summary dependency;
* each round walks the levels callee-first; every level's models are
  solved concurrently against a *snapshot* of the summary store taken at
  the start of the level;
* the solved marginals are merged back in sorted method-key order, so
  the final summaries (and therefore every downstream marginal) are
  independent of task completion order.

Three interchangeable executors drive the level solves — ``serial``
(inline), ``thread`` (:class:`~concurrent.futures.ThreadPoolExecutor`)
and ``process`` (:class:`~concurrent.futures.ProcessPoolExecutor`, true
parallelism).  All three run the *same* schedule, exchange the *same*
picklable payloads, and merge in the *same* order, which is the
determinism guarantee the differential test suite
(``tests/test_parallel_differential.py``) locks in: marginals agree
bit-for-bit across executors.

Rounds repeat until either the round budget derived from
``InferenceSettings.max_worklist_iters`` is exhausted or a round leaves
every summary and every piece of caller evidence unchanged.  Later
rounds only re-solve *dirty* methods — those whose own summary, callee
summaries, or incoming evidence changed — mirroring the sequential
worklist's re-enqueue rule.  Intra-SCC (recursive) summary edges resolve
across rounds, Jacobi style.
"""

import math
import multiprocessing
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.analysis.callgraph import condensation_levels
from repro.core.model import ModelCache
from repro.core.shardplan import plan_shards, resolve_shard_count
from repro.core.pfg_builder import build_pfg
from repro.core.priors import SpecEnvironment
from repro.core.summaries import (
    SummaryStore,
    TargetMarginal,
    clip_marginal,
    satisfaction_evidence,
)
from repro.resilience.faults import maybe_fault
from repro.resilience.report import FailureRecord, record_from_exception

#: Executors accepted by ``InferenceSettings.executor``.  ``worklist`` is
#: the sequential reference engine (paper Figure 9); the other three run
#: the level-synchronous schedule above.
EXECUTORS = ("worklist", "serial", "thread", "process")

#: The subset of :data:`EXECUTORS` that runs the scheduled engine.
SCHEDULED_EXECUTORS = ("serial", "thread", "process")


def resolve_jobs(jobs):
    """Worker count: ``jobs`` if positive, else the machine's CPU count."""
    if jobs and jobs > 0:
        return int(jobs)
    return os.cpu_count() or 1


@dataclass
class MethodSolveOutcome:
    """Picklable result of solving one method's model.

    Marginals travel as plain ``(kind, state)`` dict payloads
    (:meth:`TargetMarginal.to_payload`) and methods as stable string keys
    (:func:`repro.java.symbols.method_key`), so an outcome can cross a
    process boundary and re-attach to the parent's ASTs.
    """

    key: str
    boundary: list  # [((slot, target), marginal payload), ...]
    deposits: list  # [(callee key, slot, target, site key, payload), ...]
    #: Factors constructed by this visit: the model's factor count when a
    #: build ran, else 0 — a reused model regenerates no constraints.
    factor_count: int
    constraint_counts: dict
    built: bool = True
    skipped: bool = False
    #: True when the outcome was replayed from the persistent cache.
    replayed: bool = False
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Resilience outcomes: the method was dropped (constraint-generation
    #: crash) / fell to prior-only marginals / the FailureRecords either
    #: way.  Records are plain dataclasses, so they pickle across the
    #: process boundary inside the outcome.
    quarantined: bool = False
    degraded: bool = False
    failures: list = field(default_factory=list)


def solve_method_to_outcome(
    program, method_ref, key, pfg, config, settings, spec_env, store, key_of,
    models=None,
):
    """SOLVE one method (via its cached model when ``models`` is given);
    every executor funnels through this single code path so
    floating-point behaviour cannot diverge."""
    if models is None:
        models = ModelCache(
            program, config, spec_env, engine=settings.engine, reuse=False
        )
    policy = settings.effective_policy()
    try:
        visit = models.solve(method_ref, pfg, store, settings)
    except Exception as exc:
        if not policy.enabled:
            raise
        # Constraint generation (or the model machinery around it)
        # crashed.  Report a quarantined outcome instead of letting the
        # exception take down the level (thread executor) or the whole
        # chunk (process executor).
        return MethodSolveOutcome(
            key=key,
            boundary=[],
            deposits=[],
            factor_count=0,
            constraint_counts={},
            built=False,
            quarantined=True,
            failures=[
                record_from_exception(
                    "constraints", key, exc, "method-quarantined"
                )
            ],
        )
    boundary = [
        (slot_target, marginal.to_payload())
        for slot_target, marginal in visit.boundary.items()
    ]
    deposits = []
    for callee, slot, target, site_key, marginal in visit.deposits:
        caller_ref, site_index = site_key
        deposits.append(
            (
                key_of[callee],
                slot,
                target,
                (key_of[caller_ref], site_index),
                marginal.to_payload(),
            )
        )
    return MethodSolveOutcome(
        key=key,
        boundary=boundary,
        deposits=deposits,
        factor_count=visit.factor_count,
        constraint_counts=visit.constraint_counts,
        built=visit.built,
        skipped=visit.skipped,
        replayed=visit.replayed,
        build_seconds=visit.build_seconds,
        solve_seconds=visit.solve_seconds,
        degraded=visit.degraded,
        failures=list(visit.failures),
    )


# ---------------------------------------------------------------------------
# Process-pool worker side
# ---------------------------------------------------------------------------

#: Per-worker state, installed once by the pool initializer.
_WORKER = None


def _process_worker_init(blob):
    """Unpickle the program once per worker and index it by method key.

    The blob carries the parent's already-built PFGs: pickling them is an
    order of magnitude cheaper than re-lowering every method in every
    worker, and ``pickle`` memoization keeps them attached to the same
    unpickled AST objects as the worker's program copy.
    """
    global _WORKER
    program, config, settings, pfgs_by_key, cache_spec = pickle.loads(blob)
    table = program.method_key_table()
    spec_env = SpecEnvironment(program)
    bound_cache = None
    if cache_spec is not None:
        # Each worker re-opens the store from its picklable spec; writes
        # are atomic renames, so concurrent workers never tear entries.
        from repro.cache.manager import AnalysisCache

        bound_cache = AnalysisCache.from_spec(cache_spec).bind(
            program, config, settings
        )
    _WORKER = {
        "program": program,
        "config": config,
        "settings": settings,
        "spec_env": spec_env,
        "table": table,
        "key_of": {ref: key for key, ref in table.items()},
        "pfgs": pfgs_by_key,
        # Worker-local model cache: a method re-solved by this worker in a
        # later round reuses its built model.  Refreshes depend only on
        # store *content*, so worker-local caches cannot change results —
        # only how much build work each worker repeats.
        "models": ModelCache(
            program,
            config,
            spec_env,
            engine=settings.engine,
            reuse=settings.reuse_models,
            cache=bound_cache,
        ),
    }


def _process_solve_chunk(keys, store_payload):
    """Solve a chunk of one level's methods inside a worker process."""
    state = _WORKER
    store = SummaryStore.from_payload(store_payload, state["table"])
    policy = state["settings"].effective_policy()
    outcomes = []
    for key in keys:
        if policy.enabled:
            # The worker-crash site: ``kill`` faults simulate a
            # segfaulting worker, ``delay`` a hung one, ``raise`` an
            # in-worker crash — each surfaces in the parent as a failed
            # chunk and exercises the pool-recovery path.
            maybe_fault("worker", key)
        ref = state["table"][key]
        pfg = state["pfgs"].get(key)
        if pfg is None:  # pragma: no cover - defensive; blob ships all PFGs
            pfg = state["pfgs"][key] = build_pfg(state["program"], ref)
        outcomes.append(
            solve_method_to_outcome(
                state["program"],
                ref,
                key,
                pfg,
                state["config"],
                state["settings"],
                state["spec_env"],
                store,
                state["key_of"],
                models=state["models"],
            )
        )
    return outcomes


# ---------------------------------------------------------------------------
# Executor backends
# ---------------------------------------------------------------------------


class _SerialBackend:
    """Inline execution: the deterministic reference for the schedule.

    Solving only *reads* the summary store and merging happens strictly
    after the level completes, so the live store is passed straight
    through — the payload round-trip is pure copying and the process
    backend's reconstruction yields value-identical dicts, keeping the
    three executors' floats equal.
    """

    name = "serial"

    def __init__(self, scheduler):
        self.scheduler = scheduler

    def solve_level(self, keys, store):
        return [self.scheduler.solve_local(key, store) for key in keys]

    def close(self):
        pass


class _ThreadBackend:
    """Thread-pool execution (shared ASTs, GIL-bound but overlap-capable)."""

    name = "thread"

    def __init__(self, scheduler, jobs):
        self.scheduler = scheduler
        self.pool = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="anek-infer"
        )

    def solve_level(self, keys, store):
        futures = [
            self.pool.submit(self.scheduler.solve_local, key, store)
            for key in keys
        ]
        # Collect in submission order: completion order never leaks out.
        return [future.result() for future in futures]

    def close(self):
        self.pool.shutdown()


class _ProcessBackend:
    """Process-pool execution: true parallelism across CPU cores.

    The backend survives worker death: a chunk whose future raises
    (``BrokenProcessPool`` after a killed worker, ``TimeoutError`` after
    a hang past ``policy.worker_timeout``, or an in-worker crash) is
    requeued onto a freshly rebuilt pool, up to ``policy.worker_retries``
    rebuilds per level.  If the pool keeps collapsing, the backend
    degrades *permanently* to solving in-parent on the serial path —
    same single solve code path, so the recovered marginals are
    bit-identical to what a healthy pool would have produced.
    """

    name = "process"

    def __init__(self, scheduler, jobs, blob):
        self.scheduler = scheduler
        self.jobs = jobs
        self.blob = blob
        self.policy = scheduler.settings.effective_policy()
        self.failures = scheduler.inference.failures
        #: Permanent in-parent fallback after repeated pool collapse.
        self.serial_fallback = False
        if "fork" in multiprocessing.get_all_start_methods():
            self.context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            self.context = multiprocessing.get_context()
        self.pool = self._make_pool()

    def _make_pool(self):
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=self.context,
            initializer=_process_worker_init,
            initargs=(self.blob,),
        )

    def _kill_pool(self):
        """Tear the pool down hard — hung workers never finish, so a
        graceful shutdown would block forever."""
        pool, self.pool = self.pool, None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead races
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken-pool races
            pass

    def _solve_in_parent(self, chunks, store, by_key):
        """The last-resort path: solve a chunk's methods inline via the
        scheduler's local entry — identical maths, zero processes."""
        for chunk in chunks:
            for key in chunk:
                outcome = self.scheduler.solve_local(key, store)
                by_key[outcome.key] = outcome

    def solve_level(self, keys, store):
        store_payload = store.to_payload(self.scheduler.key_of)
        # One chunk per worker bounds the per-level IPC round-trips.
        chunks = [c for c in (keys[i :: self.jobs] for i in range(self.jobs)) if c]
        by_key = {}
        timeout = self.policy.worker_timeout or None
        if not self.policy.enabled:
            futures = [
                self.pool.submit(_process_solve_chunk, chunk, store_payload)
                for chunk in chunks
            ]
            for future in futures:
                for outcome in future.result():
                    by_key[outcome.key] = outcome
            return [by_key[key] for key in keys]
        pending = chunks
        rebuilds = 0
        while pending:
            if self.serial_fallback or self.pool is None:
                self._solve_in_parent(pending, store, by_key)
                break
            submitted = [
                (chunk, self.pool.submit(_process_solve_chunk, chunk,
                                         store_payload))
                for chunk in pending
            ]
            failed = []
            first_error = None
            for chunk, future in submitted:
                try:
                    for outcome in future.result(timeout=timeout):
                        by_key[outcome.key] = outcome
                except Exception as exc:
                    failed.append(chunk)
                    if first_error is None:
                        first_error = exc
            if not failed:
                break
            # Some chunk died or hung: the pool's workers are suspect
            # either way (a BrokenProcessPool poisons every future; a
            # hung worker never frees its slot), so rebuild from scratch.
            self._kill_pool()
            rebuilds += 1
            requeued_keys = ",".join(k for chunk in failed for k in chunk)
            if rebuilds > self.policy.worker_retries:
                self.serial_fallback = True
                self.failures.add(
                    FailureRecord(
                        stage="worker",
                        key=requeued_keys,
                        error=type(first_error).__name__,
                        message="process pool collapsed %d times; running "
                        "remaining methods in-parent (%s)"
                        % (rebuilds, first_error),
                        disposition="executor-degraded",
                        retries=self.policy.worker_retries,
                    )
                )
                self._solve_in_parent(failed, store, by_key)
                break
            self.failures.add(
                FailureRecord(
                    stage="worker",
                    key=requeued_keys,
                    error=type(first_error).__name__,
                    message="worker failure (%s); pool rebuilt, %d method(s) "
                    "requeued" % (first_error,
                                  sum(len(c) for c in failed)),
                    disposition="worker-restarted",
                    retries=rebuilds,
                )
            )
            # The orchestrator-kill site of the chaos harness: a
            # ``killproc`` here SIGKILLs the parent mid-recovery, after
            # the old pool is torn down but before its replacement
            # exists — the worst moment for a preemption to land.
            maybe_fault("worker-recover", requeued_keys)
            self.pool = self._make_pool()
            pending = failed
        return [by_key[key] for key in keys]

    def close(self):
        if self.pool is not None:
            self.pool.shutdown()


# ---------------------------------------------------------------------------
# The level-synchronous scheduler
# ---------------------------------------------------------------------------


class LevelScheduler:
    """Runs ANEK-INFER as a level-synchronous schedule over one program."""

    def __init__(self, inference):
        self.inference = inference
        self.program = inference.program
        self.config = inference.config
        self.settings = inference.settings
        self.table = self.program.method_key_table()
        self.key_of = {ref: key for key, ref in self.table.items()}
        #: The global shard plan ({method_ref: shard index}), installed
        #: by :meth:`run` before any backend is built.
        self.shard_of = {}

    # -- worker entry for serial/thread backends ------------------------------

    def solve_local(self, key, store):
        ref = self.table[key]
        return solve_method_to_outcome(
            self.program,
            ref,
            key,
            self.inference.pfgs[ref],
            self.config,
            self.settings,
            self.inference.spec_env,
            store,
            self.key_of,
            models=self.inference.models,
        )

    # -- backend construction --------------------------------------------------

    def make_backend(self, jobs):
        """A single (unsharded) backend; kept as the one-group case."""
        return self.make_backend_groups(jobs, 1)[0]

    def make_backend_groups(self, jobs, shard_count):
        """One backend per shard.

        Serial and thread executors share a single backend object across
        every shard (a thread pool is safely driven from several parent
        threads at once); the process executor builds one *independent
        process group* per shard, each initialized with only its own
        shard's PFGs, so a group's resident footprint shrinks with the
        shard count.
        """
        executor = self.settings.executor
        if executor == "serial":
            return [_SerialBackend(self)] * shard_count
        if executor == "thread":
            return [_ThreadBackend(self, jobs)] * shard_count
        bound_cache = self.inference.cache
        cache_spec = (
            bound_cache.cache.spec() if bound_cache is not None else None
        )
        shard_pfgs = [{} for _ in range(shard_count)]
        for ref in sorted(self.inference.pfgs, key=lambda r: self.key_of[r]):
            shard = self.shard_of.get(ref, 0) if shard_count > 1 else 0
            shard_pfgs[shard][self.key_of[ref]] = self.inference.pfgs[ref]
        blobs = []
        try:
            for pfgs_by_key in shard_pfgs:
                blobs.append(
                    pickle.dumps(
                        (
                            self.program,
                            self.config,
                            self.settings,
                            pfgs_by_key,
                            cache_spec,
                        ),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                )
        except Exception as exc:
            warnings.warn(
                "process executor unavailable (%s: %s); falling back to "
                "threads" % (type(exc).__name__, exc),
                RuntimeWarning,
                stacklevel=2,
            )
            return [_ThreadBackend(self, jobs)] * shard_count
        # Workers are split across the groups as evenly as possible;
        # every group gets at least one.
        base, extra = divmod(max(jobs, shard_count), shard_count)
        return [
            _ProcessBackend(
                self, base + (1 if index < extra else 0), blobs[index]
            )
            for index in range(shard_count)
        ]

    # -- the schedule ----------------------------------------------------------

    def run(self, manager=None, resume_state=None):
        inference = self.inference
        settings = self.settings
        stats = inference.stats
        start = time.perf_counter()
        methods = inference._initialize()
        self._results = {}
        resume_extra = None
        if resume_state is not None:
            # Restore *before* building the levels: a method the earlier
            # run quarantined at the PFG stage must be absent from the
            # condensation (as it was then), keeping the round budget and
            # the schedule identical across the resume boundary.
            self._results, resume_extra = inference._apply_resume_state(
                resume_state
            )
            methods = [ref for ref in methods if ref in inference.pfgs]
        results = {}
        if methods:
            levels, scc_count = condensation_levels(
                inference.call_graph,
                methods,
                sort_key=lambda ref: self.key_of[ref],
            )
            stats.levels = len(levels)
            stats.sccs = scc_count
            jobs = resolve_jobs(settings.jobs)
            shard_count = resolve_shard_count(settings.shards, jobs)
            stats.shards = shard_count
            self.shard_of = plan_shards(levels, shard_count, self.key_of)
            groups = self.make_backend_groups(jobs, shard_count)
            try:
                self._run_rounds(levels, groups, manager, resume_extra)
            finally:
                for backend in {id(b): b for b in groups}.values():
                    backend.close()
            stats.executor = groups[0].name
            stats.jobs = jobs
            results = self._results
        else:
            stats.executor = settings.executor
            stats.jobs = resolve_jobs(settings.jobs)
            stats.shards = resolve_shard_count(
                settings.shards, stats.jobs
            )
        stats.elapsed_seconds = time.perf_counter() - start
        return results

    def _solve_level(self, groups, targets, keys, store):
        """Solve one level across the shard groups; returns the outcomes
        in canonical (sorted method-key) order plus a per-shard trace.

        Every shard solves against the same level-start store — merges
        happen strictly after all shards return, in canonical order — so
        the outcome set is independent of the shard count.  Shard groups
        run concurrently on parent threads (each process group drives
        its own pool, retries included); the serial executor drives its
        shards sequentially, preserving its inline semantics.
        """
        if len(groups) == 1:
            level_start = time.perf_counter()
            outcomes = groups[0].solve_level(keys, store)
            trace = [
                {
                    "shard": 0,
                    "methods": len(keys),
                    "seconds": time.perf_counter() - level_start,
                }
            ]
            return outcomes, trace
        shard_keys = [[] for _ in groups]
        for ref, key in zip(targets, keys):
            shard_keys[self.shard_of.get(ref, 0)].append(key)
        populated = [
            (index, chunk)
            for index, chunk in enumerate(shard_keys)
            if chunk
        ]
        by_key = {}
        trace = []
        errors = []
        lock = threading.Lock()

        def drive(shard_index, chunk):
            shard_start = time.perf_counter()
            try:
                outcomes = groups[shard_index].solve_level(chunk, store)
            except BaseException as exc:
                with lock:
                    errors.append(exc)
                return
            with lock:
                for outcome in outcomes:
                    by_key[outcome.key] = outcome
                trace.append(
                    {
                        "shard": shard_index,
                        "methods": len(chunk),
                        "seconds": time.perf_counter() - shard_start,
                    }
                )

        if self.settings.executor == "serial":
            for shard_index, chunk in populated:
                drive(shard_index, chunk)
        else:
            threads = [
                threading.Thread(
                    target=drive,
                    args=(shard_index, chunk),
                    name="anek-shard-%d" % shard_index,
                )
                for shard_index, chunk in populated
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        trace.sort(key=lambda entry: entry["shard"])
        return [by_key[key] for key in keys], trace

    def _run_rounds(self, levels, groups, manager=None, resume=None):
        inference = self.inference
        stats = inference.stats
        store = inference.summaries
        method_count = sum(len(level) for level in levels)
        max_iters = self.settings.resolved_max_iters(method_count)
        rounds = max(1, math.ceil(max_iters / max(method_count, 1)))
        dirty = set(ref for level in levels for ref in level)
        start_round, resume_level = 1, None
        round_changed_seed = None
        if resume:
            # Snapshots record the position *after* level (round, level)
            # merged, plus both dirty sets; re-entering there re-executes
            # the remaining levels exactly as the uninterrupted run
            # would have (merges happen in sorted method-key order, so
            # the schedule is the only state that matters).
            start_round = resume["round"]
            resume_level = resume["level"]
            dirty = {
                self.table[key] for key in resume["dirty"] if key in self.table
            }
            round_changed_seed = {
                self.table[key]
                for key in resume["round_changed"]
                if key in self.table
            }
        for round_index in range(start_round, rounds + 1):
            if round_changed_seed is not None:
                round_changed = round_changed_seed
                round_changed_seed = None
            else:
                round_changed = set()
            for level_index, level in enumerate(levels):
                if (
                    resume_level is not None
                    and round_index == start_round
                    and level_index <= resume_level
                ):
                    continue
                targets = [
                    ref
                    for ref in level
                    if ref in dirty and ref in inference.pfgs
                ]
                if not targets:
                    continue
                keys = [self.key_of[ref] for ref in targets]
                level_start = time.perf_counter()
                outcomes, shard_trace = self._solve_level(
                    groups, targets, keys, store
                )
                for outcome in outcomes:
                    self._merge_outcome(outcome, round_changed)
                stats.solves += len(targets)
                entry = {
                    "round": round_index,
                    "level": level_index,
                    "methods": len(targets),
                    "seconds": time.perf_counter() - level_start,
                }
                if len(groups) > 1:
                    entry["shards"] = shard_trace
                stats.schedule.append(entry)
                if manager is not None:
                    extra = {
                        "round": round_index,
                        "level": level_index,
                        "dirty": sorted(
                            self.key_of[ref]
                            for ref in dirty
                            if ref in self.key_of
                        ),
                        "round_changed": sorted(
                            self.key_of[ref]
                            for ref in round_changed
                            if ref in self.key_of
                        ),
                    }
                    manager.barrier(
                        "round:%d:level:%d" % (round_index, level_index),
                        lambda extra=extra: manager.encode(
                            self._results, extra=extra
                        ),
                    )
            stats.rounds = round_index
            dirty = round_changed
            if not dirty:
                break

    def _merge_outcome(self, outcome, round_changed):
        """Fold one solved model back into the shared state.

        Outcomes arrive in sorted method-key order (the backends preserve
        submission order), so every store mutation below happens in the
        same sequence on every executor.
        """
        inference = self.inference
        stats = inference.stats
        store = inference.summaries
        confidence = self.config.summary_confidence
        ref = self.table[outcome.key]
        if outcome.quarantined:
            # The method died during constraint generation: drop it from
            # inference and give it a conservative empty boundary.  Its
            # summaries/deposits are never touched, so neighbours solve
            # exactly as if the method had no body.
            inference.quarantine_method(ref, outcome.failures[0])
            self._results[ref] = {}
            return
        if outcome.failures:
            inference.failures.extend(outcome.failures)
        if outcome.degraded:
            stats.degraded += 1
        boundary = {
            slot_target: TargetMarginal.from_payload(payload)
            for slot_target, payload in outcome.boundary
        }
        self._results[ref] = boundary
        if outcome.built:
            # Constraint generation ran: count its factors exactly once.
            stats.builds += 1
            stats.factors += outcome.factor_count
            for rule, count in outcome.constraint_counts.items():
                stats.constraint_counts[rule] = (
                    stats.constraint_counts.get(rule, 0) + count
                )
        elif outcome.skipped:
            stats.skips += 1
        elif outcome.replayed:
            stats.replays += 1
        else:
            stats.reuses += 1
        stats.build_seconds += outcome.build_seconds
        stats.solve_seconds += outcome.solve_seconds
        own_changed = False
        for (slot, target), marginal in boundary.items():
            capped = clip_marginal(marginal, confidence)
            if store.update(ref, slot, target, capped):
                own_changed = True
        if own_changed:
            round_changed.add(ref)
            round_changed.update(inference._callers_of.get(ref, []))
        for callee_key, slot, target, site_key, payload in outcome.deposits:
            marginal = TargetMarginal.from_payload(payload)
            if slot == "pre":
                marginal = satisfaction_evidence(marginal)
            capped = clip_marginal(marginal, confidence)
            callee = self.table[callee_key]
            if store.deposit_evidence(callee, slot, target, site_key, capped):
                if callee in inference.method_set:
                    round_changed.add(callee)


def run_scheduled(inference, manager=None, resume_state=None):
    """Entry point used by :meth:`AnekInference.run` for non-worklist
    executors.  ``manager``/``resume_state`` thread the durable run
    layer (checkpoint barriers after each level's merge, resume from a
    recorded ``(round, level)`` position)."""
    return LevelScheduler(inference).run(
        manager=manager, resume_state=resume_state
    )
