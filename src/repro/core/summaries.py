"""Probabilistic method summaries (paper §3.4).

A summary holds, for each boundary target of a method (``this`` and each
parameter, pre and post, plus ``result``), the current marginal
distribution of its kind and state variables.  Summaries are the *only*
channel of information between per-method models, which is what makes
ANEK-INFER modular:

* ``APPLYSUMMARY`` — a callee's summary becomes priors on the call-site
  boundary nodes inside the caller's model;
* callers in turn deposit *evidence* (their marginals for those call-site
  nodes) into the callee's summary store, so demand flows back — this is
  how the paper's createColIter example aggregates the 167 ALIVE votes
  against the 3 HASNEXT votes.
"""

import numpy as np


def _as_dict(domain, vector):
    return {value: float(p) for value, p in zip(domain, vector)}


def _max_delta(old, new):
    if old is None:
        return 1.0
    keys = set(old) | set(new)
    return max(abs(old.get(key, 0.0) - new.get(key, 0.0)) for key in keys)


class TargetMarginal:
    """Marginals for one boundary node: kind and (optional) state."""

    __slots__ = ("kind", "state")

    def __init__(self, kind=None, state=None):
        self.kind = kind  # dict value -> prob, or None
        self.state = state  # dict value -> prob, or None

    def to_payload(self):
        """A plain, picklable ``(kind, state)`` pair of dicts."""
        kind = dict(self.kind) if self.kind is not None else None
        state = dict(self.state) if self.state is not None else None
        return (kind, state)

    @classmethod
    def from_payload(cls, payload):
        kind, state = payload
        return cls(kind=kind, state=state)

    def delta(self, other):
        if other is None:
            return 1.0
        deltas = []
        if self.kind is not None or other.kind is not None:
            deltas.append(_max_delta(other.kind, self.kind or {}))
        if self.state is not None or other.state is not None:
            deltas.append(_max_delta(other.state, self.state or {}))
        return max(deltas) if deltas else 0.0


class MethodSummary:
    """The probabilistic summary of one method."""

    def __init__(self, method_ref):
        self.method_ref = method_ref
        self.pre = {}  # target -> TargetMarginal
        self.post = {}  # target -> TargetMarginal
        self.result = None  # TargetMarginal or None

    def get(self, slot, target):
        if slot == "pre":
            return self.pre.get(target)
        if slot == "post":
            return self.post.get(target)
        if slot == "result":
            return self.result
        raise ValueError("unknown summary slot %r" % slot)

    def set(self, slot, target, marginal):
        """Store a marginal; returns the change magnitude."""
        old = self.get(slot, target)
        delta = marginal.delta(old)
        if slot == "pre":
            self.pre[target] = marginal
        elif slot == "post":
            self.post[target] = marginal
        else:
            self.result = marginal
        return delta


class SummaryStore:
    """All summaries plus cross-method caller evidence."""

    def __init__(self, change_threshold=1e-3):
        self.change_threshold = change_threshold
        self._summaries = {}
        # (callee, slot, target) -> {site_key: TargetMarginal}
        self._evidence = {}

    def summary_of(self, method_ref):
        if method_ref not in self._summaries:
            self._summaries[method_ref] = MethodSummary(method_ref)
        return self._summaries[method_ref]

    def peek(self, method_ref):
        """Like :meth:`summary_of` but never creates an entry — safe for
        read-only passes (fingerprinting) that must not mutate the store."""
        return self._summaries.get(method_ref)

    def update(self, method_ref, slot, target, marginal):
        """UPDATESUMMARY: store and report whether it changed materially."""
        summary = self.summary_of(method_ref)
        delta = summary.set(slot, target, marginal)
        return delta > self.change_threshold

    def deposit_evidence(self, callee, slot, target, site_key, marginal):
        """Record a caller's marginal for one of the callee's boundary
        nodes; returns True when it changed materially."""
        bucket = self._evidence.setdefault((callee, slot, target), {})
        old = bucket.get(site_key)
        delta = marginal.delta(old)
        bucket[site_key] = marginal
        return delta > self.change_threshold

    def evidence_for(self, callee, slot, target):
        """All deposited caller marginals for one boundary node."""
        return list(self._evidence.get((callee, slot, target), {}).values())

    # -- fingerprint tokens (incremental model reuse) --------------------------

    def summary_token(self, method_ref):
        """An equality token of one method's current summary content.

        Exact floats, emitted in the store's deterministic insertion
        order; an empty or missing summary tokenizes to ``()`` (creating
        an empty summary must not look like a change).
        """
        summary = self._summaries.get(method_ref)
        if summary is None:
            return ()
        parts = []
        for target, marginal in summary.pre.items():
            parts.append(("pre", target, _marginal_token(marginal)))
        for target, marginal in summary.post.items():
            parts.append(("post", target, _marginal_token(marginal)))
        if summary.result is not None:
            parts.append(("result", "result", _marginal_token(summary.result)))
        return tuple(parts)

    def evidence_token(self, callee, slot, target):
        """An equality token of one boundary node's evidence bucket,
        including the per-site breakdown (vote order matters to the
        geometric-mean aggregation)."""
        bucket = self._evidence.get((callee, slot, target))
        if not bucket:
            return ()
        return tuple(
            (site_key, _marginal_token(marginal))
            for site_key, marginal in bucket.items()
        )

    def evidence_count(self):
        return sum(len(bucket) for bucket in self._evidence.values())

    # -- picklable exchange (parallel ANEK-INFER) -------------------------------

    def to_payload(self, key_of):
        """Serialize the store into plain picklable data.

        ``key_of`` maps MethodRefs to stable string keys (see
        :func:`repro.java.symbols.method_key`); site keys are passed
        through unchanged, so the scheduled engine must use key-based
        site keys.  Entries are emitted in insertion order, keeping the
        payload — and everything rebuilt from it — deterministic.
        """
        summaries = []
        for method_ref, summary in self._summaries.items():
            summaries.append(
                (
                    key_of[method_ref],
                    (
                        [
                            (target, marginal.to_payload())
                            for target, marginal in summary.pre.items()
                        ],
                        [
                            (target, marginal.to_payload())
                            for target, marginal in summary.post.items()
                        ],
                        summary.result.to_payload()
                        if summary.result is not None
                        else None,
                    ),
                )
            )
        evidence = []
        for (callee, slot, target), bucket in self._evidence.items():
            evidence.append(
                (
                    (key_of[callee], slot, target),
                    [
                        (site_key, marginal.to_payload())
                        for site_key, marginal in bucket.items()
                    ],
                )
            )
        return {
            "change_threshold": self.change_threshold,
            "summaries": summaries,
            "evidence": evidence,
        }

    @classmethod
    def from_payload(cls, payload, ref_of):
        """Rebuild a store from :meth:`to_payload` data.

        ``ref_of`` maps string keys back to MethodRefs in the *current*
        process (e.g. ``program.method_key_table()``), so a payload can
        cross a process boundary and re-attach to that process's ASTs.
        """
        store = cls(change_threshold=payload["change_threshold"])
        for key, (pre, post, result) in payload["summaries"]:
            summary = store.summary_of(ref_of[key])
            for target, marginal in pre:
                summary.pre[target] = TargetMarginal.from_payload(marginal)
            for target, marginal in post:
                summary.post[target] = TargetMarginal.from_payload(marginal)
            if result is not None:
                summary.result = TargetMarginal.from_payload(result)
        for (callee_key, slot, target), bucket in payload["evidence"]:
            dest = store._evidence.setdefault(
                (ref_of[callee_key], slot, target), {}
            )
            for site_key, marginal in bucket:
                dest[site_key] = TargetMarginal.from_payload(marginal)
        return store


def _dist_token(dist):
    if dist is None:
        return None
    return tuple(dist.items())


def _marginal_token(marginal):
    if marginal is None:
        return None
    return (_dist_token(marginal.kind), _dist_token(marginal.state))


def method_input_fingerprint(store, spec_env, pfg):
    """Token of everything the store feeds into one method's model.

    Covers the two mutable inputs of a built model — the summaries of
    *unannotated* callees at each call site (APPLYSUMMARY priors) and
    the evidence buckets on the method's own boundary nodes.  Annotated
    callees and the method's own spec contribute static priors and are
    deliberately excluded.  Equal fingerprints ⇒ a refresh would rewrite
    nothing ⇒ the previous solve result is still exact, so the worklist
    visit can skip the solve entirely.
    """
    sites = []
    for site in pfg.call_sites:
        callee = site["callee"]
        if callee is None or spec_env.is_annotated(callee):
            sites.append(None)
        else:
            sites.append(store.summary_token(callee))
    evidence = []
    method_ref = pfg.method_ref
    slots = [("pre", target) for target in pfg.param_pre]
    slots += [("post", target) for target in pfg.param_post]
    if pfg.result_node is not None:
        slots.append(("result", "result"))
    for slot, target in slots:
        evidence.append(
            (slot, target, store.evidence_token(method_ref, slot, target))
        )
    return (tuple(sites), tuple(evidence))


def marginal_from_result(result, kind_var, state_var):
    """Build a TargetMarginal from a BP result's variable marginals."""
    kind = None
    state = None
    if kind_var is not None:
        kind = _as_dict(kind_var.domain, result.marginals[kind_var.name])
    if state_var is not None:
        state = _as_dict(state_var.domain, result.marginals[state_var.name])
    return TargetMarginal(kind=kind, state=state)


def satisfaction_evidence(marginal):
    """Transform a caller's supply marginal into precondition evidence.

    A caller holding kind ``s`` can discharge any required kind ``k``
    with ``s ⊒ k``, and has no objection at all to requiring nothing.
    The evidence for the callee's pre-node value ``k`` is therefore the
    probability that the caller's supply satisfies ``k``:

        f(k)    = Σ_{s satisfies k} m(s)        f(none) = 1

    This keeps demand inference driven by the callee's *body* (the paper's
    logical constraints) while callers only veto requirements they could
    not meet — and prevents the weak-kind echo that raw supply marginals
    would feed back.  State evidence stays raw: state votes are the
    ALIVE-vs-HASNEXT counting of the paper's introduction.
    """
    from repro.permissions import kinds as kind_rules

    if marginal.kind is None:
        return marginal
    supply = marginal.kind
    evidence = {}
    for required in kind_rules.ALL_KINDS:
        evidence[required] = sum(
            supply.get(held, 0.0)
            for held in kind_rules.ALL_KINDS
            if kind_rules.satisfies(held, required)
        )
    evidence["none"] = 1.0
    total = sum(evidence.values())
    evidence = {key: value / total for key, value in evidence.items()}
    return TargetMarginal(kind=evidence, state=marginal.state)


def clip_marginal(marginal, confidence):
    """Cap a marginal's certainty (paper-style B(0.9) discipline).

    Prevents runaway feedback when summaries echo between caller and
    callee models across worklist iterations.
    """

    def clip(dist):
        if dist is None:
            return None
        values = np.array(list(dist.values()))
        values = np.clip(values, 1.0 - confidence, confidence)
        values = values / values.sum()
        return {key: float(v) for key, v in zip(dist.keys(), values)}

    return TargetMarginal(kind=clip(marginal.kind), state=clip(marginal.state))
