"""Inference diagnostics: explain *why* a spec was inferred.

``explain_method`` builds one method's PFG and probabilistic model,
solves it, and renders a report showing, per PFG node, the most likely
permission kind and abstract state with their probabilities, plus the
constraint counts and the spec the extraction step would emit.  This is
the tool a user reaches for when ANEK infers something surprising.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.extract import extract_method_spec
from repro.core.heuristics import HeuristicConfig
from repro.core.model import MethodModel
from repro.core.pfg_builder import build_pfg


@dataclass
class NodeDiagnostic:
    """The solved beliefs at one PFG node."""

    node_id: int = 0
    kind: str = ""
    label: str = ""
    best_kind: str = ""
    kind_probability: float = 0.0
    best_state: Optional[str] = None
    state_probability: float = 0.0


@dataclass
class MethodDiagnostics:
    """The full explanation for one method."""

    qualified_name: str = ""
    nodes: List[NodeDiagnostic] = field(default_factory=list)
    constraint_counts: dict = field(default_factory=dict)
    variables: int = 0
    factors: int = 0
    bp_iterations: int = 0
    bp_converged: bool = False
    spec: object = None

    def render(self):
        lines = ["Inference explanation for %s" % self.qualified_name]
        lines.append(
            "  model: %d variables, %d factors; BP %s after %d sweeps"
            % (
                self.variables,
                self.factors,
                "converged" if self.bp_converged else "stopped",
                self.bp_iterations,
            )
        )
        lines.append(
            "  constraints: "
            + ", ".join(
                "%s=%d" % (rule, count)
                for rule, count in sorted(self.constraint_counts.items())
            )
        )
        lines.append("  beliefs per PFG node:")
        for node in self.nodes:
            state_text = ""
            if node.best_state is not None:
                state_text = "  in %s (%.2f)" % (
                    node.best_state,
                    node.state_probability,
                )
            lines.append(
                "    [%2d] %-30s %-9s (%.2f)%s"
                % (
                    node.node_id,
                    node.label,
                    node.best_kind,
                    node.kind_probability,
                    state_text,
                )
            )
        lines.append("  extracted spec: %s" % self.spec)
        return "\n".join(lines)


def explain_method(program, method_ref, config=None, threshold=0.5,
                   summary_store=None):
    """Solve one method's model in isolation and explain the outcome.

    With ``summary_store`` the explanation includes whatever summaries /
    caller evidence an ongoing inference has accumulated; without it the
    method is explained standalone (annotated-API priors only).
    """
    config = config or HeuristicConfig()
    pfg = build_pfg(program, method_ref)
    model = MethodModel(
        program, pfg, config, summary_store=summary_store
    ).build()
    result = model.solve()
    diagnostics = MethodDiagnostics(
        qualified_name=method_ref.qualified_name,
        constraint_counts=dict(model.generator.counts),
        variables=model.graph.variable_count,
        factors=model.graph.factor_count,
        bp_iterations=result.iterations,
        bp_converged=result.converged,
    )
    for node in pfg.nodes:
        kind_var = model.vars.kind(node)
        best_kind, kind_prob = result.most_likely(kind_var)
        entry = NodeDiagnostic(
            node_id=node.node_id,
            kind=node.kind,
            label=node.label,
            best_kind=best_kind,
            kind_probability=kind_prob,
        )
        state_var = model.vars.state(node)
        if state_var is not None:
            best_state, state_prob = result.most_likely(state_var)
            entry.best_state = best_state
            entry.state_probability = state_prob
        diagnostics.nodes.append(entry)
    boundary = model.boundary_marginals(result)
    diagnostics.spec = extract_method_spec(boundary, threshold)
    return diagnostics
