"""ANEK-INFER: the modular worklist inference algorithm (paper Figure 9).

For every method a PFG and a probabilistic model are built; the worklist
then repeatedly picks a method, applies the current callee summaries at
its call sites, SOLVEs the model with BP (the compiled flat-array kernel
by default, or the loopy reference engine via ``engine="loopy"``), and —
if the method's summary changed — re-enqueues its dependents.  Built
models are cached across visits (``reuse_models``): a revisit rewrites
only the prior/evidence slots whose inputs changed, and skips the solve
outright when the input fingerprint is identical.  The loop runs for at most
``max_worklist_iters`` model solves (the paper: "it suffices to run the
inference algorithm for a fixed number of iterations without reaching a
fixpoint"), trading accuracy against scalability.

Besides the sequential worklist, ``InferenceSettings.executor`` selects
the level-synchronous scheduled engine (``serial``/``thread``/
``process``, see :mod:`repro.core.parallel`), which solves whole
call-graph levels concurrently and merges summaries deterministically.
"""

import time
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.callgraph import (
    build_call_graph,
    call_graph_from_targets,
    method_call_targets,
)
from repro.core.heuristics import HeuristicConfig
from repro.core.model import ENGINES, ModelCache
from repro.core.parallel import EXECUTORS
from repro.core.pfg_builder import build_pfg
from repro.core.pfgstore import PFGStore
from repro.core.priors import SpecEnvironment
from repro.core.summaries import (
    SummaryStore,
    clip_marginal,
    satisfaction_evidence,
)
from repro.resilience.faults import maybe_fault
from repro.resilience.limits import ResourceLimitError
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import FailureRecord, FailureReport


def _rekey_evidence_to_refs(store, table):
    """Rebind a restored store's evidence site keys to live MethodRefs.

    Snapshots canonicalize site keys to ``(method key, index)``, but the
    worklist engine deposits evidence keyed by ``(MethodRef, index)`` —
    left as strings, a resumed run's later deposits would create *new*
    bucket entries beside the restored ones instead of overwriting them,
    silently double-counting votes.  Bucket insertion order (the vote
    order of the geometric-mean aggregation) is preserved.
    """
    rekeyed = {}
    for header, bucket in store._evidence.items():
        new_bucket = {}
        for (owner, index), marginal in bucket.items():
            if isinstance(owner, str) and owner in table:
                new_bucket[(table[owner], index)] = marginal
            else:
                new_bucket[(owner, index)] = marginal
        rekeyed[header] = new_bucket
    store._evidence = rekeyed

#: The default fault-tolerance posture: isolation and degradation on.
_DEFAULT_POLICY = ResiliencePolicy()


@dataclass
class InferenceSettings:
    """Knobs of ANEK-INFER."""

    max_worklist_iters: int = 0  # 0 = 3 passes over all methods
    bp_iters: int = 30
    bp_damping: float = 0.2
    bp_tolerance: float = 1e-4
    threshold: float = 0.5  # the paper's t in [0.5, 1)
    summary_change_threshold: float = 0.02
    #: "worklist" = the sequential Figure 9 engine; "serial"/"thread"/
    #: "process" = the level-synchronous scheduler of repro.core.parallel.
    executor: str = "worklist"
    #: Worker count for the thread/process executors (0 = CPU count).
    jobs: int = 0
    #: Shard count for the scheduled executors: each condensation level
    #: is partitioned into this many groups solved independently, with
    #: summaries/evidence exchanged only at the level barrier.  0 = auto
    #: (derived from the effective job count).  Like ``jobs``, excluded
    #: from cache config digests — shard count never changes results.
    shards: int = 0
    #: BP engine: "compiled" = flat-array kernel (fast path, default);
    #: "loopy" = the per-message reference engine.
    engine: str = "compiled"
    #: Reuse each method's built model across worklist visits, rewriting
    #: only mutated prior/evidence slots and skipping solves whose input
    #: fingerprint is unchanged.  False rebuilds every visit.
    reuse_models: bool = True
    #: The fault-tolerance policy (:class:`repro.resilience.policy.
    #: ResiliencePolicy`), or None for the default (enabled) policy.
    #: ``ResiliencePolicy.disabled()`` restores the legacy all-or-nothing
    #: behaviour.  Deliberately excluded from cache config digests: with
    #: zero faults a resilient run is bit-identical to a non-resilient
    #: one.
    policy: object = None
    #: Durable run directory (journal + checkpoints) for crash-consistent
    #: resume, or None (no run-layer persistence).  Like ``policy``,
    #: excluded from cache config digests: checkpointing never changes
    #: results.
    run_dir: str = None
    #: True to resume an interrupted run from ``run_dir`` instead of
    #: starting fresh.
    resume: bool = False
    #: Checkpoint barriers between compacted snapshots (1 = every
    #: barrier; higher trades resume granularity for snapshot I/O).
    checkpoint_every: int = 1
    #: Soft RSS budget in MiB: exceeded → checkpoint, then shed the
    #: in-memory model cache (0 = no budget).
    max_rss_mb: int = 0

    def effective_policy(self):
        return self.policy if self.policy is not None else _DEFAULT_POLICY

    def __post_init__(self):
        if self.policy is not None and not isinstance(
            self.policy, ResiliencePolicy
        ):
            raise ValueError(
                "policy must be a ResiliencePolicy or None, got %r"
                % (self.policy,)
            )
        if self.executor not in EXECUTORS:
            raise ValueError(
                "unknown executor %r (expected one of %s)"
                % (self.executor, ", ".join(EXECUTORS))
            )
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0, got %d" % self.jobs)
        if self.shards < 0:
            raise ValueError("shards must be >= 0, got %d" % self.shards)
        if self.engine not in ENGINES:
            raise ValueError(
                "unknown engine %r (expected one of %s)"
                % (self.engine, ", ".join(ENGINES))
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                "checkpoint_every must be >= 1, got %d" % self.checkpoint_every
            )
        if self.max_rss_mb < 0:
            raise ValueError(
                "max_rss_mb must be >= 0, got %d" % self.max_rss_mb
            )
        if self.resume and not self.run_dir:
            raise ValueError("resume requires a run_dir")

    def resolved_max_iters(self, method_count):
        if self.max_worklist_iters > 0:
            return self.max_worklist_iters
        return 3 * max(method_count, 1)


@dataclass
class InferenceStats:
    """Bookkeeping for the evaluation tables."""

    methods: int = 0
    solves: int = 0
    elapsed_seconds: float = 0.0
    pfg_nodes: int = 0
    #: Distinct factors *constructed* — counted once per model build, not
    #: once per visit, so revisits of a reused model add nothing.
    factors: int = 0
    constraint_counts: dict = field(default_factory=dict)
    #: Which BP engine ran ("compiled" or "loopy").
    engine: str = "compiled"
    #: Visit breakdown: models built from scratch / reused with slot
    #: rewrites / skipped outright on an unchanged input fingerprint.
    builds: int = 0
    reuses: int = 0
    skips: int = 0
    #: Visits replayed from the persistent cache (no build, no BP sweep).
    replays: int = 0
    #: True when the whole run was restored from the persistent cache
    #: (program/config unchanged — zero worklist visits).
    warm_start: bool = False
    #: Time split: model construction + slot refresh vs BP kernel time.
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Which engine actually ran (the process executor falls back to
    #: threads when the program or config cannot be pickled).
    executor: str = "worklist"
    jobs: int = 1
    #: Scheduled-engine shape: SCC-condensation levels and rounds run,
    #: and the shard count each level was partitioned into (1 = no
    #: sharding; the worklist executor never shards).
    levels: int = 0
    sccs: int = 0
    rounds: int = 0
    shards: int = 1
    #: Per-level trace entries: {round, level, methods, seconds}.
    schedule: list = field(default_factory=list)
    #: Methods quarantined by the resilience layer (frontend or
    #: constraint-generation failures): excluded from inference, given a
    #: conservative spec at extraction.
    quarantined: int = 0
    #: Solves that fell to the prior-only floor of the retry ladder.
    degraded: int = 0
    #: Durable-run bookkeeping: compacted snapshots written; True when
    #: the run continued from an earlier run directory; True when a
    #: graceful shutdown stopped it at a checkpoint barrier.
    checkpoints: int = 0
    resumed: bool = False
    interrupted: bool = False
    #: Soft-memory governance: model-cache sheds and the peak RSS (MiB)
    #: observed at barriers (0.0 when no budget was set).
    sheds: int = 0
    rss_peak_mb: float = 0.0
    #: PFG streaming under the RSS budget: shed events that evicted live
    #: PFGs, and PFGs lazily re-hydrated (from the persistent cache or a
    #: deterministic rebuild) after an eviction.
    pfg_sheds: int = 0
    pfg_rehydrations: int = 0
    #: Journal/snapshot writes that failed (ENOSPC etc.) and degraded
    #: the run to no-persist.
    persist_errors: int = 0
    #: Checker-stage split (the build/kernel/cache stages above all have
    #: dedicated timings; the checker gets the same treatment).  ``check_tier``
    #: is the tier that actually ran ("" when the checker was skipped);
    #: tier-1 is the vectorized bit-vector pass, tier-2 the full
    #: fractional-permission checker over the residue.
    check_tier: str = ""
    check_seconds: float = 0.0
    check_tier1_seconds: float = 0.0
    check_tier2_seconds: float = 0.0
    check_tier1_methods: int = 0
    check_tier2_methods: int = 0
    check_tier1_sites: int = 0
    check_tier2_sites: int = 0

    def to_payload(self):
        """The stats as plain JSON-serializable data (the serving layer
        ships these in every response).  The per-level ``schedule`` trace
        is summarized to its length — per-level wall-clock timings are
        nondeterministic and have no business in a response payload."""
        from dataclasses import asdict

        payload = asdict(self)
        payload["schedule"] = len(self.schedule)
        return payload


class AnekInference:
    """The ANEK-INFER procedure over a resolved program."""

    def __init__(self, program, config=None, settings=None, cache=None,
                 failures=None):
        self.program = program
        self.config = config or HeuristicConfig()
        self.settings = settings or InferenceSettings()
        #: The run's failure ledger (shared with the pipeline when it
        #: owns the run, so parse-stage and solve-stage failures land in
        #: one report).
        self.failures = failures if failures is not None else FailureReport()
        #: {method_ref: FailureRecord} of methods dropped from inference.
        self.quarantined = {}
        self.spec_env = SpecEnvironment(program)
        self.summaries = SummaryStore(
            change_threshold=self.settings.summary_change_threshold
        )
        self.stats = InferenceStats(engine=self.settings.engine)
        #: The persistent cache, bound to this program/config — None when
        #: caching is off or the config is not fingerprintable.
        self.cache = (
            cache.bind(program, self.config, self.settings)
            if cache is not None
            else None
        )
        #: Streaming PFG map: dict-like, but evictable under the RSS
        #: budget with transparent re-hydration (see core/pfgstore.py).
        self.pfgs = PFGStore(program, cache=self.cache, stats=self.stats)
        self.models = ModelCache(
            program,
            self.config,
            self.spec_env,
            engine=self.settings.engine,
            reuse=self.settings.reuse_models,
            cache=self.cache,
        )
        self.call_graph = None
        self.method_set = set()
        self._callers_of = {}

    # -- error isolation ----------------------------------------------------------

    def quarantine_method(self, method_ref, record):
        """Drop one method from inference; downstream stages see it only
        through its conservative (empty-boundary) spec."""
        self.failures.add(record)
        self.quarantined[method_ref] = record
        self.pfgs.pop(method_ref, None)
        self.method_set.discard(method_ref)
        self.stats.quarantined += 1

    def _build_pfg_guarded(self, method_ref, policy):
        """PFG build under isolation: a crash quarantines only this
        method.  Returns (pfg, callees-or-None) or (None, None)."""
        from repro.resilience.report import record_from_exception

        site_key = self.models.site_key(method_ref)
        try:
            if policy.enabled:
                maybe_fault("pfg", site_key)
            pfg = build_pfg(self.program, method_ref, limits=policy.limits)
            callees = method_call_targets(self.program, method_ref)
        except Exception as exc:
            if not policy.enabled and not isinstance(exc, ResourceLimitError):
                raise
            self.quarantine_method(
                method_ref,
                record_from_exception(
                    "pfg",
                    site_key,
                    exc,
                    "resource-limit"
                    if isinstance(exc, ResourceLimitError)
                    else "method-quarantined",
                ),
            )
            return None, None
        return pfg, callees

    def _quarantine_caller(self, method_ref, exc, policy):
        """Call-graph lowering failed for one caller: quarantine it, same
        contract as :meth:`_build_pfg_guarded`."""
        from repro.resilience.report import record_from_exception

        if not policy.enabled and not isinstance(exc, ResourceLimitError):
            raise exc
        self.quarantine_method(
            method_ref,
            record_from_exception(
                "resolve",
                self.models.site_key(method_ref),
                exc,
                "resource-limit"
                if isinstance(exc, ResourceLimitError)
                else "method-quarantined",
            ),
        )

    # -- initialization (Figure 9 lines 1-7) -------------------------------------

    def _initialize(self, build_pfgs=True):
        policy = self.settings.effective_policy()
        methods = list(self.program.methods_with_bodies())
        self.stats.methods = len(methods)
        self.method_set = set(methods)
        cached_callees = None
        if build_pfgs:
            if self.cache is not None:
                cached_callees = {}
            for method_ref in methods:
                pfg = None
                if cached_callees is not None:
                    pfg, callees = self.cache.load_frontend(method_ref)
                    if pfg is None:
                        pfg, callees = self._build_pfg_guarded(
                            method_ref, policy
                        )
                        if pfg is None:
                            continue
                        self.cache.store_frontend(method_ref, pfg, callees)
                    cached_callees[method_ref] = callees
                else:
                    pfg, _ = self._build_pfg_guarded(method_ref, policy)
                    if pfg is None:
                        continue
                self.pfgs[method_ref] = pfg
                self.stats.pfg_nodes += pfg.node_count()
            if self.quarantined:
                methods = [m for m in methods if m in self.pfgs]
        if cached_callees is not None:
            # The call graph is reconstructed from the per-method callee
            # lists — skipping every lowering — and matches what
            # build_call_graph would produce for inference's purposes
            # (caller/callee identities in source order).
            self.call_graph = call_graph_from_targets(cached_callees)
            self.cache.record_invalidation(self.call_graph, methods)
        else:
            self.call_graph = build_call_graph(
                self.program,
                skip=self.quarantined,
                on_error=lambda ref, exc: self._quarantine_caller(
                    ref, exc, policy
                ),
            )
        for method_ref in methods:
            self._callers_of[method_ref] = [
                caller
                for caller in self.call_graph.caller_methods_of(method_ref)
                if caller in self.method_set
            ]
        return methods

    # -- the worklist loop (Figure 9 lines 8-21) ----------------------------------

    def run(self):
        """Run inference; returns {method_ref: boundary marginals dict}."""
        start = time.perf_counter()
        manager = self._checkpoint_manager()
        resume_state = manager.resume_state if manager is not None else None
        if resume_state is None:
            restored = self._restore_final()
            if restored is not None:
                self.stats.elapsed_seconds = time.perf_counter() - start
                if manager is not None:
                    manager.finalize(
                        lambda: manager.encode(restored, complete=True)
                    )
                return restored
        else:
            self.stats.resumed = True
        if resume_state is not None and resume_state.get("complete"):
            # The earlier run already finalized: its terminal state *is*
            # this run's result (same program/config/schedule, enforced
            # by the resume validation).
            results, _ = self._apply_resume_state(resume_state)
            self.stats.resumed = True
            self.stats.elapsed_seconds = time.perf_counter() - start
            if manager is not None:
                manager.close()
            return results
        if self.settings.executor != "worklist":
            from repro.core.parallel import run_scheduled

            results = run_scheduled(
                self, manager=manager, resume_state=resume_state
            )
            self._persist_final(results)
            if manager is not None:
                manager.finalize(lambda: manager.encode(results, complete=True))
            return results
        methods = self._initialize()
        worklist = deque(methods)
        queued = set(methods)
        results = {}
        count = 0
        if resume_state is not None:
            results, extra = self._apply_resume_state(resume_state)
            self.stats.resumed = True
            table = self.program.method_key_table()
            worklist = deque(
                table[key]
                for key in extra.get("worklist", ())
                if key in table and table[key] in self.pfgs
            )
            queued = set(worklist)
            count = extra.get("count", 0)
        # Quarantines shrink ``pfgs``, so its size is the surviving
        # method count on both the fresh and the resumed path.
        max_iters = self.settings.resolved_max_iters(len(self.pfgs))
        # Worklist visit ceiling: a backstop against a degenerate call
        # graph (or a hostile --max-iters) driving the loop far past any
        # plausible fixpoint.  Only an *actual* breach — the ceiling cut
        # the loop short with work still queued — is recorded, so a run
        # that drains naturally is bit-identical with governance off.
        visit_ceiling = self.settings.effective_policy().limits.cap(
            "max_worklist_visits"
        )
        if visit_ceiling and max_iters > visit_ceiling:
            max_iters = visit_ceiling
        while worklist and count < max_iters:
            count += 1
            method_ref = worklist.popleft()  # CHOOSE(W)
            queued.discard(method_ref)
            changed_methods = self._solve_one(method_ref, results)
            for dependent in changed_methods:
                if dependent not in queued and dependent in self.pfgs:
                    queued.add(dependent)
                    worklist.append(dependent)
            if manager is not None:
                self.stats.solves = count
                extra = {
                    "worklist": [
                        self.models.site_key(ref) for ref in worklist
                    ],
                    "count": count,
                }
                manager.barrier(
                    "visit:%d:%s" % (count, self.models.site_key(method_ref)),
                    lambda extra=extra: manager.encode(results, extra=extra),
                )
        if worklist and visit_ceiling and count >= visit_ceiling:
            self.failures.add(
                FailureRecord(
                    stage="resource",
                    key="worklist",
                    error="ResourceLimitError",
                    message="worklist-visits limit exceeded: %d methods "
                    "still queued after %d visits" % (len(worklist), count),
                    disposition="resource-limit",
                )
            )
        self.stats.solves = count
        self.stats.elapsed_seconds = time.perf_counter() - start
        self._persist_final(results)
        if manager is not None:
            manager.finalize(lambda: manager.encode(results, complete=True))
        return results

    def _checkpoint_manager(self):
        """The durable run layer, or None when ``run_dir`` is unset."""
        if not self.settings.run_dir:
            return None
        from repro.resilience.checkpoint import CheckpointManager

        if self.settings.resume:
            return CheckpointManager.resume(self.settings.run_dir, self)
        return CheckpointManager.start(self.settings.run_dir, self)

    def _apply_resume_state(self, state):
        """Restore a snapshot's state into this run; returns
        ``(results, engine_extra)``.

        Called *after* ``_initialize`` (the resumed process must rebuild
        PFGs and the call graph from source anyway): the ledger and the
        quarantine set are restored wholesale so the failure history is
        contiguous across the resume boundary and a method quarantined
        before the crash stays quarantined even when its fault does not
        recur.
        """
        from dataclasses import fields as dataclass_fields

        from repro.core.summaries import TargetMarginal

        table = self.program.method_key_table()
        resumed_from = self.failures.resumed_from
        self.failures.records[:] = [
            FailureRecord(**record) for record in state["failures"]
        ]
        self.failures.resumed_from = resumed_from
        self.quarantined = {}
        self.stats.quarantined = 0
        for key, record in state["quarantined"]:
            ref = table.get(key)
            if ref is None:
                continue
            self.quarantined[ref] = FailureRecord(**record)
            self.pfgs.pop(ref, None)
            self.method_set.discard(ref)
        snapshot_stats = state["stats"]
        for field_info in dataclass_fields(self.stats):
            if field_info.name in snapshot_stats:
                setattr(
                    self.stats, field_info.name, snapshot_stats[field_info.name]
                )
        self.stats.constraint_counts = dict(self.stats.constraint_counts)
        self.stats.schedule = list(self.stats.schedule)
        # Restored stats describe the pre-crash run, where resumed was
        # False; this run *is* a resume.
        self.stats.resumed = True
        self.stats.interrupted = False
        store = SummaryStore.from_payload(state["store"], table)
        if state["engine"] == "worklist":
            _rekey_evidence_to_refs(store, table)
        self.summaries = store
        results = {}
        for key, boundary in state["results"]:
            ref = table.get(key)
            if ref is None:
                continue
            results[ref] = {
                tuple(slot_target): TargetMarginal.from_payload(payload)
                for slot_target, payload in boundary
            }
        return results, state.get("extra", {})

    def _schedule_kind(self):
        """Distinguishes final-result artifacts: the worklist and the
        level-synchronous scheduler run legitimately different (each
        deterministic) trajectories, so their results never alias."""
        return (
            "worklist" if self.settings.executor == "worklist" else "scheduled"
        )

    def _restore_final(self):
        """Warm start: the whole run restored from the persistent cache.

        Valid only when program, config, settings, and schedule kind all
        fingerprint-match a completed earlier run — then the stored
        results *are* what this run would compute, visit by visit."""
        if self.cache is None:
            return None
        stored = self.cache.load_final(self._schedule_kind())
        if stored is None:
            return None
        results, store_payload = stored
        self.summaries = SummaryStore.from_payload(
            store_payload, self.cache.table
        )
        self.stats.methods = len(
            list(self.program.methods_with_bodies())
        )
        self.stats.executor = self.settings.executor
        self.stats.warm_start = True
        return results

    def _persist_final(self, results):
        if self.cache is None:
            return
        if self.failures.has_degradation:
            # A degraded run is not a pure function of the fingerprinted
            # inputs (the fault may not recur), so it must never seed a
            # warm start.
            return
        self.cache.store_final(self._schedule_kind(), results, self.summaries)
        self.cache.save_manifest(list(self.method_set))

    def _solve_one(self, method_ref, results):
        """SOLVE one method (building or reusing its cached model);
        returns methods to re-enqueue."""
        pfg = self.pfgs[method_ref]
        policy = self.settings.effective_policy()
        try:
            visit = self.models.solve(
                method_ref, pfg, self.summaries, self.settings
            )
        except Exception as exc:
            if not policy.enabled and not isinstance(exc, ResourceLimitError):
                raise
            # Constraint generation (or the model machinery around it)
            # crashed — or the built factor graph breached its size
            # budget: quarantine just this method.  The solve stage
            # itself never raises here — guarded_solve degrades instead.
            from repro.resilience.report import record_from_exception

            self.quarantine_method(
                method_ref,
                record_from_exception(
                    "constraints",
                    self.models.site_key(method_ref),
                    exc,
                    "resource-limit"
                    if isinstance(exc, ResourceLimitError)
                    else "method-quarantined",
                ),
            )
            results[method_ref] = {}
            return []
        if visit.failures:
            self.failures.extend(visit.failures)
        if visit.degraded:
            self.stats.degraded += 1
        if visit.built:
            # Constraint generation ran: count its factors exactly once.
            self.stats.builds += 1
            self.stats.factors += visit.factor_count
            for rule, count in visit.constraint_counts.items():
                self.stats.constraint_counts[rule] = (
                    self.stats.constraint_counts.get(rule, 0) + count
                )
        elif visit.skipped:
            self.stats.skips += 1
        elif visit.replayed:
            self.stats.replays += 1
        else:
            self.stats.reuses += 1
        self.stats.build_seconds += visit.build_seconds
        self.stats.solve_seconds += visit.solve_seconds
        boundary = visit.boundary
        results[method_ref] = boundary
        to_enqueue = []
        # UPDATESUMMARY: store our own boundary marginals.
        own_changed = False
        for (slot, target), marginal in boundary.items():
            capped = clip_marginal(marginal, self.config.summary_confidence)
            if self.summaries.update(method_ref, slot, target, capped):
                own_changed = True
        if own_changed:
            to_enqueue.extend(self._callers_of.get(method_ref, []))
            to_enqueue.append(method_ref)
        # Deposit demand evidence into unannotated callees.  Precondition
        # kind evidence is satisfaction-transformed: callers veto only
        # requirements they could not meet.
        for callee, slot, target, site_key, marginal in visit.deposits:
            if slot == "pre":
                marginal = satisfaction_evidence(marginal)
            capped = clip_marginal(marginal, self.config.summary_confidence)
            if self.summaries.deposit_evidence(
                callee, slot, target, site_key, capped
            ):
                if callee in self.pfgs:
                    to_enqueue.append(callee)
        return to_enqueue

    # -- spec extraction (Figure 9 lines 22-29) ---------------------------------------

    def extract_specs(self, results=None):
        from repro.core.extract import extract_program_specs

        if results is None:
            results = self.run()
        # Quarantined methods still get a (conservative, empty-boundary)
        # entry so downstream consumers — the applier, PLURAL checking —
        # see every method they expect.
        for method_ref in self.quarantined:
            results.setdefault(method_ref, {})
        return extract_program_specs(
            self.program,
            results,
            self.spec_env,
            threshold=self.settings.threshold,
        )
