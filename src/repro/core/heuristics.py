"""Tunable configuration for ANEK's constraints (paper §3.3).

Every constraint generation rule is parametrized by a probability
``h ∈ [0, 1]`` representing "high probability"; the paper tunes these on
its small-benchmark training suite.  Heuristics can be individually
disabled, which powers the ablation benchmarks and the "Anek Logical"
baseline (all heuristics off, logical constraints hard).

The paper stresses that ANEK's architecture made it "quite easy to add
new constraints" as design iterations revealed gaps.
:class:`CustomHeuristic` exposes that extension point: a selector picks
PFG nodes, a predicate over kinds scores them, and the constraint is
emitted with the usual soft strength.
"""

from dataclasses import dataclass, field


class CustomHeuristic:
    """A user-defined heuristic constraint.

    * ``name`` — label used in factor names and constraint statistics;
    * ``selector(pfg, node)`` — True for PFG nodes the heuristic targets;
    * ``kind_predicate(kind)`` — True for the permission kinds the
      heuristic considers likely at those nodes;
    * ``strength`` — the constraint's "high probability" h.

    Example — "``copyOf*`` methods likely return unique"::

        CustomHeuristic(
            "H-copyOf",
            lambda pfg, node: (
                node is pfg.result_node
                and pfg.method_ref.method_decl.name.startswith("copyOf")
            ),
            lambda kind: kind == "unique",
            0.8,
        )
    """

    def __init__(self, name, selector, kind_predicate, strength=0.8):
        if not 0.0 < strength <= 1.0:
            raise ValueError("strength must be in (0, 1]")
        self.name = name
        self.selector = selector
        self.kind_predicate = kind_predicate
        self.strength = strength

    def __repr__(self):
        return "CustomHeuristic(%s, h=%.2f)" % (self.name, self.strength)


@dataclass
class HeuristicConfig:
    """Probabilities and switches for L1–L3 and H1–H5."""

    # Logical constraint confidences (paper: h1, h2, h3 per rule).
    h_outgoing: float = 0.95  # L1 — node vs outgoing edges
    h_split: float = 0.95  # L1 — sound splitting at split nodes
    h_incoming: float = 0.9  # L2 — node equals one incoming edge
    h_field_write: float = 0.9  # L3 — store receivers can write

    # Heuristic constraint confidences.
    h_constructor_unique: float = 0.8  # H1
    h_pre_post_same: float = 0.75  # H2
    h_create_unique: float = 0.8  # H3
    h_setter_writes: float = 0.8  # H4
    h_sync_shared: float = 0.75  # H5

    # Spec-derived prior strength (paper §3.2: B(0.9) / B(0.1)).
    spec_prior: float = 0.9
    # Strength cap for cross-method summary evidence.
    summary_confidence: float = 0.85

    # L2 mode: the paper states merges equal *one of* their inputs; the
    # default here applies a soft equality per input instead, which
    # propagates demand backward through loop headers much better under
    # BP (the one-of form is kept for the ablation benchmark).
    l2_one_of: bool = False

    # Switches (ablations / Anek Logical).
    enable_h1: bool = True
    enable_h2: bool = True
    enable_h3: bool = True
    enable_h4: bool = True
    enable_h5: bool = True

    # Method-name prefixes that trigger H3/H4.
    create_prefixes: tuple = ("create",)
    setter_prefixes: tuple = ("set",)

    # User-defined heuristic constraints (see CustomHeuristic).
    custom: tuple = ()

    @classmethod
    def logical_only(cls):
        """All heuristics off, logical constraints (near-)hard — the
        configuration of the paper's "Anek Logical" experiment."""
        return cls(
            h_outgoing=0.999999,
            h_split=0.999999,
            h_incoming=0.999999,
            h_field_write=0.999999,
            enable_h1=False,
            enable_h2=False,
            enable_h3=False,
            enable_h4=False,
            enable_h5=False,
        )

    def matches_create(self, method_name):
        return any(method_name.startswith(p) for p in self.create_prefixes)

    def matches_setter(self, method_name):
        return any(method_name.startswith(p) for p in self.setter_prefixes)
