"""Constraint generation: logical rules L1–L3, heuristics H1–H5 (§3.3).

Each rule emits soft factors (paper Eq. 6) over the kind/state variables
of PFG nodes.  Edge variables are collapsed: a factor between adjacent
nodes is equivalent to the paper's node–edge–node chain with the edge
variable marginalized, and halves the model size.

L1 at split nodes uses the sound-splitting predicate extended with the
``none`` value: no permission splits to no permission, and a ``none``
piece means nothing moved along that edge.
"""

from repro.core.pfg import PFGNodeKind
from repro.core.priors import KIND_DOMAIN
from repro.factorgraph.compile import add_soft_one_of
from repro.factorgraph.factors import (
    conditional_predicate_factor,
    predicate_factor,
    soft_equality,
)
from repro.permissions import kinds
from repro.permissions.splitting import legal_edge_pair


def split_predicate(node_kind, given, retained):
    """Sound splitting over the kind domain including ``none``."""
    if node_kind == "none":
        return given == "none" and retained == "none"
    if given == "none":
        return retained == node_kind
    if retained == "none":
        return kinds.satisfies(node_kind, given)
    return legal_edge_pair(node_kind, given, retained)


def transfer_predicate(node_kind, given):
    """A split with no retained flow: the whole permission may weaken."""
    if node_kind == "none":
        return given == "none"
    if given == "none":
        return True
    return kinds.satisfies(node_kind, given)


def retain_predicate(retained, node_kind, given):
    """Retention side of a split, conditioned on (node, given)."""
    return split_predicate(node_kind, given, retained)


def writing_kind(kind):
    return kind in kinds.WRITING_KINDS


def unique_kind(kind):
    return kind == kinds.UNIQUE


def not_read_only_kind(kind):
    return kind not in kinds.READ_ONLY_KINDS and kind != "none"


def thread_shared_kind(kind):
    return kind in kinds.THREAD_SHARED_KINDS


def recombine(kind_a, kind_b):
    """The kind held after recombining a retained piece with a returned
    piece (fraction merging collapsed onto kinds): ``none`` is the
    identity, and a piece implied by the other is absorbed into it."""
    if kind_a == "none":
        return kind_b
    if kind_b == "none":
        return kind_a
    if kinds.satisfies(kind_a, kind_b):
        return kind_a
    if kinds.satisfies(kind_b, kind_a):
        return kind_b
    return kinds.weakest([kind_a, kind_b])


def recombine_predicate(node_kind, retained, returned):
    """Call-site merge: node holds the recombination of its two inputs."""
    return node_kind == recombine(retained, returned)


class ConstraintGenerator:
    """Emits the paper's constraints into a factor graph for one method."""

    def __init__(self, graph, pfg, config, var_namer):
        self.graph = graph
        self.pfg = pfg
        self.config = config
        self.vars = var_namer  # NodeVariables instance from model.py
        self.counts = {}

    def _count(self, rule):
        self.counts[rule] = self.counts.get(rule, 0) + 1

    # -- logical constraints -------------------------------------------------------

    def add_logical(self):
        self.add_l1_outgoing()
        self.add_l2_incoming()
        self.add_l3_field_writes()

    def add_l1_outgoing(self):
        """L1: node vs outgoing flow — equality at branches, sound
        splitting at split nodes."""
        for node in self.pfg.nodes:
            if not node.out_edges:
                continue
            if node.kind == PFGNodeKind.SPLIT:
                self._add_split_constraints(node)
            else:
                for edge in node.out_edges:
                    self._add_edge_equality(node, edge.dst, self.config.h_outgoing)

    def _add_split_constraints(self, node):
        given_targets = [e.dst for e in node.out_edges if e.role == "given"]
        retained_targets = [e.dst for e in node.out_edges if e.role != "given"]
        node_kind = self.vars.kind(node)
        for given in given_targets:
            given_kind = self.vars.kind(given)
            # Ability: the node can supply the given piece.  A plain
            # likelihood factor — a demand for `pure` constrains the node
            # only to "not none" (any kind can give pure), a demand for
            # `full` constrains it to {unique, full}, and so on.
            self.graph.add_factor(
                predicate_factor(
                    "L1give/%d>%d" % (node.node_id, given.node_id),
                    [node_kind, given_kind],
                    transfer_predicate,
                    self.config.h_split,
                )
            )
            self._count("L1-split")
            for retained in retained_targets:
                # Retention: what the splitter keeps, conditioned on the
                # (node, given) pair so it adds no bias of its own.
                retained_kind = self.vars.kind(retained)
                self.graph.add_factor(
                    conditional_predicate_factor(
                        "L1retain/%d>%d+%d"
                        % (node.node_id, given.node_id, retained.node_id),
                        [retained_kind, node_kind, given_kind],
                        retain_predicate,
                        self.config.h_split,
                        condition_axes=(1, 2),
                    )
                )
                self._count("L1-split")
        # States flow unchanged through splits — but not into call
        # merges, whose state is set by what the callee returns (the
        # retained piece's state at split time is the *pre*-call state;
        # equating it with the post-call merge would leak states across
        # state-changing calls).
        for target in given_targets:
            self._add_state_equality(node, target, self.config.h_split)
        for target in retained_targets:
            if "call-merge" not in target.hints:
                self._add_state_equality(node, target, self.config.h_split)

    def _add_edge_equality(self, src, dst, strength):
        # Skip the source-side constraint into multi-input merges: the
        # merge's own L2 one-of covers those edges (edge-variable collapse).
        if dst.kind in (PFGNodeKind.MERGE, PFGNodeKind.RETURN) and len(
            dst.in_edges
        ) > 1:
            return
        src_kind = self.vars.kind(src)
        dst_kind = self.vars.kind(dst)
        self.graph.add_factor(
            soft_equality(
                "L1eq/%d>%d" % (src.node_id, dst.node_id),
                src_kind,
                dst_kind,
                strength,
            )
        )
        self._count("L1-eq")
        self._add_state_equality(src, dst, strength)

    def _add_state_equality(self, src, dst, strength):
        src_state = self.vars.state(src)
        dst_state = self.vars.state(dst)
        if src_state is None or dst_state is None:
            return
        if src_state.domain != dst_state.domain:
            return
        self.graph.add_factor(
            soft_equality(
                "L1state/%d>%d" % (src.node_id, dst.node_id),
                src_state,
                dst_state,
                strength,
            )
        )
        self._count("L1-state")

    def add_l2_incoming(self):
        """L2: a merge/return node equals one of its incoming sources.

        Call-site merges are special-cased: they *recombine* the retained
        piece with the piece the callee returned (fraction re-merging),
        rather than selecting one path's permission.
        """
        for node in self.pfg.nodes:
            if node.kind not in (PFGNodeKind.MERGE, PFGNodeKind.RETURN):
                continue
            sources = [edge.src for edge in node.in_edges]
            if len(sources) < 2:
                continue
            if "call-merge" in node.hints and len(sources) == 2:
                self._add_call_merge(node, sources)
                continue
            node_kind = self.vars.kind(node)
            source_kinds = [self.vars.kind(src) for src in sources]
            node_state = self.vars.state(node)
            source_states = [
                self.vars.state(src)
                for src in sources
                if self.vars.state(src) is not None
                and node_state is not None
                and self.vars.state(src).domain == node_state.domain
            ]
            if self.config.l2_one_of:
                add_soft_one_of(
                    self.graph,
                    "L2/%d" % node.node_id,
                    node_kind,
                    source_kinds,
                    self.config.h_incoming,
                )
                self._count("L2")
                if source_states:
                    add_soft_one_of(
                        self.graph,
                        "L2state/%d" % node.node_id,
                        node_state,
                        source_states,
                        self.config.h_incoming,
                    )
                    self._count("L2-state")
            else:
                for position, source_kind in enumerate(source_kinds):
                    self.graph.add_factor(
                        soft_equality(
                            "L2/%d/%d" % (node.node_id, position),
                            node_kind,
                            source_kind,
                            self.config.h_incoming,
                        )
                    )
                    self._count("L2")
                for position, source_state in enumerate(source_states):
                    self.graph.add_factor(
                        soft_equality(
                            "L2state/%d/%d" % (node.node_id, position),
                            node_state,
                            source_state,
                            self.config.h_incoming,
                        )
                    )
                    self._count("L2-state")

    def _add_call_merge(self, node, sources):
        node_kind = self.vars.kind(node)
        retained_kind = self.vars.kind(sources[0])
        returned_kind = self.vars.kind(sources[1])
        # Condition on both inputs: given what was kept and what came
        # back, the merged kind is (softly) determined.
        self.graph.add_factor(
            conditional_predicate_factor(
                "L2merge/%d" % node.node_id,
                [node_kind, retained_kind, returned_kind],
                recombine_predicate,
                self.config.h_incoming,
                condition_axes=(1, 2),
            )
        )
        self._count("L2-call-merge")
        # State: after a call the object's state is whatever the callee
        # left it in — follow the returned (post) side when it carries
        # state, else the retained side.
        node_state = self.vars.state(node)
        if node_state is not None:
            for source in (sources[1], sources[0]):
                source_state = self.vars.state(source)
                if (
                    source_state is not None
                    and source_state.domain == node_state.domain
                ):
                    self.graph.add_factor(
                        soft_equality(
                            "L2mergestate/%d" % node.node_id,
                            node_state,
                            source_state,
                            self.config.h_incoming,
                        )
                    )
                    self._count("L2-call-merge-state")
                    break

    def add_l3_field_writes(self):
        """L3: field-store receivers hold a writing permission."""
        for store, receiver in self.pfg.field_store_receivers:
            receiver_kind = self.vars.kind(receiver)
            self.graph.add_factor(
                predicate_factor(
                    "L3/%d" % store.node_id,
                    [receiver_kind],
                    writing_kind,
                    self.config.h_field_write,
                )
            )
            self._count("L3")

    # -- heuristic constraints ---------------------------------------------------------

    def add_heuristics(self):
        config = self.config
        if config.enable_h1:
            self.add_h1_constructors()
        if config.enable_h2:
            self.add_h2_pre_post()
        if config.enable_h3:
            self.add_h3_factories()
        if config.enable_h4:
            self.add_h4_setters()
        if config.enable_h5:
            self.add_h5_thread_shared()
        for heuristic in config.custom:
            self.add_custom(heuristic)

    def add_custom(self, heuristic):
        """Emit a user-defined heuristic over the nodes it selects."""
        for node in self.pfg.nodes:
            if not heuristic.selector(self.pfg, node):
                continue
            self.graph.add_factor(
                predicate_factor(
                    "%s/%d" % (heuristic.name, node.node_id),
                    [self.vars.kind(node)],
                    heuristic.kind_predicate,
                    heuristic.strength,
                )
            )
            self._count(heuristic.name)

    def add_h1_constructors(self):
        """H1: permission created by a constructor is likely unique."""
        for node in self.pfg.nodes:
            if node.kind == PFGNodeKind.NEW:
                self.graph.add_factor(
                    predicate_factor(
                        "H1/%d" % node.node_id,
                        [self.vars.kind(node)],
                        unique_kind,
                        self.config.h_constructor_unique,
                    )
                )
                self._count("H1")

    def add_h2_pre_post(self):
        """H2: a parameter's pre and post kinds likely agree."""
        for name, pre in self.pfg.param_pre.items():
            post = self.pfg.param_post.get(name)
            if post is None:
                continue
            self.graph.add_factor(
                soft_equality(
                    "H2/%s" % name,
                    self.vars.kind(pre),
                    self.vars.kind(post),
                    self.config.h_pre_post_same,
                )
            )
            self._count("H2")

    def add_h3_factories(self):
        """H3: ``create*`` methods likely return unique permission."""
        method_name = self.pfg.method_ref.method_decl.name
        if not self.config.matches_create(method_name):
            return
        if self.pfg.result_node is None:
            return
        self.graph.add_factor(
            predicate_factor(
                "H3/result",
                [self.vars.kind(self.pfg.result_node)],
                unique_kind,
                self.config.h_create_unique,
            )
        )
        self._count("H3")

    def add_h4_setters(self):
        """H4: ``set*`` methods likely need a writing receiver."""
        method_name = self.pfg.method_ref.method_decl.name
        if not self.config.matches_setter(method_name):
            return
        for node in (
            self.pfg.param_pre.get("this"),
            self.pfg.param_post.get("this"),
        ):
            if node is None:
                continue
            self.graph.add_factor(
                predicate_factor(
                    "H4/%d" % node.node_id,
                    [self.vars.kind(node)],
                    not_read_only_kind,
                    self.config.h_setter_writes,
                )
            )
            self._count("H4")

    def add_h5_thread_shared(self):
        """H5: synchronized-block targets are full/share/pure."""
        for node in self.pfg.nodes:
            if "sync-target" in node.hints:
                self.graph.add_factor(
                    predicate_factor(
                        "H5/%d" % node.node_id,
                        [self.vars.kind(node)],
                        thread_shared_kind,
                        self.config.h_sync_shared,
                    )
                )
                self._count("H5")
