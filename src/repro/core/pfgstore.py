"""Streaming PFG store: a dict-like map that can evict and re-hydrate.

Holding every method's Permission Flow Graph in RSS is what bounds the
corpus size a single inference process can survive.  This store keeps
the *live* PFGs in memory behind the same mapping protocol inference
already uses (``pfgs[ref]``, ``ref in pfgs``, ``pfgs.pop``), but lets
the checkpoint barrier's RSS governance :meth:`shed` the live set; a
later lookup transparently re-hydrates the PFG — from the persistent
cache (``cache/pfgser.py`` payloads) when one is bound, otherwise by a
deterministic rebuild from source.  Both paths reproduce the original
graph exactly, so eviction never changes results.
"""

from repro.core.pfg_builder import build_pfg


class PFGStore:
    """Mapping of ``MethodRef -> PFG`` with eviction + lazy rehydration.

    Membership (``in``, ``len``) is defined by the set of methods whose
    PFG was ever stored and not popped — *not* by what is currently
    resident — so inference logic is oblivious to evictions.
    """

    def __init__(self, program, cache=None, stats=None):
        self.program = program
        #: The bound persistent cache (``BoundCache``) or None.
        self.cache = cache
        #: The run's :class:`InferenceStats` (rehydrations are counted
        #: there), or None for standalone use.
        self.stats = stats
        self._live = {}
        self._known = set()

    # -- mapping protocol --------------------------------------------------------

    def __contains__(self, method_ref):
        return method_ref in self._known

    def __len__(self):
        return len(self._known)

    def __iter__(self):
        return iter(self._known)

    def __setitem__(self, method_ref, pfg):
        self._known.add(method_ref)
        self._live[method_ref] = pfg

    def __getitem__(self, method_ref):
        if method_ref not in self._known:
            raise KeyError(method_ref)
        pfg = self._live.get(method_ref)
        if pfg is None:
            pfg = self._rehydrate(method_ref)
            self._live[method_ref] = pfg
        return pfg

    def pop(self, method_ref, default=None):
        if method_ref not in self._known:
            return default
        self._known.discard(method_ref)
        return self._live.pop(method_ref, default)

    def keys(self):
        return set(self._known)

    # -- eviction ----------------------------------------------------------------

    def live_count(self):
        """How many PFGs are currently resident."""
        return len(self._live)

    def shed(self):
        """Evict every resident PFG; returns the number evicted.

        Safe at any point: lookups after a shed re-hydrate on demand,
        bit-identically.
        """
        count = len(self._live)
        self._live.clear()
        return count

    # -- rehydration -------------------------------------------------------------

    def _rehydrate(self, method_ref):
        pfg = None
        if self.cache is not None:
            pfg, _ = self.cache.load_frontend(method_ref)
        if pfg is None:
            pfg = build_pfg(self.program, method_ref)
        if self.stats is not None:
            self.stats.pfg_rehydrations += 1
        return pfg
