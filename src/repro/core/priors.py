"""Prior distributions for PFG random variables (paper §3.2).

Every PFG node carries a *kind* variable over the five permission kinds
plus ``none`` (no permission), and — for protocol classes — a *state*
variable over the class's abstract states.  Most variables start at the
uninformative prior (the paper's B(0.5) per Bernoulli, i.e. uniform in
the categorical encoding).  Known specifications strengthen priors to the
paper's B(0.9)/B(0.1) pattern: 0.9 on the specified value, the remainder
spread over the alternatives — so a wrong existing spec can still be
overridden by overwhelming evidence.
"""

from repro.permissions import kinds
from repro.permissions.spec import spec_of_method
from repro.permissions.states import ALIVE

#: The categorical kind domain (paper: five Bernoullis per node).
KIND_DOMAIN = kinds.ALL_KINDS + ("none",)


def uniform_kind_prior():
    share = 1.0 / len(KIND_DOMAIN)
    return {value: share for value in KIND_DOMAIN}


def concentrated_prior(domain, value, strength):
    """``strength`` mass on ``value``, remainder spread over the rest."""
    rest = (1.0 - strength) / (len(domain) - 1)
    prior = {candidate: rest for candidate in domain}
    prior[value] = strength
    return prior


def kind_prior_from_clause(clause, strength):
    """B(0.9)-style prior for a node covered by a spec clause."""
    return concentrated_prior(KIND_DOMAIN, clause.kind, strength)


def state_prior_from_clause(clause, state_domain, strength):
    if clause.state not in state_domain:
        return None
    return concentrated_prior(tuple(state_domain), clause.state, strength)


def absent_permission_prior(strength):
    """Prior for a boundary node whose spec has no clause: permission is
    absent (nothing required / nothing returned) with high probability."""
    return concentrated_prior(KIND_DOMAIN, "none", strength)


class SpecEnvironment:
    """Resolves the declared spec (if any) governing a method.

    Mirrors the checker: an unannotated override inherits the supertype's
    spec, matching how PLURAL applies supertype specs at use sites.
    """

    def __init__(self, program):
        self.program = program
        self._cache = {}

    def spec_of(self, method_ref):
        if method_ref in self._cache:
            return self._cache[method_ref]
        spec = spec_of_method(method_ref.method_decl)
        if spec.is_empty:
            for super_decl in self.program.supertypes(method_ref.class_decl):
                for method in super_decl.find_method(method_ref.method_decl.name):
                    super_spec = spec_of_method(method)
                    if not super_spec.is_empty:
                        spec = super_spec
                        break
                if not spec.is_empty:
                    break
        self._cache[method_ref] = spec
        return spec

    def is_annotated(self, method_ref):
        """Annotated directly or through an overridden supertype method."""
        return not self.spec_of(method_ref).is_empty

    def is_directly_annotated(self, method_ref):
        """Annotated on the declaration itself (not inherited).

        Extraction keeps only *direct* annotations: for overrides that
        merely inherit a supertype spec ANEK still emits its own inferred
        spec — notably without ``@TrueIndicates`` (the paper: ANEK "does
        not attempt to infer" dynamic state test specs; the supertype
        spec takes precedence at use sites anyway).
        """
        from repro.permissions.spec import spec_of_method

        return not spec_of_method(method_ref.method_decl).is_empty


def boundary_priors(spec, target, is_pre, state_domain, strength):
    """(kind_prior, state_prior) for a pre/post boundary node from a spec.

    ``None`` spec or empty spec yields uninformative priors (both None —
    caller falls back to uniform).  An annotated method lacking a clause
    for the target gets the "permission absent" prior.
    """
    if spec is None or spec.is_empty:
        return None, None
    clauses = spec.required_for(target) if is_pre else spec.ensured_for(target)
    if not clauses:
        return absent_permission_prior(strength), None
    clause = clauses[0]
    kind_prior = kind_prior_from_clause(clause, strength)
    state_prior = None
    if state_domain is not None and clause.state in state_domain:
        state_prior = concentrated_prior(
            tuple(state_domain), clause.state, strength
        )
    elif state_domain is not None and clause.state == ALIVE:
        state_prior = concentrated_prior(tuple(state_domain), ALIVE, strength)
    return kind_prior, state_prior
