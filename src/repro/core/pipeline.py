"""The end-to-end ANEK pipeline (paper Figure 10).

Mirrors the paper's architecture: the *extractor* (our parser + resolver)
produces the abstract representation, the *constraint generators* build
the probabilistic models, ANEK-INFER solves them, and the *applier*
writes the inferred annotations back into the program — which can then
be checked with PLURAL.
"""

import json
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.applier import apply_specs, render_annotated_sources
from repro.core.extract import count_clauses, count_nonempty
from repro.core.heuristics import HeuristicConfig
from repro.core.infer import AnekInference, InferenceSettings
from repro.java.parser import parse_compilation_unit
from repro.resilience.limits import ResourceLimitError
from repro.java.symbols import resolve_program
from repro.plural.checker import run_check
from repro.resilience.faults import maybe_fault
from repro.resilience.report import FailureReport


@dataclass
class StageTrace:
    """One pipeline stage, for the Figure 10 architecture trace."""

    name: str
    seconds: float
    detail: str = ""
    #: Nested traces (e.g. scheduler levels inside anek-infer) are shown
    #: in the stage listing but excluded from ``total_seconds``.
    nested: bool = False


@dataclass
class PipelineResult:
    """Everything the pipeline produces."""

    program: object = None
    specs: dict = field(default_factory=dict)
    #: qualified names of methods whose specs pre-existed inference
    #: (declared directly or inherited from an annotated supertype).
    preannotated_methods: set = field(default_factory=set)
    warnings: list = field(default_factory=list)
    annotated_sources: List[str] = field(default_factory=list)
    stages: List[StageTrace] = field(default_factory=list)
    inference_stats: Optional[object] = None
    #: {method_ref: {(slot, target): TargetMarginal}} — the raw boundary
    #: marginals inference produced, kept so consumers (the serve layer,
    #: the differential harness) can compare runs at float precision
    #: rather than only through thresholded specs.
    boundary_marginals: dict = field(default_factory=dict)
    #: Persistent-cache counter movement for this run (a CacheStats
    #: delta), or None when the pipeline ran without a cache.
    cache_stats: Optional[object] = None
    #: The resilience ledger: every isolation/retry/degradation event of
    #: this run (empty on a clean run).
    failures: FailureReport = field(default_factory=FailureReport)

    @property
    def degraded(self):
        """True when any failure changed the run's output (quarantined
        units/methods, prior-only solves, skipped stages)."""
        return self.failures.has_degradation

    @property
    def inferred_annotation_count(self):
        return count_nonempty(self.specs)

    @property
    def inferred_clause_count(self):
        return count_clauses(self.specs)

    @property
    def total_seconds(self):
        return sum(
            stage.seconds for stage in self.stages if not stage.nested
        )

    def describe_stages(self):
        lines = ["ANEK pipeline (paper Figure 10):"]
        for stage in self.stages:
            lines.append(
                "  %-22s %8.3f s  %s" % (stage.name, stage.seconds, stage.detail)
            )
        return "\n".join(lines)

    def canonical_payload(self, include_marginals=False):
        """The run's *answer* as plain JSON-serializable data.

        Everything that identifies what the pipeline concluded — the
        thresholded specs, the checker warnings, the degradation flag —
        and (optionally) the raw boundary marginals, whose floats survive
        a JSON round-trip exactly (``repr``-based float formatting).
        Deliberately excludes timings, stats, and stage traces: two runs
        over the same input are *bit-identical* exactly when their
        canonical payloads are, which is the contract the serving layer
        and the differential harness assert.
        """
        from repro.java.symbols import method_key

        specs = [
            {
                "key": method_key(ref),
                "name": ref.qualified_name,
                "spec": str(spec),
            }
            for ref, spec in sorted(
                self.specs.items(),
                key=lambda kv: (kv[0].qualified_name, method_key(kv[0])),
            )
            if not spec.is_empty
        ]
        payload = {
            "specs": specs,
            "preannotated": sorted(self.preannotated_methods),
            "warnings": [warning.format() for warning in self.warnings],
            "annotations": self.inferred_annotation_count,
            "clauses": self.inferred_clause_count,
            "degraded": self.degraded,
        }
        if include_marginals:
            marginals = {}
            for ref, boundary in self.boundary_marginals.items():
                entry = {}
                for (slot, target), marginal in sorted(boundary.items()):
                    entry["%s/%s" % (slot, target)] = marginal.to_payload()
                marginals[method_key(ref)] = entry
            payload["marginals"] = marginals
        return payload

    def canonical_json(self, include_marginals=False):
        """The canonical payload as one deterministic JSON string."""
        return json.dumps(
            self.canonical_payload(include_marginals=include_marginals),
            sort_keys=True,
            separators=(",", ":"),
        )


class AnekPipeline:
    """Drives parse -> infer -> apply -> check."""

    def __init__(self, config=None, settings=None, run_checker=True,
                 apply_annotations=True, cache=None, check_tier="auto"):
        self.config = config or HeuristicConfig()
        self.settings = settings or InferenceSettings()
        self.run_checker = run_checker
        self.apply_annotations = apply_annotations
        #: An :class:`repro.cache.AnalysisCache`, or None (no persistence).
        self.cache = cache
        #: Checker dispatch: "full" runs the fractional-permission
        #: checker on every method, "bitvector"/"auto" prove what they
        #: can with the vectorized tier-1 pass first.  Warning output is
        #: bit-identical across tiers.
        self.check_tier = check_tier

    def _parse_units(self, sources, result):
        """Parse every source under isolation: a unit whose lex/parse
        crashes is quarantined (``unit:<index>``) and the rest proceed."""
        policy = self.settings.effective_policy()
        units = []
        parse_hits = 0
        for index, source in enumerate(sources):
            unit_key = "unit:%d" % index
            hits_before = (
                self.cache.stats.parse_hits if self.cache is not None else 0
            )
            try:
                if policy.enabled:
                    maybe_fault("parse", unit_key)
                if self.cache is not None:
                    unit = self.cache.parse(source, limits=policy.limits)
                else:
                    unit = parse_compilation_unit(source, limits=policy.limits)
            except Exception as exc:
                # Resource-budget breaches quarantine even with the
                # resilience ladder off: limits protect the process.
                if not policy.enabled and not isinstance(
                    exc, ResourceLimitError
                ):
                    raise
                result.failures.record(
                    "parse",
                    unit_key,
                    exc,
                    "resource-limit"
                    if isinstance(exc, ResourceLimitError)
                    else "unit-quarantined",
                )
                continue
            if self.cache is not None:
                parse_hits += self.cache.stats.parse_hits - hits_before
            units.append(unit)
        return units, parse_hits

    def _resolve_units(self, units, result):
        """Resolve under isolation: on failure, re-resolve incrementally
        and quarantine exactly the units resolution chokes on.

        The incremental pass is O(n^2) but runs only on the failure path;
        the healthy path stays a single ``resolve_program`` call."""
        policy = self.settings.effective_policy()
        try:
            return resolve_program(units), units
        except Exception:
            if not policy.enabled:
                raise
        kept = []
        program = resolve_program([])
        for index, unit in enumerate(units):
            try:
                program = resolve_program(kept + [unit])
            except Exception as exc:
                result.failures.record(
                    "resolve", "unit:%d" % index, exc, "unit-quarantined"
                )
                continue
            kept.append(unit)
        return program, kept

    def run_on_sources(self, sources):
        """Run the pipeline over raw Java source strings."""
        result = PipelineResult()
        run_before = (
            self.cache.stats.snapshot() if self.cache is not None else None
        )
        start = time.perf_counter()
        units, parse_hits = self._parse_units(sources, result)
        cache_detail = (
            ", cache %d/%d units" % (parse_hits, len(units))
            if self.cache is not None
            else ""
        )
        program, units = self._resolve_units(units, result)
        result.program = program
        result.stages.append(
            StageTrace(
                "extractor",
                time.perf_counter() - start,
                "%d units, %d classes%s"
                % (len(units), len(program.classes), cache_detail),
            )
        )
        return self._run_rest(program, result, run_before)

    def run_on_program(self, program):
        """Run the pipeline over an already-resolved program."""
        result = PipelineResult()
        run_before = (
            self.cache.stats.snapshot() if self.cache is not None else None
        )
        result.program = program
        result.stages.append(
            StageTrace("extractor", 0.0, "pre-resolved program")
        )
        return self._run_rest(program, result, run_before)

    def _run_rest(self, program, result, run_before=None):
        # Constraint generation + inference (Figure 10's two generators
        # plus INFER.NET are one stage here; stats break them down).
        start = time.perf_counter()
        cache_before = (
            self.cache.stats.snapshot() if self.cache is not None else None
        )
        inference = AnekInference(
            program,
            self.config,
            self.settings,
            cache=self.cache,
            failures=result.failures,
        )
        marginals = inference.run()
        result.boundary_marginals = marginals
        result.inference_stats = inference.stats
        stats = inference.stats
        if stats.warm_start:
            detail = "%d methods, warm start (full run restored from cache)" % (
                stats.methods
            )
        else:
            detail = "%d methods, %d solves, %d factors" % (
                stats.methods,
                stats.solves,
                stats.factors,
            )
            detail += ", engine=%s (%d built, %d reused, %d skipped" % (
                stats.engine,
                stats.builds,
                stats.reuses,
                stats.skips,
            )
            if stats.replays:
                detail += ", %d replayed" % stats.replays
            detail += "; build %.3fs, kernel %.3fs)" % (
                stats.build_seconds,
                stats.solve_seconds,
            )
        if cache_before is not None:
            moved = self.cache.stats.delta(cache_before)
            result.cache_stats = self.cache.stats.delta(
                run_before if run_before is not None else cache_before
            )
            detail += (
                ", cache[pfg %d/%d, solve %d hit/%d miss, invalidated %d]"
                % (
                    moved.pfg_hits,
                    moved.pfg_hits + moved.pfg_misses,
                    moved.solve_hits,
                    moved.solve_misses,
                    moved.invalidated_methods,
                )
            )
        if stats.executor != "worklist" and not stats.warm_start:
            detail += ", executor=%s jobs=%d (%d levels, %d rounds)" % (
                stats.executor,
                stats.jobs,
                stats.levels,
                stats.rounds,
            )
            if stats.shards > 1:
                detail += ", shards=%d" % stats.shards
        if stats.resumed:
            detail += ", resumed"
        if stats.checkpoints:
            detail += ", %d checkpoint(s)" % stats.checkpoints
        if stats.sheds:
            detail += ", %d memory shed(s)" % stats.sheds
        if stats.pfg_sheds or stats.pfg_rehydrations:
            detail += ", pfg[%d shed(s), %d rehydration(s)]" % (
                stats.pfg_sheds,
                stats.pfg_rehydrations,
            )
        result.stages.append(
            StageTrace("anek-infer", time.perf_counter() - start, detail)
        )
        # Per-level trace of the scheduled engine (empty for the worklist).
        for entry in stats.schedule:
            level_detail = "%d methods" % entry["methods"]
            shard_trace = entry.get("shards")
            if shard_trace:
                level_detail += ", shards[%s]" % ", ".join(
                    "%d: %d in %.3fs"
                    % (shard["shard"], shard["methods"], shard["seconds"])
                    for shard in shard_trace
                )
            result.stages.append(
                StageTrace(
                    "  level %d.%d" % (entry["round"], entry["level"]),
                    entry["seconds"],
                    level_detail,
                    nested=True,
                )
            )
        start = time.perf_counter()
        result.specs = inference.extract_specs(marginals)
        result.preannotated_methods = {
            ref.qualified_name
            for ref in result.specs
            if inference.spec_env.is_annotated(ref)
        }
        result.stages.append(
            StageTrace(
                "extract-specs",
                time.perf_counter() - start,
                "%d methods annotated" % count_nonempty(result.specs),
            )
        )
        policy = self.settings.effective_policy()
        if self.apply_annotations:
            start = time.perf_counter()
            try:
                apply_specs(program, result.specs)
                result.annotated_sources = render_annotated_sources(program)
                detail = "%d source files rendered" % len(
                    result.annotated_sources
                )
            except Exception as exc:
                if not policy.enabled and not isinstance(
                    exc, ResourceLimitError
                ):
                    raise
                result.failures.record(
                    "applier",
                    "program",
                    exc,
                    "resource-limit"
                    if isinstance(exc, ResourceLimitError)
                    else "stage-skipped",
                )
                detail = "skipped (%s)" % type(exc).__name__
            result.stages.append(
                StageTrace("applier", time.perf_counter() - start, detail)
            )
        if self.run_checker:
            start = time.perf_counter()
            try:
                check = run_check(
                    program,
                    tier=self.check_tier,
                    failures=result.failures,
                )
                result.warnings = check.warnings
                detail = "%d warnings, tier=%s" % (
                    len(result.warnings),
                    check.tier,
                )
                if check.tier != "full":
                    detail += (
                        ", tier1 %d method(s)/%d site(s), tier2 %d/%d"
                        % (
                            check.tier1_methods,
                            check.tier1_sites,
                            check.tier2_methods,
                            check.tier2_sites,
                        )
                    )
                if stats is not None:
                    stats.check_tier = check.tier
                    stats.check_seconds = check.total_seconds
                    stats.check_tier1_seconds = check.tier1_seconds
                    stats.check_tier2_seconds = check.tier2_seconds
                    stats.check_tier1_methods = check.tier1_methods
                    stats.check_tier2_methods = check.tier2_methods
                    stats.check_tier1_sites = check.tier1_sites
                    stats.check_tier2_sites = check.tier2_sites
            except Exception as exc:
                if not policy.enabled and not isinstance(
                    exc, ResourceLimitError
                ):
                    raise
                result.failures.record(
                    "plural-check",
                    "program",
                    exc,
                    "resource-limit"
                    if isinstance(exc, ResourceLimitError)
                    else "stage-skipped",
                )
                detail = "skipped (%s)" % type(exc).__name__
            result.stages.append(
                StageTrace("plural-check", time.perf_counter() - start, detail)
            )
        return result


def infer_and_check(sources, config=None, settings=None):
    """One-call convenience API: sources in, PipelineResult out."""
    pipeline = AnekPipeline(config=config, settings=settings)
    return pipeline.run_on_sources(sources)
