"""The Permission Flow Graph (paper §3.1).

A PFG is a directed graph of permission flow through one method.  Nodes
represent points where a permission exists (parameter pre/postconditions,
call-site pre/post/result nodes, allocations, field accesses, splits and
merges); edges represent flow.  Permission flow differs from data flow in
exactly the two ways the paper notes: permission is *retained* at call
sites and field assignments, and permission flows *back out* of call
arguments when the callee returns.
"""


class PFGNodeKind:
    PARAM_PRE = "param-pre"
    PARAM_POST = "param-post"
    SPLIT = "split"
    RETAINED = "retained"
    MERGE = "merge"
    CALL_PRE = "call-pre"
    CALL_POST = "call-post"
    CALL_RESULT = "call-result"
    NEW = "new"
    FIELD_LOAD = "field-load"
    FIELD_STORE = "field-store"
    RETURN = "return"


class PFGNode:
    """One node of a PFG.

    ``class_name`` identifies the protocol class whose permission flows
    through (None when unknown).  Call-related nodes carry ``callee`` (a
    MethodRef or None) and ``target`` (``"this"``, a parameter name, or
    ``"result"``) so that summaries can be linked.  ``hints`` carries
    heuristic flags set during construction (e.g. ``"sync-target"``).
    """

    __slots__ = (
        "node_id",
        "kind",
        "label",
        "class_name",
        "callee",
        "target",
        "line",
        "hints",
        "out_edges",
        "in_edges",
    )

    def __init__(self, node_id, kind, label, class_name=None, callee=None,
                 target=None, line=0):
        self.node_id = node_id
        self.kind = kind
        self.label = label
        self.class_name = class_name
        self.callee = callee
        self.target = target
        self.line = line
        self.hints = set()
        self.out_edges = []
        self.in_edges = []

    @property
    def is_split(self):
        return self.kind == PFGNodeKind.SPLIT

    @property
    def is_merge(self):
        return self.kind == PFGNodeKind.MERGE

    def __repr__(self):
        return "PFGNode(%d, %s, %s)" % (self.node_id, self.kind, self.label)


class PFGEdge:
    """A directed permission-flow edge."""

    __slots__ = ("src", "dst", "role")

    def __init__(self, src, dst, role=None):
        self.src = src
        self.dst = dst
        self.role = role  # "given" | "retained" | None

    def __repr__(self):
        return "PFGEdge(%s -> %s%s)" % (
            self.src.label,
            self.dst.label,
            ", %s" % self.role if self.role else "",
        )


class PFG:
    """The permission flow graph for one method."""

    def __init__(self, method_ref):
        self.method_ref = method_ref
        self.nodes = []
        self.edges = []
        # Boundary nodes for summary exchange.
        self.param_pre = {}  # target name -> node
        self.param_post = {}  # target name -> node
        self.result_node = None
        # Field-store receiver pairs for constraint L3.
        self.field_store_receivers = []  # (store_node, receiver_node)
        # Call-site boundary nodes for APPLYSUMMARY: list of dicts
        # {"callee": MethodRef|None, "pre": {target: node},
        #  "post": {target: node}, "result": node|None}
        self.call_sites = []

    def new_node(self, kind, label, **kwargs):
        node = PFGNode(len(self.nodes), kind, label, **kwargs)
        self.nodes.append(node)
        return node

    def new_edge(self, src, dst, role=None):
        edge = PFGEdge(src, dst, role)
        self.edges.append(edge)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)
        return edge

    # -- queries ----------------------------------------------------------------

    def boundary_nodes(self):
        """Nodes participating in this method's summary."""
        nodes = []
        nodes.extend(self.param_pre.values())
        nodes.extend(self.param_post.values())
        if self.result_node is not None:
            nodes.append(self.result_node)
        return nodes

    def node_count(self):
        return len(self.nodes)

    def edge_count(self):
        return len(self.edges)

    def to_dot(self, name=None):
        """Figure 6-style DOT rendering."""
        title = name or (
            self.method_ref.qualified_name.replace(".", "_")
            if self.method_ref
            else "pfg"
        )
        lines = ["digraph %s {" % title, "  rankdir=TB;"]
        shape_of = {
            PFGNodeKind.SPLIT: "triangle",
            PFGNodeKind.MERGE: "invtriangle",
            PFGNodeKind.PARAM_PRE: "box",
            PFGNodeKind.PARAM_POST: "box",
            PFGNodeKind.RETURN: "box",
        }
        for node in self.nodes:
            shape = shape_of.get(node.kind, "ellipse")
            lines.append(
                '  n%d [label="%s", shape=%s];'
                % (node.node_id, node.label.replace('"', "'"), shape)
            )
        for edge in self.edges:
            attr = ' [label="%s"]' % edge.role if edge.role else ""
            lines.append(
                "  n%d -> n%d%s;" % (edge.src.node_id, edge.dst.node_id, attr)
            )
        lines.append("}")
        return "\n".join(lines)

    def describe(self):
        """A compact text listing (used by the Figure 6 bench/example)."""
        lines = ["PFG for %s" % (self.method_ref.qualified_name if self.method_ref else "?")]
        lines.append("  %d nodes, %d edges" % (self.node_count(), self.edge_count()))
        for node in self.nodes:
            lines.append("  [%d] %s %s" % (node.node_id, node.kind, node.label))
            for edge in node.out_edges:
                role = " (%s)" % edge.role if edge.role else ""
                lines.append("      -> [%d] %s%s" % (edge.dst.node_id, edge.dst.label, role))
        return "\n".join(lines)

    def __repr__(self):
        return "PFG(%s, %d nodes, %d edges)" % (
            self.method_ref.qualified_name if self.method_ref else "?",
            len(self.nodes),
            len(self.edges),
        )
