"""Spec extraction: thresholding marginals (paper Figure 9, lines 22-29).

For every boundary target the most likely kind (and state) is read off
the final marginals; values whose probability exceeds the user threshold
``t ∈ [0.5, 1)`` become deterministic clauses of the emitted
:class:`repro.permissions.spec.MethodSpec`.  A most-likely kind of
``none`` means no clause (no permission required/returned).
"""

from repro.permissions import kinds
from repro.permissions.spec import MethodSpec, PermClause
from repro.permissions.states import ALIVE

#: A clause is emitted only when the no-permission mass has been pushed
#: below the uniform level (1/6 ≈ 0.167) by actual evidence.
NONE_GATE = 0.15

#: Kinds within this factor of the top non-none mass count as plausible.
PLAUSIBLE_FACTOR = 0.5


def _pick(dist, threshold):
    """(value, prob) of the argmax if above threshold, else None."""
    if not dist:
        return None
    value = max(dist, key=dist.get)
    prob = dist[value]
    if prob < threshold:
        return None
    return value, prob


def pick_kind(kind_dist, none_gate=NONE_GATE):
    """Choose the clause kind from a kind marginal, or None.

    The categorical marginal spreads demand across every satisfying kind
    (a demand for ``pure`` makes all five kinds plausible; a demand for
    ``full`` leaves only unique/full).  The idiomatic clause is the
    *weakest* kind in the plausible set — exactly the weakest-demand /
    strongest-when-concentrated behaviour of the paper's per-kind
    Bernoulli thresholds.
    """
    if not kind_dist:
        return None
    if kind_dist.get("none", 0.0) >= none_gate:
        return None
    masses = {
        kind: kind_dist.get(kind, 0.0) for kind in kinds.ALL_KINDS
    }
    top = max(masses.values())
    if top <= 0.0:
        return None
    plausible = [
        kind
        for kind in kinds.ALL_KINDS
        if masses[kind] >= PLAUSIBLE_FACTOR * top
    ]
    return kinds.weakest(plausible)


def clause_from_marginal(target, marginal, threshold, none_gate=NONE_GATE):
    """Build a PermClause from a TargetMarginal, or None."""
    if marginal is None or marginal.kind is None:
        return None
    kind = pick_kind(marginal.kind, none_gate=none_gate)
    if kind is None:
        return None
    state = ALIVE
    if marginal.state is not None:
        state_picked = _pick(marginal.state, threshold)
        if state_picked is not None:
            state = state_picked[0]
    return PermClause(kind, target, state)


def extract_method_spec(boundary, threshold):
    """Build a MethodSpec from one method's boundary marginals."""
    spec = MethodSpec()
    for (slot, target), marginal in sorted(
        boundary.items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        clause = clause_from_marginal(target, marginal, threshold)
        if clause is None:
            continue
        if slot == "pre":
            spec.requires.append(clause)
        else:  # post and result both land in ensures
            spec.ensures.append(clause)
    return spec


def extract_program_specs(program, results, spec_env, threshold=0.5,
                          keep_existing=True):
    """Extract specs for every inferred method.

    ``results`` maps MethodRef -> boundary marginals.  When
    ``keep_existing`` is set, methods that already carry a declared spec
    keep it (the paper's workflow: API specs are authoritative; ANEK
    fills in the client code).
    """
    specs = {}
    for method_ref, boundary in results.items():
        if keep_existing and spec_env.is_directly_annotated(method_ref):
            specs[method_ref] = spec_env.spec_of(method_ref)
            continue
        specs[method_ref] = extract_method_spec(boundary, threshold)
    return specs


def count_nonempty(specs):
    """Number of methods that received a non-empty spec."""
    return sum(1 for spec in specs.values() if not spec.is_empty)


def count_clauses(specs):
    """Total clause count across all specs (annotation volume)."""
    return sum(
        len(spec.requires) + len(spec.ensures) for spec in specs.values()
    )
