"""Construction of Permission Flow Graphs (paper §3.1).

The builder walks a method's CFG in reverse postorder, maintaining a
*front* per tracked object: the PFG node currently holding that object's
permission.  Objects are identified by the must-alias analysis's
witnesses, so reassignments between locals do not break the flow — the
paper: "a local must-alias analysis helps us track permission ... even if
those objects are reassigned to other local variables."

At CFG joins the fronts arriving on different paths meet in MERGE nodes;
at call sites and field stores permission passes through SPLIT nodes
(part given to the callee/field, part retained — the paper's two
differences between permission flow and data flow); permission returned
by callees re-enters through CALL_POST nodes into MERGE nodes.
"""

from repro.analysis import ir
from repro.analysis.alias import analyze_aliases
from repro.analysis.cfg import build_cfg
from repro.core.pfg import PFG, PFGNodeKind
from repro.resilience.limits import ResourceLimitError, recursion_guard

#: Classes never carrying a protocol (mirrors the checker's list).
_VALUE_CLASSES = frozenset(
    ["String", "Integer", "Long", "Boolean", "Character", "Object", "Double"]
)


class PFGBuilder:
    """Builds the PFG for one method."""

    def __init__(self, program, method_ref, cfg=None, limits=None):
        self.program = program
        self.method_ref = method_ref
        self._max_nodes = limits.cap("max_pfg_nodes") if limits else 0
        # CFG construction and alias analysis walk the AST recursively;
        # a method body deep enough to blow the interpreter stack must
        # surface as a typed, quarantinable failure.
        with recursion_guard("pfg-build-depth", "CFG/alias construction"):
            self.cfg = cfg or build_cfg(
                program, method_ref.class_decl, method_ref.method_decl
            )
        self.alias = analyze_aliases(
            self.cfg, [p.name for p in method_ref.method_decl.params]
        )
        self.pfg = PFG(method_ref)
        self.fronts = {}  # cfg node_id -> {witness: pfg node}
        self.witness_class = {}  # witness -> class name
        self.merge_nodes = {}  # (cfg node_id, witness) -> merge node
        self._processed = set()

    # -- helpers -----------------------------------------------------------------

    def _is_protocol_class(self, class_name):
        if class_name is None or class_name in _VALUE_CLASSES:
            return False
        return self.program.lookup_class(class_name) is not None

    def _edge(self, src, dst, role=None):
        for edge in src.out_edges:
            if edge.dst is dst and edge.role == role:
                return edge
        return self.pfg.new_edge(src, dst, role)

    def _result_class(self, callee):
        return_type = callee.method_decl.return_type
        if return_type is None:
            return callee.class_decl.name
        name = return_type.name
        if name in (callee.method_decl.type_params or []) or name in (
            callee.class_decl.type_params or []
        ):
            # Generic return: recover the instantiation when the receiver's
            # class binds it; otherwise unknown.
            return None
        return name

    # -- main build --------------------------------------------------------------

    def build(self):
        for node in self.cfg.reverse_postorder():
            if self._max_nodes and self.pfg.node_count() > self._max_nodes:
                raise ResourceLimitError(
                    "pfg-nodes",
                    self.pfg.node_count(),
                    self._max_nodes,
                    self.method_ref.qualified_name,
                )
            front = self._incoming_front(node)
            if node.kind == "entry":
                front = self._seed_params(front)
            elif node.kind == "instr":
                front = self._apply_instr(node, front)
            elif node.kind == "exit":
                self._connect_postconditions(front)
            self.fronts[node.node_id] = front
            self._processed.add(node.node_id)
        self._connect_back_edges()
        return self.pfg

    def _seed_params(self, front):
        method = self.method_ref.method_decl
        targets = []
        if not method.is_static:
            targets.append(("this", self.method_ref.class_decl.name))
        for param in method.params:
            class_name = param.type.name if param.type is not None else None
            targets.append((param.name, class_name))
        synchronized_method = "synchronized" in method.modifiers
        for name, class_name in targets:
            if not self._is_protocol_class(class_name):
                continue
            witness = ("param", name)
            pre = self.pfg.new_node(
                PFGNodeKind.PARAM_PRE,
                "PRE %s" % name,
                class_name=class_name,
                target=name,
                line=method.line,
            )
            if synchronized_method and name == "this":
                # A synchronized method locks its receiver: H5's
                # thread-shared hint applies exactly as for sync blocks.
                pre.hints.add("sync-target")
            post = self.pfg.new_node(
                PFGNodeKind.PARAM_POST,
                "POST %s" % name,
                class_name=class_name,
                target=name,
                line=method.line,
            )
            self.pfg.param_pre[name] = pre
            self.pfg.param_post[name] = post
            front = dict(front)
            front[witness] = pre
            self.witness_class[witness] = class_name
        return front

    # -- joins ---------------------------------------------------------------------

    def _incoming_front(self, node):
        available = [
            (pred, label)
            for pred, label in node.preds
            if pred.node_id in self._processed
        ]
        if not node.preds:
            return {}
        has_back_edges = len(available) < len(node.preds)
        if len(node.preds) == 1:
            pred = node.preds[0][0]
            return dict(self.fronts.get(pred.node_id, {}))
        # Join point: merge per object, keyed by the join witness each
        # variable carries here.
        fact = self.alias._result.in_facts[node.node_id]
        front = {}
        if fact is None:
            return front
        seen_witnesses = set()
        for var, joined_witness in fact.items():
            if joined_witness in seen_witnesses:
                continue
            seen_witnesses.add(joined_witness)
            sources = []
            for pred, _ in available:
                pred_witness = self.alias.witness_after(pred, var)
                pred_front = self.fronts.get(pred.node_id, {}).get(pred_witness)
                if pred_front is not None and pred_front not in sources:
                    sources.append(pred_front)
            if not sources:
                continue
            if len(sources) == 1 and not has_back_edges:
                front[joined_witness] = sources[0]
                self.witness_class.setdefault(
                    joined_witness, sources[0].class_name
                )
                continue
            merge = self.merge_nodes.get((node.node_id, joined_witness))
            if merge is None:
                merge = self.pfg.new_node(
                    PFGNodeKind.MERGE,
                    "merge@%d" % node.node_id,
                    class_name=sources[0].class_name,
                )
                self.merge_nodes[(node.node_id, joined_witness)] = merge
            for source in sources:
                self._edge(source, merge)
            front[joined_witness] = merge
            self.witness_class.setdefault(joined_witness, sources[0].class_name)
        return front

    def _connect_back_edges(self):
        """Second pass: wire fronts flowing along CFG back edges."""
        # Only CFG nodes that own a merge node can gain an edge here: the
        # inner loop bails out unless ``merge_nodes`` holds an entry for
        # (node, witness).  Restricting the walk to those nodes keeps this
        # pass proportional to the number of joins rather than scanning
        # every statement's alias facts (quadratic in straight-line
        # methods), and — because we merely skip iterations that produced
        # nothing — the edge insertion order is unchanged.
        merge_node_ids = {node_id for node_id, _ in self.merge_nodes}
        if not merge_node_ids:
            return
        for node in self.cfg.nodes:
            if node.node_id not in merge_node_ids:
                continue
            for pred, _ in node.preds:
                if pred.node_id not in self._processed:
                    continue
                # A back edge is one whose target was processed first and
                # for which a merge node exists.
                fact = self.alias._result.in_facts[node.node_id]
                if fact is None:
                    continue
                for var, joined_witness in fact.items():
                    merge = self.merge_nodes.get((node.node_id, joined_witness))
                    if merge is None:
                        continue
                    pred_witness = self.alias.witness_after(pred, var)
                    pred_front = self.fronts.get(pred.node_id, {}).get(pred_witness)
                    if pred_front is not None and pred_front is not merge:
                        self._edge(pred_front, merge)

    # -- instruction effects -----------------------------------------------------------

    def _apply_instr(self, node, front):
        instr = node.instr
        front = dict(front)
        if isinstance(instr, ir.Assign):
            source = instr.source
            if isinstance(source, ir.NewObj):
                self._apply_new(node, instr, source, front)
            elif isinstance(source, ir.Call):
                self._apply_call(node, instr, source, front)
            elif isinstance(source, ir.FieldLoad):
                self._apply_field_load(node, instr, source, front)
            # Plain copies need no PFG effect: fronts are witness-keyed.
        elif isinstance(instr, ir.FieldStore):
            self._apply_field_store(node, instr, front)
        elif isinstance(instr, ir.ReturnInstr):
            self._apply_return(node, instr, front)
        elif isinstance(instr, ir.SyncEnter):
            witness = self.alias.witness_before(node, instr.lock)
            lock_front = front.get(witness)
            if lock_front is not None:
                lock_front.hints.add("sync-target")
        return front

    def _apply_new(self, node, instr, source, front):
        # Constructor arguments flow like call arguments, so ANEK can
        # infer constructor parameter specifications.
        ctor = self.program.resolve_constructor(
            source.class_name, len(source.args)
        )
        if ctor is not None and source.args:
            site = {
                "callee": ctor,
                "pre": {},
                "post": {},
                "result": None,
                "line": instr.line,
                "method_name": source.class_name,
            }
            param_names = [p.name for p in ctor.method_decl.params]
            for target_name, var in zip(param_names, source.args):
                self._flow_argument(
                    node, instr, source.class_name, target_name, var, ctor,
                    site, front,
                )
            if site["pre"] or site["post"]:
                self.pfg.call_sites.append(site)
        if not self._is_protocol_class(source.class_name):
            return
        witness = self.alias.witness_after(node, instr.target)
        new_node = self.pfg.new_node(
            PFGNodeKind.NEW,
            "new %s" % source.class_name,
            class_name=source.class_name,
            line=instr.line,
        )
        new_node.hints.add("constructor-result")
        front[witness] = new_node
        self.witness_class[witness] = source.class_name

    def _apply_call(self, node, instr, call, front):
        callee = None
        if call.static_class is not None:
            callee = self.program.resolve_method(
                call.static_class, call.method_name, len(call.args)
            )
        site = {"callee": callee, "pre": {}, "post": {}, "result": None,
                "line": instr.line, "method_name": call.method_name}
        # Receiver and arguments flow through split/merge pairs.
        flows = []
        if call.receiver is not None and (
            callee is None or not callee.method_decl.is_static
        ):
            flows.append(("this", call.receiver))
        param_names = None
        if callee is not None:
            param_names = [p.name for p in callee.method_decl.params]
        for position, arg in enumerate(call.args):
            if param_names is not None and position < len(param_names):
                flows.append((param_names[position], arg))
            else:
                flows.append(("#%d" % position, arg))
        for target_name, var in flows:
            self._flow_argument(
                node, instr, call.method_name, target_name, var, callee,
                site, front,
            )
        # Result node.
        result_class = None
        if callee is not None:
            result_class = self._result_class(callee)
        if result_class is None and callee is not None:
            # Generic returns (Iterator<T>.next()): usually not protocol.
            result_class = None
        if self._is_protocol_class(result_class):
            result = self.pfg.new_node(
                PFGNodeKind.CALL_RESULT,
                "result %s()" % call.method_name,
                class_name=result_class,
                callee=callee,
                target="result",
                line=instr.line,
            )
            witness = self.alias.witness_after(node, instr.target)
            front[witness] = result
            self.witness_class[witness] = result_class
            site["result"] = result
        self.pfg.call_sites.append(site)

    def _flow_argument(self, node, instr, method_name, target_name, var,
                       callee, site, front):
        """Wire one argument's permission through split/pre/post/merge."""
        witness = self.alias.witness_before(node, var)
        current = front.get(witness)
        if current is None:
            return
        class_name = current.class_name
        split = self.pfg.new_node(
            PFGNodeKind.SPLIT,
            "split@%s.%s" % (method_name, target_name),
            class_name=class_name,
            line=instr.line,
        )
        pre = self.pfg.new_node(
            PFGNodeKind.CALL_PRE,
            "pre %s(%s)" % (method_name, target_name),
            class_name=class_name,
            callee=callee,
            target=target_name,
            line=instr.line,
        )
        post = self.pfg.new_node(
            PFGNodeKind.CALL_POST,
            "post %s(%s)" % (method_name, target_name),
            class_name=class_name,
            callee=callee,
            target=target_name,
            line=instr.line,
        )
        retained = self.pfg.new_node(
            PFGNodeKind.RETAINED,
            "retained@%s.%s" % (method_name, target_name),
            class_name=class_name,
            line=instr.line,
        )
        merge = self.pfg.new_node(
            PFGNodeKind.MERGE,
            "merge@%s.%s" % (method_name, target_name),
            class_name=class_name,
            line=instr.line,
        )
        merge.hints.add("call-merge")
        self._edge(current, split)
        self._edge(split, pre, role="given")
        self._edge(split, retained, role="retained")
        self._edge(retained, merge)
        self._edge(post, merge)
        front[witness] = merge
        site["pre"][target_name] = pre
        site["post"][target_name] = post

    def _apply_field_load(self, node, instr, source, front):
        receiver_witness = (
            self.alias.witness_before(node, source.receiver)
            if source.receiver
            else None
        )
        receiver_front = front.get(receiver_witness)
        receiver_class = (
            receiver_front.class_name if receiver_front is not None else None
        )
        if receiver_class is None and source.receiver == "this":
            receiver_class = self.method_ref.class_decl.name
        field_class = None
        if receiver_class is not None:
            found = self.program.lookup_field(receiver_class, source.field_name)
            if found is not None:
                _, field = found
                if field.type is not None:
                    field_class = field.type.name
        if not self._is_protocol_class(field_class):
            return
        load = self.pfg.new_node(
            PFGNodeKind.FIELD_LOAD,
            "load %s" % source.field_name,
            class_name=field_class,
            line=instr.line,
        )
        witness = self.alias.witness_after(node, instr.target)
        front[witness] = load
        self.witness_class[witness] = field_class

    def _apply_field_store(self, node, instr, front):
        value_witness = self.alias.witness_before(node, instr.value)
        value_front = front.get(value_witness)
        receiver_witness = (
            self.alias.witness_before(node, instr.receiver)
            if instr.receiver
            else None
        )
        receiver_front = front.get(receiver_witness)
        if value_front is not None:
            split = self.pfg.new_node(
                PFGNodeKind.SPLIT,
                "split@store.%s" % instr.field_name,
                class_name=value_front.class_name,
                line=instr.line,
            )
            store = self.pfg.new_node(
                PFGNodeKind.FIELD_STORE,
                "store %s" % instr.field_name,
                class_name=value_front.class_name,
                line=instr.line,
            )
            self._edge(value_front, split)
            self._edge(split, store, role="given")
            front[value_witness] = split  # next edge out is the retained flow
            if receiver_front is not None:
                self.pfg.field_store_receivers.append((store, receiver_front))
        elif receiver_front is not None:
            store = self.pfg.new_node(
                PFGNodeKind.FIELD_STORE,
                "store %s" % instr.field_name,
                line=instr.line,
            )
            self.pfg.field_store_receivers.append((store, receiver_front))

    def _apply_return(self, node, instr, front):
        if instr.value is None:
            return
        witness = self.alias.witness_before(node, instr.value)
        current = front.get(witness)
        if current is None:
            return
        if self.pfg.result_node is None:
            self.pfg.result_node = self.pfg.new_node(
                PFGNodeKind.RETURN,
                "RETURN result",
                class_name=current.class_name,
                target="result",
                line=instr.line,
            )
        self._edge(current, self.pfg.result_node)
        front.pop(witness, None)

    def _connect_postconditions(self, front):
        for name, post in self.pfg.param_post.items():
            witness = ("param", name)
            current = front.get(witness)
            if current is not None:
                self._edge(current, post)
            else:
                # The parameter's object was consumed or re-keyed by joins;
                # fall back to connecting any join witness derived from it.
                for witness_key, node in front.items():
                    if (
                        isinstance(witness_key, tuple)
                        and len(witness_key) >= 2
                        and witness_key[0] == "join"
                        and witness_key[1] == name
                    ):
                        self._edge(node, post)
                        break


def build_pfg(program, method_ref, cfg=None, limits=None):
    """Build the PFG for one method."""
    return PFGBuilder(program, method_ref, cfg=cfg, limits=limits).build()
