"""ANEK: probabilistic, modular inference of typestate specifications.

The paper's primary contribution.  Submodules follow the paper's
structure:

* ``pfg``         — the Permission Flow Graph abstraction (§3.1)
* ``pfg_builder`` — PFG construction from CFG + must-alias analysis
* ``heuristics``  — tunable heuristic configuration (H1–H5)
* ``priors``      — prior distributions from existing specs (§3.2)
* ``constraints`` — logical (L1–L3) and heuristic (H1–H5) constraints (§3.3)
* ``model``       — per-method probabilistic models (Definition 1)
* ``summaries``   — probabilistic method summaries
* ``infer``       — the ANEK-INFER modular worklist algorithm (Figure 9)
* ``extract``     — thresholding marginals into deterministic specs
* ``applier``     — writing inferred ``@Perm`` annotations back to source
* ``logical``     — the "Anek Logical" deterministic baseline (§4.2)
* ``pipeline``    — the end-to-end driver (Figure 10)
"""

from repro.core.heuristics import HeuristicConfig
from repro.core.infer import AnekInference, InferenceSettings
from repro.core.pipeline import AnekPipeline, PipelineResult, infer_and_check

__all__ = [
    "HeuristicConfig",
    "AnekInference",
    "InferenceSettings",
    "AnekPipeline",
    "PipelineResult",
    "infer_and_check",
]
