"""The "Anek Logical" baseline (paper §4.2, Table 2 last row).

A traditional, non-probabilistic inference: only the logical constraints
are generated, treated as *hard* constraints, and the whole program is
solved at once (no modular summaries) by exact enumeration over the
joint assignment space — the global model of Definition 1 with
PARAMARG equality constraints binding call-site boundary nodes to callee
boundary nodes.

Exactly as in the paper, this approach fails on large programs: the
assignment space explodes, and the solver reports DNF once its memory
budget (a proxy for the paper's out-of-memory condition) is exceeded.
On conflicting constraints (buggy programs) it reports unsatisfiability
rather than producing a spec — the contrast the paper draws with ANEK.
"""

from repro.core.heuristics import HeuristicConfig
from repro.core.model import MethodModel
from repro.core.pfg_builder import build_pfg
from repro.core.priors import SpecEnvironment
from repro.factorgraph.exact import assignment_space_size, run_exact
from repro.factorgraph.factors import soft_equality
from repro.factorgraph.graph import FactorGraph

#: Assignment-space budget standing in for the paper's 2 GB memory limit.
DEFAULT_BUDGET = 50_000_000


class DidNotFinish(Exception):
    """Raised when the joint model exceeds the solver's budget (DNF)."""

    def __init__(self, space_size, budget):
        self.space_size = space_size
        self.budget = budget
        super().__init__(
            "joint assignment space ~1e%d exceeds budget ~1e%d (DNF)"
            % (len(str(space_size)) - 1, len(str(budget)) - 1)
        )


class Unsatisfiable(Exception):
    """Raised when the hard logical constraints admit no assignment."""


class LogicalInference:
    """Global, deterministic inference over hard logical constraints."""

    def __init__(self, program, budget=DEFAULT_BUDGET):
        self.program = program
        self.budget = budget
        self.config = HeuristicConfig.logical_only()
        self.spec_env = SpecEnvironment(program)

    def build_global_model(self):
        """One factor graph for the whole program (Definition 1's Φ_P)."""
        joint = FactorGraph(name="anek-logical")
        models = {}
        renamed = {}
        for method_ref in self.program.methods_with_bodies():
            pfg = build_pfg(self.program, method_ref)
            model = MethodModel(
                self.program, pfg, self.config, spec_env=self.spec_env
            ).build()
            models[method_ref] = model
            prefix = method_ref.qualified_name
            mapping = {}
            for name, variable in model.graph.variables.items():
                new_var = joint.add_variable(
                    "%s::%s" % (prefix, name), variable.domain
                )
                new_var.prior = variable.prior
                mapping[name] = new_var
            for factor in model.graph.factors:
                joint.add_factor(
                    type(factor)(
                        "%s::%s" % (prefix, factor.name),
                        [mapping[v.name] for v in factor.variables],
                        factor.table,
                    )
                )
            renamed[method_ref] = mapping
        self._add_paramarg_constraints(joint, models, renamed)
        return joint, models, renamed

    def _add_paramarg_constraints(self, joint, models, renamed):
        """PARAMARG(c): call-site boundary nodes equal callee boundary
        nodes (hard equalities)."""
        for caller_ref, model in models.items():
            caller_map = renamed[caller_ref]
            for site in model.pfg.call_sites:
                callee = site["callee"]
                if callee is None or callee not in models:
                    continue
                callee_model = models[callee]
                callee_map = renamed[callee]
                pairs = []
                for target, node in site["pre"].items():
                    peer = callee_model.pfg.param_pre.get(target)
                    if peer is not None:
                        pairs.append((node, peer))
                for target, node in site["post"].items():
                    peer = callee_model.pfg.param_post.get(target)
                    if peer is not None:
                        pairs.append((node, peer))
                if site["result"] is not None:
                    peer = callee_model.pfg.result_node
                    if peer is not None:
                        pairs.append((site["result"], peer))
                for site_node, callee_node in pairs:
                    self._equate(
                        joint,
                        caller_map,
                        callee_map,
                        model,
                        callee_model,
                        site_node,
                        callee_node,
                    )

    @staticmethod
    def _equate(joint, caller_map, callee_map, caller_model, callee_model,
                site_node, callee_node):
        site_kind = caller_map["n%d.kind" % site_node.node_id]
        callee_kind = callee_map["n%d.kind" % callee_node.node_id]
        joint.add_factor(
            soft_equality(
                "paramarg/%s=%s" % (site_kind.name, callee_kind.name),
                site_kind,
                callee_kind,
                0.999999,
            )
        )
        site_state = caller_model.vars.state(site_node)
        callee_state = callee_model.vars.state(callee_node)
        if (
            site_state is not None
            and callee_state is not None
            and site_state.domain == callee_state.domain
        ):
            site_var = caller_map[site_state.name]
            callee_var = callee_map[callee_state.name]
            joint.add_factor(
                soft_equality(
                    "paramarg/%s=%s" % (site_var.name, callee_var.name),
                    site_var,
                    callee_var,
                    0.999999,
                )
            )

    def run(self, early_stop=True):
        """Solve exactly; raises DidNotFinish on budget blowout.

        With ``early_stop`` the assignment space is accumulated method by
        method (from PFG sizes alone) and the run aborts as soon as the
        budget is exceeded — mirroring how the paper's logical solver ran
        out of memory *before* reaching a fixpoint.
        """
        if early_stop:
            space = self.space_size(stop_at=self.budget)
            if space > self.budget:
                raise DidNotFinish(space, self.budget)
        joint, _, _ = self.build_global_model()
        space = assignment_space_size(joint)
        if space > self.budget:
            raise DidNotFinish(space, self.budget)
        result = run_exact(joint, budget=self.budget)
        return result, joint

    def space_size(self, stop_at=None):
        """The joint assignment-space size (without building factors).

        ``stop_at`` short-circuits once the accumulated space exceeds it.
        """
        from repro.core.model import NodeVariables
        from repro.factorgraph.graph import FactorGraph

        space = 1
        for method_ref in self.program.methods_with_bodies():
            pfg = build_pfg(self.program, method_ref)
            scratch = FactorGraph()
            namer = NodeVariables(scratch, self.program)
            for node in pfg.nodes:
                space *= namer.kind(node).cardinality
                state = namer.state(node)
                if state is not None:
                    space *= state.cardinality
            if stop_at is not None and space > stop_at:
                return space
        return space
