"""The annotation applier (paper Figure 10, "Eclipse Applier").

Walks the program's ASTs and attaches the inferred ``@Perm`` (and state
test) annotations to each method declaration, then pretty-prints the
annotated source.  Existing inferred annotations are replaced; declared
API annotations are preserved unless ``replace`` is set.
"""

from repro.java import ast
from repro.java.pretty import pretty_print
from repro.permissions.spec import SPEC_ANNOTATION_NAMES


def annotation_nodes_for_spec(spec):
    """Render a MethodSpec as AST annotation nodes."""
    nodes = []
    for name, arguments in spec.to_annotations():
        nodes.append(ast.Annotation(name=name, arguments=dict(arguments)))
    return nodes


def apply_spec_to_method(method_decl, spec, replace=False):
    """Attach ``spec`` to a method declaration in place.

    Returns True when the method's annotations changed.
    """
    existing = [
        annotation
        for annotation in method_decl.annotations
        if annotation.name in SPEC_ANNOTATION_NAMES
        or annotation.name in ("TrueIndicates", "FalseIndicates")
    ]
    if existing and not replace:
        return False
    kept = [
        annotation
        for annotation in method_decl.annotations
        if annotation not in existing
    ]
    new_nodes = annotation_nodes_for_spec(spec)
    if not new_nodes:
        if existing and replace:
            method_decl.annotations = kept
            return True
        return False
    method_decl.annotations = kept + new_nodes
    return True


def apply_specs(program, specs, replace=False):
    """Apply inferred specs across the program; returns change count."""
    changed = 0
    for method_ref, spec in specs.items():
        if spec.is_empty:
            continue
        if apply_spec_to_method(method_ref.method_decl, spec, replace=replace):
            changed += 1
    return changed


def render_annotated_sources(program):
    """Pretty-print every compilation unit after annotation application."""
    return [pretty_print(unit) for unit in program.units]
