"""Minimal ASCII table rendering for experiment output."""


class Table:
    """A titled table with a header row and string-able cells."""

    def __init__(self, title, headers):
        self.title = title
        self.headers = list(headers)
        self.rows = []

    def add_row(self, *cells):
        if len(cells) != len(self.headers):
            raise ValueError(
                "expected %d cells, got %d" % (len(self.headers), len(cells))
            )
        self.rows.append([str(cell) for cell in cells])
        return self

    def render(self):
        return render_table(self.title, self.headers, self.rows)

    def __str__(self):
        return self.render()


def render_table(title, headers, rows):
    """Render a boxed ASCII table."""
    columns = len(headers)
    widths = [len(str(headers[i])) for i in range(columns)]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(char="-", joint="+"):
        return joint + joint.join(char * (w + 2) for w in widths) + joint

    def fmt(cells):
        return "| " + " | ".join(
            str(cell).ljust(widths[i]) for i, cell in enumerate(cells)
        ) + " |"

    out = [title, line("="), fmt(headers), line("=")]
    for row in rows:
        out.append(fmt(row))
    out.append(line("-"))
    return "\n".join(out)


def format_seconds(seconds):
    """Human-ish duration: '3min 47sec' style like the paper."""
    if seconds is None:
        return "-"
    if seconds < 60:
        return "%.1f sec" % seconds
    minutes = int(seconds // 60)
    rest = seconds - 60 * minutes
    return "%dmin %dsec" % (minutes, round(rest))
