"""Reporting: ASCII tables and the paper's experiment harnesses."""

from repro.reporting.tables import Table, render_table

__all__ = ["Table", "render_table"]
