"""Verification-coverage reporting.

The paper closes its PMD discussion by counting what *did* verify:
"Given that the remaining 167 calls to the next() method were correctly
verified by PLURAL, the resulting specifications are still quite useful
to programmers."  This module computes that view: per protocol method,
how many call sites exist, how many are flagged, and the verified
percentage — the number a practically-motivated programmer cares about.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.callgraph import build_call_graph


@dataclass
class MethodCoverage:
    """Verification coverage for one protocol method."""

    qualified_name: str = ""
    call_sites: int = 0
    warned_sites: int = 0

    @property
    def verified_sites(self):
        return self.call_sites - self.warned_sites

    @property
    def verified_fraction(self):
        if self.call_sites == 0:
            return 1.0
        return self.verified_sites / self.call_sites


@dataclass
class CoverageReport:
    """Whole-program verification coverage."""

    methods: Dict[str, MethodCoverage] = field(default_factory=dict)
    total_warnings: int = 0

    def method(self, qualified_name):
        return self.methods.get(qualified_name)

    def overall(self):
        sites = sum(m.call_sites for m in self.methods.values())
        warned = sum(m.warned_sites for m in self.methods.values())
        return MethodCoverage("<all>", sites, warned)

    def render(self):
        lines = ["Verification coverage (protocol call sites):"]
        for name in sorted(self.methods):
            cov = self.methods[name]
            lines.append(
                "  %-24s %4d sites, %4d verified (%.0f%%)"
                % (
                    name,
                    cov.call_sites,
                    cov.verified_sites,
                    100.0 * cov.verified_fraction,
                )
            )
        overall = self.overall()
        lines.append(
            "  %-24s %4d sites, %4d verified (%.0f%%)"
            % (
                "TOTAL",
                overall.call_sites,
                overall.verified_sites,
                100.0 * overall.verified_fraction,
            )
        )
        return "\n".join(lines)


def coverage_report(program, warnings, protocol_methods=None):
    """Compute coverage of protocol call sites against checker warnings.

    ``protocol_methods`` restricts the report to specific qualified
    names (default: every program method that carries a ``requires``
    clause, directly or inherited).
    """
    from repro.core.priors import SpecEnvironment

    spec_env = SpecEnvironment(program)
    graph = build_call_graph(program)
    report = CoverageReport(total_warnings=len(warnings))
    warned_sites = {(w.method, w.line) for w in warnings}
    for site in graph.sites:
        callee = site.callee
        if callee is None:
            continue
        name = callee.qualified_name
        if protocol_methods is not None:
            if name not in protocol_methods:
                continue
        else:
            spec = spec_env.spec_of(callee)
            if not spec.requires:
                continue
        coverage = report.methods.setdefault(name, MethodCoverage(name))
        coverage.call_sites += 1
        if (site.caller.qualified_name, site.line) in warned_sites:
            coverage.warned_sites += 1
    return report
