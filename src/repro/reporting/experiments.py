"""Experiment harnesses regenerating the paper's tables and figures.

Each ``table*`` function returns a structured result plus a rendered
ASCII table whose rows mirror the paper's:

* Table 1 — corpus statistics (classes, methods, lines, next() calls)
* Table 2 — annotations/warnings/time for Original, Bierhoff, Anek,
  and Anek Logical (DNF)
* Table 3 — ANEK vs PLURAL local inference on the branchy program
* Table 4 — quality of inferred specs vs the hand-annotation oracle

Figures: 1 (iterator protocol), 4 (permission kinds), 6 (the PFG of the
``copy`` method), 10 (pipeline stage trace).
"""

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core import AnekPipeline, InferenceSettings
from repro.core.logical import DidNotFinish, LogicalInference
from repro.corpus import generate_pmd_corpus
from repro.corpus.generator import (
    generate_branchy_program,
    generate_inlined_program,
)
from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.corpus.oracle import (
    MANUAL_ANNOTATION_MINUTES,
    apply_oracle,
    oracle_specs,
)
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import resolve_program
from repro.permissions import kinds
from repro.plural.checker import run_check
from repro.plural.local_inference import LocalFractionInference
from repro.reporting.tables import Table, format_seconds


# ---------------------------------------------------------------------------
# Shared corpus handling
# ---------------------------------------------------------------------------


class PmdExperiment:
    """Runs the Table 1/2/4 experiments over one generated corpus."""

    def __init__(self, corpus_spec=None, settings=None, logical_budget=None,
                 check_tier="auto"):
        self.bundle = generate_pmd_corpus(corpus_spec)
        self.settings = settings or InferenceSettings()
        self.logical_budget = logical_budget
        self.check_tier = check_tier
        self._anek_result = None
        self._anek_seconds = None

    def fresh_program(self):
        units = [
            parse_compilation_unit(source)
            for source in self.bundle.all_sources()
        ]
        return resolve_program(units)

    # -- Table 1 ---------------------------------------------------------------

    def table1(self):
        program = self.fresh_program()
        client_classes = [
            name
            for name in program.classes
            if not self._is_api_class(name)
        ]
        client_methods = [
            ref
            for ref in program.all_methods()
            if not self._is_api_class(ref.class_decl.name)
        ]
        next_calls = self._count_next_calls(program)
        stats = {
            "lines": self.bundle.line_count(),
            "classes": len(client_classes),
            "methods": len(client_methods),
            "next_calls": next_calls,
        }
        table = Table(
            "Table 1. Simple statistics for the synthetic PMD corpus.",
            ["Statistic", "Value", "Paper (PMD)"],
        )
        table.add_row("Lines of Source", stats["lines"], 38483)
        table.add_row("Number of Classes", stats["classes"], 463)
        table.add_row("Number of Methods", stats["methods"], 3120)
        table.add_row("Calls to Iterator.next()", stats["next_calls"], 170)
        return stats, table

    @staticmethod
    def _is_api_class(name):
        return name in (
            "Iterator",
            "Iterable",
            "Collection",
            "ArrayList",
            "ListIterator",
        )

    def _count_next_calls(self, program):
        from repro.analysis.callgraph import build_call_graph

        graph = build_call_graph(program)
        count = 0
        for site in graph.sites:
            if site.callee is None:
                continue
            if (
                site.callee.method_decl.name == "next"
                and program.is_subtype(site.callee.class_decl.name, "Iterator")
            ):
                count += 1
        return count

    # -- Table 2 ---------------------------------------------------------------

    def run_original(self):
        program = self.fresh_program()
        check = run_check(program, tier=self.check_tier)
        row = Table2Row(
            "Original", 0, len(check.warnings), check.total_seconds,
            annotation_seconds=0.0,
        )
        _attach_check(row, check)
        return row

    def run_bierhoff(self):
        program = self.fresh_program()
        annotated = apply_oracle(program, self.bundle)
        check = run_check(program, tier=self.check_tier)
        row = Table2Row(
            "Bierhoff (oracle)",
            annotated,
            len(check.warnings),
            check.total_seconds,
            annotation_seconds=MANUAL_ANNOTATION_MINUTES * 60.0,
            note="annotation time simulated per Bierhoff's thesis",
        )
        _attach_check(row, check)
        return row

    def run_anek(self):
        program = self.fresh_program()
        start = time.perf_counter()
        pipeline = AnekPipeline(
            settings=self.settings, check_tier=self.check_tier
        )
        result = pipeline.run_on_program(program)
        elapsed = time.perf_counter() - start
        self._anek_result = result
        self._anek_seconds = elapsed
        stats = result.inference_stats
        row = Table2Row(
            "Anek",
            result.inferred_annotation_count,
            len(result.warnings),
            elapsed,
            annotation_seconds=sum(
                stage.seconds
                for stage in result.stages
                if stage.name != "plural-check"
            ),
            note="(build %.2fs + kernel %.2fs)"
            % (stats.build_seconds, stats.solve_seconds),
        )
        row.check_tier = stats.check_tier
        row.tier1_sites = stats.check_tier1_sites
        row.tier2_sites = stats.check_tier2_sites
        row.tier1_seconds = stats.check_tier1_seconds
        row.tier2_seconds = stats.check_tier2_seconds
        return row

    def run_anek_logical(self):
        program = self.fresh_program()
        inference = LogicalInference(program)
        if self.logical_budget is not None:
            inference.budget = self.logical_budget
        start = time.perf_counter()
        try:
            inference.run()
        except DidNotFinish as dnf:
            return Table2Row(
                "Anek Logical",
                None,
                None,
                time.perf_counter() - start,
                dnf=True,
                note="joint space ~1e%d assignments"
                % (len(str(dnf.space_size)) - 1),
            )
        return Table2Row(
            "Anek Logical", None, None, time.perf_counter() - start
        )

    def table2(self):
        rows = [
            self.run_original(),
            self.run_bierhoff(),
            self.run_anek(),
            self.run_anek_logical(),
        ]
        table = Table(
            "Table 2. The results of running ANEK on the synthetic PMD corpus.",
            ["Method", "Annotations", "Warnings", "Time Taken",
             "Check (T1/T2)", "Notes"],
        )
        paper = {
            "Original": (0, 45, "0"),
            "Bierhoff (oracle)": (26, 3, "75min"),
            "Anek": (31, 4, "3min 47sec"),
            "Anek Logical": ("N/A", "N/A", "DNF"),
        }
        for row in rows:
            time_text = "DNF" if row.dnf else format_seconds(
                row.annotation_seconds
                if row.annotation_seconds
                else row.check_seconds
            )
            expected = paper.get(row.config, ("", "", ""))
            table.add_row(
                row.config,
                "N/A" if row.annotations is None else row.annotations,
                "N/A" if row.warnings is None else row.warnings,
                time_text,
                row.check_cell,
                "paper: %s/%s/%s %s"
                % (expected[0], expected[1], expected[2], row.note or ""),
            )
        return rows, table

    # -- Table 4 ---------------------------------------------------------------

    def table4(self):
        if self._anek_result is None:
            self.run_anek()
        gold = oracle_specs(self.bundle)
        # Compare client-side inference only: API classes and methods
        # whose spec pre-existed inference (directly or via a supertype)
        # are not ANEK's work product — except where the oracle annotated
        # them (the state-test overrides), which must stay comparable.
        preannotated = self._anek_result.preannotated_methods
        inferred = {}
        for ref, spec in self._anek_result.specs.items():
            name = ref.qualified_name
            if name not in gold:
                if self._is_api_class(ref.class_decl.name):
                    continue
                if name in preannotated:
                    continue
            inferred[name] = spec
        counts = categorize_specs(inferred, gold)
        table = Table(
            "Table 4. Comparison of by-hand annotations with Anek.",
            ["Description", "Count", "Paper"],
        )
        paper = {
            "Same": 14,
            "ANEK Added Helpful Spec.": 6,
            "ANEK Added Constraining Spec.": 1,
            "ANEK Removed Spec.": 3,
            "ANEK Changed Spec., More Restrictive": 6,
            "ANEK Changed Spec., Wrong": 3,
        }
        for description, value in counts.items():
            table.add_row(description, value, paper.get(description, ""))
        return counts, table


@dataclass
class Table2Row:
    config: str
    annotations: Optional[int]
    warnings: Optional[int]
    check_seconds: float
    annotation_seconds: float = 0.0
    dnf: bool = False
    note: str = ""
    #: Checker dispatch tier and the tier-1/tier-2 split: how many call
    #: sites the vectorized bit-vector pass proved versus how many fell
    #: through to the full fractional-permission checker, with the wall
    #: clock spent in each.  Empty tier means the row never ran a check.
    check_tier: str = ""
    tier1_sites: int = 0
    tier2_sites: int = 0
    tier1_seconds: float = 0.0
    tier2_seconds: float = 0.0

    @property
    def check_cell(self):
        """The per-tier ``Check (T1/T2)`` table cell for this row."""
        if not self.check_tier:
            return "-"
        if self.check_tier == "full":
            return "full"
        return "%d/%d sites, %s/%s" % (
            self.tier1_sites,
            self.tier2_sites,
            format_seconds(self.tier1_seconds),
            format_seconds(self.tier2_seconds),
        )


def _attach_check(row, check):
    """Copy a :class:`repro.plural.checker.CheckRun`'s tier split onto a
    Table 2 row."""
    row.check_tier = check.tier
    row.tier1_sites = check.tier1_sites
    row.tier2_sites = check.tier2_sites
    row.tier1_seconds = check.tier1_seconds
    row.tier2_seconds = check.tier2_seconds
    return row


# ---------------------------------------------------------------------------
# Table 4 spec comparison
# ---------------------------------------------------------------------------


def categorize_specs(inferred, gold):
    """Bucket inferred specs against the oracle (paper Table 4 rows)."""
    from repro.reporting.specdiff import classify_pair

    counts = {
        "Same": 0,
        "ANEK Added Helpful Spec.": 0,
        "ANEK Added Constraining Spec.": 0,
        "ANEK Removed Spec.": 0,
        "ANEK Changed Spec., More Restrictive": 0,
        "ANEK Changed Spec., Wrong": 0,
    }
    for name in sorted(set(inferred) | set(gold)):
        category = classify_pair(inferred.get(name), gold.get(name))
        if category is not None:
            counts[category] += 1
    return counts


# ---------------------------------------------------------------------------
# Table 3: ANEK vs PLURAL local inference
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    anek_seconds: float = 0.0
    local_seconds: float = 0.0
    anek_warnings: int = 0
    local_satisfiable: bool = True
    branchy_lines: int = 0
    inlined_lines: int = 0
    table: object = None


def table3_experiment(methods=24, settings=None):
    """ANEK on the multi-method branchy program vs PLURAL's local
    fraction inference on the fully inlined version."""
    branchy = generate_branchy_program(methods)
    inlined = generate_inlined_program(methods)
    result = Table3Result(
        branchy_lines=len(branchy.splitlines()),
        inlined_lines=len(inlined.splitlines()),
    )
    # ANEK on the branchy (modular) program.
    start = time.perf_counter()
    pipeline = AnekPipeline(settings=settings, run_checker=False,
                            apply_annotations=False)
    anek = pipeline.run_on_sources([ITERATOR_API_SOURCE, branchy])
    result.anek_seconds = time.perf_counter() - start
    result.anek_warnings = len(anek.warnings)
    # PLURAL local inference on the inlined program.
    program = resolve_program(
        [
            parse_compilation_unit(ITERATOR_API_SOURCE),
            parse_compilation_unit(inlined),
        ]
    )
    inference = LocalFractionInference(program)
    inlined_class = program.lookup_class("Inlined")
    from repro.java.symbols import MethodRef

    run_ref = MethodRef(inlined_class, inlined_class.find_method("run")[0])
    start = time.perf_counter()
    local = inference.infer_method(run_ref)
    result.local_seconds = time.perf_counter() - start
    result.local_satisfiable = local.satisfiable
    table = Table(
        "Table 3. ANEK vs PLURAL local inference (inlined program).",
        ["Inference Tool", "Time Taken", "Notes"],
    )
    table.add_row(
        "ANEK (modular, %d methods)" % methods,
        format_seconds(result.anek_seconds),
        "paper: 22 sec",
    )
    table.add_row(
        "Plural Local Inference (inlined)",
        format_seconds(result.local_seconds),
        "paper: 181 sec; system %dx%d, satisfiable=%s"
        % (local.equations, local.variables, local.satisfiable),
    )
    result.table = table
    return result


# ---------------------------------------------------------------------------
# Table 5: executor speedups (beyond the paper — the scalability claim)
# ---------------------------------------------------------------------------


@dataclass
class Table5Row:
    executor: str
    seconds: float
    speedup: float
    solves: int
    annotations: int
    identical: bool
    #: Solver-time breakdown (InferenceStats.build_seconds /
    #: solve_seconds — previously dropped from the report).
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Persistent-cache hit ratio for this run, or None (cache off).
    cache_ratio: Optional[float] = None
    #: Resilience ledger: total failure events / output-changing ones
    #: (quarantines + prior-only degradations) for this run.
    failures: int = 0
    degraded: int = 0
    #: True when this row's run was resumed from a checkpoint directory
    #: (crash/SIGTERM recovery) rather than executed start-to-finish.
    resumed: bool = False
    #: Shard count the scheduled run partitioned its levels into, and
    #: the per-shard busy seconds summed across levels — attributes
    #: wall-clock to worker groups, not just levels.
    shards: int = 1
    shard_seconds: List[float] = field(default_factory=list)


@dataclass
class Table5Result:
    rows: List[Table5Row] = field(default_factory=list)
    table: object = None

    @property
    def best_parallel_speedup(self):
        return max(
            (row.speedup for row in self.rows if row.executor != "worklist"),
            default=0.0,
        )


def _shard_busy_seconds(stats):
    """Per-shard busy seconds summed over the schedule's level entries
    (empty for unsharded or worklist runs)."""
    totals = {}
    for entry in getattr(stats, "schedule", ()):
        for shard in entry.get("shards", ()):
            totals[shard["shard"]] = (
                totals.get(shard["shard"], 0.0) + shard["seconds"]
            )
    return [seconds for _, seconds in sorted(totals.items())]


def table5_parallel(corpus_spec=None, jobs=0, settings=None, repeats=1,
                    cache=None):
    """Sequential vs scheduled-executor wall clock on the PMD corpus.

    Every executor runs the same pipeline over a fresh copy of the same
    corpus; the speedup column is relative to the sequential worklist
    engine.  ``identical`` reports whether the executor's thresholded
    specs match the serial scheduler's (the determinism guarantee — the
    worklist row legitimately reads False when its different schedule
    changed a borderline marginal).  Passing an
    :class:`repro.cache.AnalysisCache` runs every executor against it
    and adds its hit ratio to the report.  A run that was resumed from a
    checkpoint directory is flagged in the Failures column — resumed
    runs are bit-identical to uninterrupted ones, so the note is
    provenance, not a caveat.
    """
    from repro.corpus import generate_pmd_corpus

    bundle = generate_pmd_corpus(corpus_spec)

    def fresh_program():
        return resolve_program(
            [parse_compilation_unit(source) for source in bundle.all_sources()]
        )

    base = settings or InferenceSettings()
    result = Table5Result()
    specs_by_executor = {}
    baseline_seconds = None
    for executor in ("worklist", "serial", "thread", "process"):
        run_settings = InferenceSettings(
            max_worklist_iters=base.max_worklist_iters,
            bp_iters=base.bp_iters,
            bp_damping=base.bp_damping,
            bp_tolerance=base.bp_tolerance,
            threshold=base.threshold,
            summary_change_threshold=base.summary_change_threshold,
            executor=executor,
            jobs=jobs,
            shards=base.shards,
            engine=base.engine,
            reuse_models=base.reuse_models,
        )
        best = None
        pipeline_result = None
        for _ in range(max(repeats, 1)):
            program = fresh_program()
            pipeline = AnekPipeline(
                settings=run_settings, run_checker=False,
                apply_annotations=False, cache=cache,
            )
            start = time.perf_counter()
            pipeline_result = pipeline.run_on_program(program)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        specs = {
            ref.qualified_name: str(spec)
            for ref, spec in pipeline_result.specs.items()
            if not spec.is_empty
        }
        if executor == "worklist":
            baseline_seconds = best
        specs_by_executor[executor] = specs
        stats = pipeline_result.inference_stats
        cache_stats = pipeline_result.cache_stats
        result.rows.append(
            Table5Row(
                executor=executor,
                seconds=best,
                speedup=baseline_seconds / best if baseline_seconds else 0.0,
                solves=stats.solves,
                annotations=len(specs),
                identical=True,
                build_seconds=stats.build_seconds,
                solve_seconds=stats.solve_seconds,
                cache_ratio=(
                    cache_stats.hit_ratio()
                    if cache_stats is not None
                    else None
                ),
                failures=len(pipeline_result.failures),
                degraded=len(pipeline_result.failures.degraded()),
                resumed=bool(
                    getattr(stats, "resumed", False)
                    or pipeline_result.failures.resumed_from
                ),
                shards=getattr(stats, "shards", 1),
                shard_seconds=_shard_busy_seconds(stats),
            )
        )
    reference_specs = specs_by_executor["serial"]
    for row in result.rows:
        row.identical = specs_by_executor[row.executor] == reference_specs
    table = Table(
        "Table 5. ANEK-INFER executors on the synthetic PMD corpus.",
        ["Executor", "Time", "Build", "Kernel", "Speedup", "Solves",
         "Annotations", "Shards", "Cache", "Failures", "Same Specs"],
    )
    for row in result.rows:
        if row.executor == "worklist" or not row.shard_seconds:
            shard_cell = "-" if row.executor == "worklist" else str(row.shards)
        else:
            shard_cell = "%d (%s)" % (
                row.shards,
                "/".join(
                    format_seconds(seconds) for seconds in row.shard_seconds
                ),
            )
        table.add_row(
            row.executor,
            format_seconds(row.seconds),
            format_seconds(row.build_seconds),
            format_seconds(row.solve_seconds),
            "%.2fx" % row.speedup,
            row.solves,
            row.annotations,
            shard_cell,
            "off"
            if row.cache_ratio is None
            else "%.0f%%" % (100.0 * row.cache_ratio),
            (
                "none"
                if not row.failures
                else "%d (%d degraded)" % (row.failures, row.degraded)
            )
            + (", resumed" if row.resumed else ""),
            "yes" if row.identical else "no",
        )
    result.table = table
    return result


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def figure1_protocol():
    """Figure 1: the iterator protocol statechart (DOT)."""
    from repro.permissions.states import iterator_state_space

    return iterator_state_space().to_dot()


def figure4_kinds():
    """Figure 4: the five permission kinds."""
    table = Table(
        "Figure 4. The five permission kinds.",
        ["Permission", "This reference", "Other references"],
    )
    for row in kinds.figure4_rows():
        table.add_row(*row)
    return table


def figure6_pfg():
    """Figure 6: the PFG generated for the copy method of Figure 5."""
    from repro.core.pfg_builder import build_pfg
    from repro.corpus.examples import figure5_sources
    from repro.java.symbols import MethodRef

    program = resolve_program(
        [parse_compilation_unit(source) for source in figure5_sources()]
    )
    row = program.lookup_class("Row")
    copy_ref = MethodRef(row, row.find_method("copy")[0])
    return build_pfg(program, copy_ref)


def figure10_pipeline_trace():
    """Figure 10: the architecture, as an end-to-end stage trace."""
    from repro.corpus.examples import figure3_sources

    pipeline = AnekPipeline()
    result = pipeline.run_on_sources(figure3_sources())
    return result.describe_stages()
