"""Side-by-side comparison of inferred vs hand-written specifications.

The drill-down behind Table 4: for every method either side annotates,
print the oracle spec, the ANEK spec, and the category the comparison
assigns (Same / Added / Removed / Changed).  Used by
``examples/pmd_inference.py --diff`` and the test suite.
"""

from repro.permissions.spec import format_clauses


def _clause_set(clauses):
    return {(c.kind, c.target, c.state) for c in clauses}


def _stronger_or_equal(spec_a, spec_b):
    """Does spec_a demand at least what spec_b demands (per target)?"""
    from repro.permissions import kinds

    for clause_b in spec_b.requires:
        matches = [
            clause_a
            for clause_a in spec_a.requires
            if clause_a.target == clause_b.target
        ]
        if not matches:
            return False
        clause_a = matches[0]
        if not kinds.satisfies(clause_a.kind, clause_b.kind):
            return False
    return True


def classify_pair(anek_spec, gold_spec):
    """The Table 4 category for one method (both specs may be None)."""
    if gold_spec is None:
        if anek_spec is None or anek_spec.is_empty:
            return None
        from repro.permissions import kinds

        demanding = any(
            clause.kind != kinds.PURE for clause in anek_spec.requires
        )
        return (
            "ANEK Added Constraining Spec."
            if demanding
            else "ANEK Added Helpful Spec."
        )
    if anek_spec is None or anek_spec.is_empty:
        return "ANEK Removed Spec."
    if gold_spec.is_state_test and not anek_spec.is_state_test:
        return "ANEK Removed Spec."
    same = _clause_set(anek_spec.requires) == _clause_set(
        gold_spec.requires
    ) and _clause_set(anek_spec.ensures) == _clause_set(gold_spec.ensures)
    if same:
        return "Same"
    if _stronger_or_equal(anek_spec, gold_spec) and len(
        anek_spec.requires
    ) >= len(gold_spec.requires):
        return "ANEK Changed Spec., More Restrictive"
    return "ANEK Changed Spec., Wrong"


def _render_spec(spec):
    if spec is None or spec.is_empty:
        return "(none)"
    parts = []
    if spec.requires:
        parts.append("requires " + format_clauses(spec.requires))
    if spec.ensures:
        parts.append("ensures " + format_clauses(spec.ensures))
    if spec.true_indicates:
        parts.append("@TrueIndicates(%s)" % spec.true_indicates)
    if spec.false_indicates:
        parts.append("@FalseIndicates(%s)" % spec.false_indicates)
    return "; ".join(parts) or "(none)"


def spec_diff(inferred, gold, include_same=True):
    """Yield (method name, category, oracle text, anek text) rows.

    ``inferred`` and ``gold`` map qualified method names to MethodSpecs.
    """
    rows = []
    for name in sorted(set(inferred) | set(gold)):
        anek_spec = inferred.get(name)
        gold_spec = gold.get(name)
        category = classify_pair(anek_spec, gold_spec)
        if category is None:
            continue
        if category == "Same" and not include_same:
            continue
        rows.append(
            (name, category, _render_spec(gold_spec), _render_spec(anek_spec))
        )
    return rows


def render_spec_diff(inferred, gold, include_same=True):
    """A printable report of the comparison."""
    lines = ["Spec comparison (oracle vs ANEK):"]
    for name, category, gold_text, anek_text in spec_diff(
        inferred, gold, include_same=include_same
    ):
        lines.append("  %s  [%s]" % (name, category))
        lines.append("    oracle: %s" % gold_text)
        lines.append("    anek:   %s" % anek_text)
    return "\n".join(lines)
