"""Canonical fingerprints for the persistent analysis cache.

Every cache key is a SHA-256 over a *canonical byte encoding* of plain
Python data.  Canonical means:

* floats are encoded with :func:`repr` — the shortest string that
  round-trips exactly, so two runs that computed the same float produce
  the same bytes and two different floats never collide;
* dicts and sets are emitted in sorted order of their encoded elements,
  never in iteration order, so keys are independent of insertion history
  and ``PYTHONHASHSEED``;
* lists and tuples keep their order — order that *is* data (statement
  order in a method body, the vote order of an evidence bucket feeding a
  geometric mean) must distinguish keys.

On top of the encoder sit the domain fingerprints: per-source and
per-method content digests (via the canonical pretty printer), the
interface environment digest (everything about every class *except*
method bodies — signatures, annotations, fields, supertypes — i.e. the
inputs a method's analysis can observe about the rest of the program),
and the heuristic/inference configuration digest.
"""

import hashlib
from dataclasses import fields as dataclass_fields

from repro.java.pretty import (
    pretty_print,
    pretty_print_field,
    pretty_print_method,
)
from repro.java.symbols import method_key

#: Bumped whenever the layout of any cached payload changes; combined
#: with ``repro.__version__`` in every key, so stale artifact formats
#: are never deserialized.
SCHEMA_TAG = "anek-cache-v1"


# ---------------------------------------------------------------------------
# Canonical byte encoding
# ---------------------------------------------------------------------------


def canonical_bytes(value):
    """Encode plain data into canonical, hash-stable bytes."""
    out = []
    _encode(value, out)
    return b"".join(out)


def _encode(value, out):
    if value is None:
        out.append(b"N;")
    elif value is True:
        out.append(b"T;")
    elif value is False:
        out.append(b"F;")
    elif isinstance(value, int):
        out.append(b"i%d;" % value)
    elif isinstance(value, float):
        out.append(b"f" + repr(value).encode("ascii") + b";")
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s%d:" % len(data))
        out.append(data)
    elif isinstance(value, bytes):
        out.append(b"b%d:" % len(value))
        out.append(value)
    elif isinstance(value, (list, tuple)):
        out.append(b"l")
        for item in value:
            _encode(item, out)
        out.append(b";")
    elif isinstance(value, dict):
        out.append(b"d")
        for key_bytes, item_bytes in sorted(
            (canonical_bytes(key), canonical_bytes(item))
            for key, item in value.items()
        ):
            out.append(key_bytes)
            out.append(item_bytes)
        out.append(b";")
    elif isinstance(value, (set, frozenset)):
        out.append(b"S")
        for item_bytes in sorted(canonical_bytes(item) for item in value):
            out.append(item_bytes)
        out.append(b";")
    else:
        raise TypeError(
            "cannot canonically encode %r" % type(value).__name__
        )


def digest(value):
    """SHA-256 hex digest of a value's canonical encoding."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()


# ---------------------------------------------------------------------------
# Source / program fingerprints (cache layer 1)
# ---------------------------------------------------------------------------


def source_digest(source):
    """Digest of one raw compilation-unit source string."""
    return digest(("source", source))


def unit_digest(unit):
    """Digest of a parsed unit's canonical (pretty-printed) rendering."""
    return digest(("unit", pretty_print(unit)))


def program_digest(program):
    """Digest of the whole resolved program, unit order preserved."""
    return digest(("program", tuple(unit_digest(u) for u in program.units)))


# ---------------------------------------------------------------------------
# Method / environment fingerprints (cache layers 2-3)
# ---------------------------------------------------------------------------


def _annotation_struct(annotation):
    return (annotation.name, tuple(sorted(annotation.arguments.items())))


def _class_interface(decl):
    """Everything about a class *except* its method bodies.

    A method's analysis observes other classes only through signatures,
    annotations, field declarations, and the type hierarchy (static
    dispatch, protocol state spaces, parameter names at call sites), so
    this is the method-external slice of the program that must agree for
    a cached per-method artifact to be valid.
    """
    return (
        decl.name,
        decl.is_interface,
        tuple(decl.modifiers),
        tuple(_annotation_struct(a) for a in decl.annotations),
        tuple(decl.type_params),
        str(decl.superclass) if decl.superclass is not None else None,
        tuple(str(ref) for ref in decl.interfaces),
        tuple(pretty_print_field(f) for f in decl.fields),
        tuple(
            (
                method.name,
                method.is_constructor,
                str(method.return_type)
                if method.return_type is not None
                else None,
                tuple(method.modifiers),
                tuple(_annotation_struct(a) for a in method.annotations),
                tuple(
                    (
                        param.name,
                        str(param.type),
                        tuple(_annotation_struct(a) for a in param.annotations),
                    )
                    for param in method.params
                ),
                method.body is None,
            )
            for method in decl.methods
        ),
    )


def environment_digest(program):
    """Digest of the interface environment every method analysis sees."""
    return digest(
        (
            "environment",
            tuple(
                _class_interface(program.classes[name])
                for name in sorted(program.classes)
            ),
        )
    )


def method_digest(method_ref):
    """Digest of one method's own content (annotations + signature + body)."""
    return digest(
        (
            "method",
            method_ref.class_decl.name,
            pretty_print_method(method_ref.method_decl),
        )
    )


def config_digest(config, settings):
    """Digest of every heuristic/inference knob that shapes a solve.

    Returns ``None`` — *uncacheable* — when the config carries custom
    heuristics: their selector/predicate callables have no canonical
    content representation.
    """
    if config.custom:
        return None
    config_items = []
    for f in dataclass_fields(config):
        if f.name == "custom":
            continue
        config_items.append((f.name, getattr(config, f.name)))
    # Executor and jobs are deliberately excluded: every executor funnels
    # each solve through the same code path on the same inputs, so a
    # per-visit artifact is schedule-independent.  (The schedule *kind*
    # distinguishes final-result entries separately.)
    settings_items = (
        ("max_worklist_iters", settings.max_worklist_iters),
        ("bp_iters", settings.bp_iters),
        ("bp_damping", settings.bp_damping),
        ("bp_tolerance", settings.bp_tolerance),
        ("threshold", settings.threshold),
        ("summary_change_threshold", settings.summary_change_threshold),
        ("engine", settings.engine),
        ("reuse_models", settings.reuse_models),
    )
    return digest(("config", tuple(config_items), settings_items))


# ---------------------------------------------------------------------------
# Solve-input canonicalization (cache layer 3)
# ---------------------------------------------------------------------------


def _canonical_dist(dist):
    if dist is None:
        return None
    return tuple(sorted(dist))  # marginal tokens: ((value, prob), ...)


def _canonical_marginal_token(token):
    if token is None:
        return None
    kind, state = token
    return (_canonical_dist(kind), _canonical_dist(state))


def canonical_site_key(site_key, key_of):
    """A site key with its MethodRef (if any) replaced by its stable key.

    The worklist engine keys evidence by ``(MethodRef, index)``, the
    scheduled engines by ``(method key, index)``; canonicalized they
    coincide, so both engines address the same persistent artifacts.
    """
    owner, index = site_key
    if not isinstance(owner, str):
        owner = key_of.get(owner) or method_key(owner)
    return (owner, index)


def canonical_input_token(token, key_of):
    """Canonicalize a :func:`method_input_fingerprint` token for hashing.

    Summary parts and their distributions are sorted — the model applies
    them by per-target lookup, so their order is bookkeeping.  Evidence
    *bucket* order is kept: the geometric-mean aggregation consumes votes
    in deposit order, so two stores whose buckets differ only in order
    are distinct inputs and must not collide.
    """
    sites, evidence = token
    canonical_sites = []
    for site in sites:
        if site is None:
            canonical_sites.append(None)
        else:
            canonical_sites.append(
                tuple(
                    sorted(
                        (slot, target, _canonical_marginal_token(part))
                        for slot, target, part in site
                    )
                )
            )
    canonical_evidence = []
    for slot, target, bucket in evidence:
        canonical_evidence.append(
            (
                slot,
                target,
                tuple(
                    (
                        canonical_site_key(site_key, key_of),
                        _canonical_marginal_token(part),
                    )
                    for site_key, part in bucket
                ),
            )
        )
    canonical_evidence.sort(key=lambda entry: (entry[0], entry[1]))
    return (tuple(canonical_sites), tuple(canonical_evidence))
