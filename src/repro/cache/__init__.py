"""Persistent, content-addressed analysis cache (cross-run reuse).

See :mod:`repro.cache.manager` for the architecture: three layers
(parsed units, per-method frontend artifacts, solver outcomes + final
results), all addressed by canonical SHA-256 fingerprints
(:mod:`repro.cache.fingerprints`) so invalidation is automatic — a
changed input simply addresses a different artifact.
"""

from repro.cache.fingerprints import SCHEMA_TAG
from repro.cache.manager import (
    DEFAULT_CACHE_DIR,
    AnalysisCache,
    BoundCache,
    CacheSpec,
    CacheStats,
)

__all__ = [
    "SCHEMA_TAG",
    "DEFAULT_CACHE_DIR",
    "AnalysisCache",
    "BoundCache",
    "CacheSpec",
    "CacheStats",
]
