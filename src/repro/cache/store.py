"""On-disk content-addressed artifact store.

Artifacts live under ``<root>/objects/<kk>/<key>.pkl`` (two-level fanout
by key prefix); the advisory manifest is human-readable JSON at
``<root>/manifest.json``.  Two durability rules:

* **writes are atomic** — payloads are pickled into a temp file in the
  destination directory and ``os.replace``\\ d into place, so a reader
  (including a concurrent process-pool worker) never observes a torn
  artifact;
* **reads never crash the analysis** — a corrupted, truncated, or
  unreadable entry is logged with a warning, deleted when possible, and
  reported as a miss, so the pipeline falls back to a cold build.
"""

import json
import os
import pickle
import tempfile
import warnings


class ArtifactStore:
    """Pickle-per-key persistence with corruption fallback."""

    def __init__(self, root):
        self.root = root
        #: Entries that existed but could not be deserialized.
        self.corrupt_count = 0
        #: Writes that failed with an OSError (ENOSPC, permissions, a
        #: yanked volume) — each degraded to a miss-on-next-read instead
        #: of aborting the run.
        self.store_errors = 0
        self._write_disabled = False

    # -- keyed artifacts ------------------------------------------------------

    def _path(self, key):
        return os.path.join(self.root, "objects", key[:2], key + ".pkl")

    def load(self, key):
        """The stored payload, or None on miss *or* corruption."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            self.corrupt_count += 1
            warnings.warn(
                "discarding corrupt cache entry %s (%s: %s); "
                "falling back to a cold build"
                % (path, type(exc).__name__, exc),
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def save(self, key, payload):
        """Atomically persist one payload; failures disable further writes."""
        if self._write_disabled:
            return
        path = self._path(key)
        if os.path.exists(path):
            return
        self._atomic_write(
            path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def discard(self, key):
        """Best-effort removal of one entry (schema-invalid quarantine:
        without this, ``save``'s exists-check would pin the bad artifact
        forever)."""
        try:
            os.remove(self._path(key))
        except OSError:
            pass

    # -- the manifest ---------------------------------------------------------

    def manifest_path(self):
        return os.path.join(self.root, "manifest.json")

    def load_manifest(self):
        """The advisory manifest dict, or None when absent/corrupt."""
        try:
            with open(self.manifest_path(), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            self.corrupt_count += 1
            warnings.warn(
                "discarding corrupt cache manifest (%s: %s)"
                % (type(exc).__name__, exc),
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def save_manifest(self, manifest):
        if self._write_disabled:
            return
        data = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        self._atomic_write(self.manifest_path(), data.encode("utf-8"))

    # -- plumbing -------------------------------------------------------------

    def _atomic_write(self, path, data):
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            handle, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(data)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.remove(temp_path)
                except OSError:
                    pass
                raise
        except OSError as exc:
            # ENOSPC/EROFS mid-run must degrade to a counted miss, not
            # abort the analysis: further writes are disabled, reads keep
            # serving whatever was persisted before the disk filled.
            self.store_errors += 1
            self._write_disabled = True
            warnings.warn(
                "analysis cache is not writable (%s: %s); continuing "
                "without persisting artifacts" % (type(exc).__name__, exc),
                RuntimeWarning,
                stacklevel=2,
            )
