"""The persistent analysis cache: three content-addressed layers.

Layer 1 — **parsed units**: raw source text → parsed compilation unit.
Layer 2 — **frontend artifacts**: per-method PFGs (the input to
constraint generation, whose factor graph is a deterministic function of
the PFG + config) plus the method's resolved call targets, keyed by the
method's *static fingerprint* — its own pretty-printed content plus the
interface environment digest.
Layer 3 — **solver artifacts**: (a) per-visit solve outcomes (boundary
marginals + evidence deposits) keyed by static fingerprint × config ×
the canonicalized summary/evidence input token, and (b) whole-run final
results keyed by program × config × schedule kind.

The bit-identity story: ANEK-INFER runs a *fixed-budget* (non-fixpoint)
trajectory, so warm-starting it with converged summaries would change
the trajectory and therefore the marginals.  Instead each worklist visit
is treated as a pure function of its fingerprinted inputs and its
*outcome* is replayed from the store — same trajectory, same floats, no
BP sweep.  Invalidation is automatic and exact: any changed input
changes the key, so a stale artifact is simply never addressed again.
The manifest (a JSON summary of the last run's fingerprints) is purely
advisory — it powers the invalidated/dirty-cone counters and nothing
else.
"""

import warnings
from dataclasses import dataclass, field, fields as dataclass_fields, replace

import repro
from repro.cache.fingerprints import (
    SCHEMA_TAG,
    canonical_input_token,
    config_digest,
    digest,
    environment_digest,
    method_digest,
    program_digest,
    source_digest,
)
from repro.cache.pfgser import pfg_from_payload, pfg_to_payload
from repro.cache.store import ArtifactStore

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".anek-cache"


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters, accumulated across pipeline stages."""

    #: Layer 1: compilation units served from / missing in the store.
    parse_hits: int = 0
    parse_misses: int = 0
    #: Layer 2: per-method PFG + call-target artifacts.
    pfg_hits: int = 0
    pfg_misses: int = 0
    #: Layer 3a: per-visit solve outcomes replayed / solved cold.
    solve_hits: int = 0
    solve_misses: int = 0
    #: Layer 3b: whole-run warm starts.
    final_hits: int = 0
    final_misses: int = 0
    #: Entries that existed but failed to deserialize (treated as misses).
    corrupt_entries: int = 0
    #: Entries that deserialized but failed schema/shape validation —
    #: quarantined (deleted) exactly like corrupt ones.
    schema_invalid: int = 0
    #: Writes that failed with an OSError (ENOSPC, permissions): each
    #: degraded to a miss on the next read instead of aborting the run.
    store_errors: int = 0
    #: Methods whose static fingerprint changed since the manifest run.
    #: Accumulated (like every other counter) so that a process serving
    #: many sequential runs against one cache reports correct per-run
    #: deltas — an assignment here would make the second run's delta
    #: negative whenever it invalidated fewer methods than the first.
    invalidated_methods: int = 0
    #: Invalidated methods plus their transitive callers (SCC cone).
    dirty_cone: int = 0
    #: True when the config cannot be fingerprinted (custom heuristics).
    uncacheable: bool = False

    def hits(self):
        return (
            self.parse_hits + self.pfg_hits + self.solve_hits + self.final_hits
        )

    def misses(self):
        return (
            self.parse_misses
            + self.pfg_misses
            + self.solve_misses
            + self.final_misses
        )

    def hit_ratio(self):
        total = self.hits() + self.misses()
        if total == 0:
            return 0.0
        return self.hits() / total

    def delta(self, earlier):
        """Counter movement since an ``earlier`` snapshot of this object."""
        changes = {}
        for f in dataclass_fields(self):
            if f.name == "uncacheable":
                continue
            changes[f.name] = getattr(self, f.name) - getattr(earlier, f.name)
        return replace(CacheStats(uncacheable=self.uncacheable), **changes)

    def snapshot(self):
        return replace(self)

    def to_payload(self):
        """The counters as a plain dict (serving-layer responses)."""
        return {
            f.name: getattr(self, f.name) for f in dataclass_fields(self)
        }

    def describe(self):
        lines = ["analysis cache:"]
        lines.append(
            "  units   %5d hit %5d miss" % (self.parse_hits, self.parse_misses)
        )
        lines.append(
            "  pfgs    %5d hit %5d miss" % (self.pfg_hits, self.pfg_misses)
        )
        lines.append(
            "  solves  %5d hit %5d miss"
            % (self.solve_hits, self.solve_misses)
        )
        lines.append(
            "  final   %5d hit %5d miss" % (self.final_hits, self.final_misses)
        )
        lines.append(
            "  invalidated %d method(s), dirty cone %d, corrupt %d, "
            "schema-invalid %d, hit ratio %.1f%%"
            % (
                self.invalidated_methods,
                self.dirty_cone,
                self.corrupt_entries,
                self.schema_invalid,
                100.0 * self.hit_ratio(),
            )
        )
        if self.store_errors:
            lines.append(
                "  %d write error(s) — persistence degraded to read-only"
                % self.store_errors
            )
        if self.uncacheable:
            lines.append("  (disabled: config is not fingerprintable)")
        return "\n".join(lines)


@dataclass(frozen=True)
class CacheSpec:
    """A picklable description of a cache, for process-pool workers."""

    cache_dir: str
    schema_tag: str = SCHEMA_TAG


class AnalysisCache:
    """Entry point: owns the store, the stats, and layer 1 (parsing)."""

    def __init__(self, cache_dir=DEFAULT_CACHE_DIR, schema_tag=SCHEMA_TAG):
        self.cache_dir = cache_dir
        self.schema_tag = schema_tag
        self.store = ArtifactStore(cache_dir)
        self.stats = CacheStats()

    @classmethod
    def from_spec(cls, spec):
        return cls(cache_dir=spec.cache_dir, schema_tag=spec.schema_tag)

    def spec(self):
        return CacheSpec(cache_dir=self.cache_dir, schema_tag=self.schema_tag)

    def key(self, layer, content):
        """A full store key: schema tag + repro version + layer + content."""
        return digest((self.schema_tag, repro.__version__, layer, content))

    def load(self, key):
        before = self.store.corrupt_count
        payload = self.store.load(key)
        self.stats.corrupt_entries += self.store.corrupt_count - before
        return payload

    def save(self, key, payload):
        """Persist via the store, surfacing write failures as a counted
        ``store_errors`` stat (the store itself degrades to no-persist)."""
        self.store.save(key, payload)
        self.stats.store_errors = self.store.store_errors

    def save_manifest(self, manifest):
        self.store.save_manifest(manifest)
        self.stats.store_errors = self.store.store_errors

    # -- layer 1: parsing ------------------------------------------------------

    def parse(self, source, limits=None):
        """Parse one source string, via the store when possible.

        ``limits`` governs only the cold-parse path: a cache hit proves
        the source already parsed cleanly, and governance never changes
        what a successful parse produces.
        """
        from repro.java.ast import CompilationUnit
        from repro.java.parser import parse_compilation_unit

        key = self.key("unit", source_digest(source))
        unit = self.load(key)
        if unit is not None and not isinstance(unit, CompilationUnit):
            # Deserialized fine but is not a compilation unit: quarantine
            # it (delete, or ``save`` would pin it) and fall through to a
            # cold parse.
            self.stats.schema_invalid += 1
            warnings.warn(
                "discarding schema-invalid unit cache entry (expected "
                "CompilationUnit, got %s); falling back to a cold parse"
                % type(unit).__name__,
                RuntimeWarning,
                stacklevel=2,
            )
            self.store.discard(key)
            unit = None
        if unit is not None:
            self.stats.parse_hits += 1
            return unit
        self.stats.parse_misses += 1
        unit = parse_compilation_unit(source, limits=limits)
        self.save(key, unit)
        return unit

    # -- binding to one resolved program --------------------------------------

    def bind(self, program, config, settings):
        """A :class:`BoundCache` for one program/config, or None when the
        config cannot be fingerprinted (persistent caching is then off
        for this run; in-memory reuse is unaffected)."""
        config_fp = config_digest(config, settings)
        if config_fp is None:
            if not self.stats.uncacheable:
                warnings.warn(
                    "persistent analysis cache disabled: custom heuristics "
                    "have no canonical fingerprint",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.stats.uncacheable = True
            return None
        return BoundCache(self, program, config_fp)


class BoundCache:
    """Layers 2-3 for one resolved program under one fingerprinted config."""

    def __init__(self, cache, program, config_fp):
        self.cache = cache
        self.stats = cache.stats
        self.store = cache.store
        self.program = program
        self.config_fp = config_fp
        self.table = program.method_key_table()
        self.key_of = {ref: key for key, ref in self.table.items()}
        self.env_fp = environment_digest(program)
        self.program_fp = program_digest(program)
        self._method_fps = {}
        self._manifest = self.store.load_manifest()

    def _quarantine_entry(self, key, layer, exc):
        """A payload deserialized but failed shape validation: count it,
        delete it (``save`` would otherwise pin it forever), miss."""
        self.stats.schema_invalid += 1
        warnings.warn(
            "discarding schema-invalid %s cache entry (%s: %s); "
            "falling back to a cold build"
            % (layer, type(exc).__name__, exc),
            RuntimeWarning,
            stacklevel=3,
        )
        self.store.discard(key)

    def method_fingerprint(self, method_ref):
        """The method's static fingerprint: own content × environment."""
        fingerprint = self._method_fps.get(method_ref)
        if fingerprint is None:
            fingerprint = digest(
                (self.key_of[method_ref], method_digest(method_ref), self.env_fp)
            )
            self._method_fps[method_ref] = fingerprint
        return fingerprint

    # -- layer 2: frontend artifacts (PFG + call targets) ----------------------

    def load_frontend(self, method_ref):
        """(pfg, [(callee_ref, line), ...]) from the store, or (None, None)."""
        key = self.cache.key("pfg", self.method_fingerprint(method_ref))
        payload = self.cache.load(key)
        if payload is not None:
            try:
                if not isinstance(payload, dict):
                    raise TypeError(
                        "expected dict payload, got %s" % type(payload).__name__
                    )
                pfg = pfg_from_payload(payload["pfg"], method_ref, self.table)
                callees = [
                    (self.table[callee_key], line)
                    for callee_key, line in payload["callees"]
                ]
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                self._quarantine_entry(key, "pfg", exc)
                payload = None
            else:
                self.stats.pfg_hits += 1
                return pfg, callees
        self.stats.pfg_misses += 1
        return None, None

    def store_frontend(self, method_ref, pfg, callees):
        key = self.cache.key("pfg", self.method_fingerprint(method_ref))
        self.cache.save(
            key,
            {
                "pfg": pfg_to_payload(pfg, self.key_of),
                "callees": [
                    (self.key_of[callee], line) for callee, line in callees
                ],
            },
        )

    # -- layer 3a: per-visit solve outcomes ------------------------------------

    def solve_key(self, method_ref, input_token):
        """The store key of one worklist visit's outcome."""
        return self.cache.key(
            "solve",
            (
                self.method_fingerprint(method_ref),
                self.config_fp,
                canonical_input_token(input_token, self.key_of),
            ),
        )

    def load_solve(self, key):
        """(boundary, deposits) with live refs/marginals, or None."""
        from repro.core.summaries import TargetMarginal

        payload = self.cache.load(key)
        if payload is not None:
            try:
                if not isinstance(payload, dict):
                    raise TypeError(
                        "expected dict payload, got %s" % type(payload).__name__
                    )
                boundary = {
                    (slot, target): TargetMarginal.from_payload(part)
                    for (slot, target), part in payload["boundary"]
                }
                deposits = [
                    (
                        self.table[callee_key],
                        slot,
                        target,
                        (self.table[owner_key], site_index),
                        TargetMarginal.from_payload(part),
                    )
                    for (
                        callee_key,
                        slot,
                        target,
                        (owner_key, site_index),
                        part,
                    ) in payload["deposits"]
                ]
            except (KeyError, IndexError, ValueError, TypeError) as exc:
                self._quarantine_entry(key, "solve", exc)
            else:
                self.stats.solve_hits += 1
                return boundary, deposits
        self.stats.solve_misses += 1
        return None

    def store_solve(self, key, boundary, deposits):
        from repro.cache.fingerprints import canonical_site_key

        payload = {
            "boundary": [
                (slot_target, marginal.to_payload())
                for slot_target, marginal in boundary.items()
            ],
            "deposits": [
                (
                    self.key_of[callee],
                    slot,
                    target,
                    canonical_site_key(site_key, self.key_of),
                    marginal.to_payload(),
                )
                for callee, slot, target, site_key, marginal in deposits
            ],
        }
        self.cache.save(key, payload)

    # -- layer 3b: whole-run final results -------------------------------------

    def final_key(self, schedule_kind):
        return self.cache.key(
            "final", (self.program_fp, self.config_fp, schedule_kind)
        )

    def load_final(self, schedule_kind):
        """(results, summary store payload) for a warm start, or None."""
        from repro.core.summaries import TargetMarginal

        final_key = self.final_key(schedule_kind)
        payload = self.cache.load(final_key)
        if payload is not None:
            try:
                if not isinstance(payload, dict):
                    raise TypeError(
                        "expected dict payload, got %s" % type(payload).__name__
                    )
                results = {}
                for key, boundary in payload["results"]:
                    results[self.table[key]] = {
                        (slot, target): TargetMarginal.from_payload(part)
                        for (slot, target), part in boundary
                    }
                store_payload = payload["store"]
            except (KeyError, IndexError, ValueError, TypeError) as exc:
                self._quarantine_entry(final_key, "final", exc)
            else:
                self.stats.final_hits += 1
                return results, store_payload
        self.stats.final_misses += 1
        return None

    def store_final(self, schedule_kind, results, summary_store):
        from repro.cache.fingerprints import canonical_site_key

        store_payload = summary_store.to_payload(self.key_of)
        store_payload["evidence"] = [
            (
                header,
                [
                    (canonical_site_key(site_key, self.key_of), part)
                    for site_key, part in bucket
                ],
            )
            for header, bucket in store_payload["evidence"]
        ]
        payload = {
            "results": [
                (
                    self.key_of[method_ref],
                    [
                        (slot_target, marginal.to_payload())
                        for slot_target, marginal in boundary.items()
                    ],
                )
                for method_ref, boundary in results.items()
            ],
            "store": store_payload,
        }
        self.cache.save(self.final_key(schedule_kind), payload)

    # -- the manifest: invalidation accounting + dirty cone --------------------

    def record_invalidation(self, call_graph, methods):
        """Diff the manifest against current fingerprints.

        Sets ``invalidated_methods`` (methods whose static fingerprint
        changed since the manifest run) and ``dirty_cone`` (those plus
        their transitive callers, via SCC condensation — exactly the set
        a warm re-run must re-solve).  Purely advisory: artifact reuse is
        content-addressed and needs no diffing.  Returns the cone.
        """
        from repro.analysis.callgraph import (
            dependency_edges,
            strongly_connected_components,
        )

        manifest = self._manifest
        if (
            manifest is None
            or manifest.get("schema") != self.cache.schema_tag
            or manifest.get("config") != self.config_fp
        ):
            return None
        recorded = manifest.get("methods", {})
        changed = set()
        for method_ref in methods:
            key = self.key_of[method_ref]
            if recorded.get(key) != self.method_fingerprint(method_ref):
                changed.add(method_ref)
        self.stats.invalidated_methods += len(changed)
        edges = dependency_edges(call_graph, methods)
        components = strongly_connected_components(edges)
        component_of = {}
        for component in components:
            for member in component:
                component_of[member] = id(component)
        dirty_components = set()
        cone = set()
        # Tarjan emits callees before callers, so one forward pass sees
        # every callee component's dirtiness before its callers'.
        for component in components:
            dirty = any(member in changed for member in component) or any(
                component_of[callee] in dirty_components
                for member in component
                for callee in edges[member]
            )
            if dirty:
                dirty_components.add(id(component))
                cone.update(component)
        self.stats.dirty_cone += len(cone)
        return cone

    def save_manifest(self, methods):
        self.cache.save_manifest(
            {
                "schema": self.cache.schema_tag,
                "version": repro.__version__,
                "config": self.config_fp,
                "environment": self.env_fp,
                "program": self.program_fp,
                "methods": {
                    self.key_of[method_ref]: self.method_fingerprint(method_ref)
                    for method_ref in methods
                },
            }
        )
