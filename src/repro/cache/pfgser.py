"""PFG (de)serialization for the persistent cache.

A PFG references live AST objects through its ``MethodRef``\\ s (its own
method and every resolved callee), which hash by identity and therefore
cannot be stored directly.  The payload replaces every MethodRef with
its stable string key (:func:`repro.java.symbols.method_key`) and every
node reference with its node id; loading re-attaches the keys to the
*current* program's refs via ``program.method_key_table()``.  A payload
whose keys no longer resolve (the program changed shape under a stale
entry) raises ``KeyError``, which the cache manager treats as a miss.
"""

from repro.core.pfg import PFG


def pfg_to_payload(pfg, key_of):
    """Flatten a PFG into plain picklable data, MethodRefs as keys."""
    nodes = [
        (
            node.kind,
            node.label,
            node.class_name,
            key_of[node.callee] if node.callee is not None else None,
            node.target,
            node.line,
            tuple(sorted(node.hints)),
        )
        for node in pfg.nodes
    ]
    edges = [
        (edge.src.node_id, edge.dst.node_id, edge.role) for edge in pfg.edges
    ]
    call_sites = [
        (
            key_of[site["callee"]] if site["callee"] is not None else None,
            [(target, node.node_id) for target, node in site["pre"].items()],
            [(target, node.node_id) for target, node in site["post"].items()],
            site["result"].node_id if site["result"] is not None else None,
            site["line"],
            site["method_name"],
        )
        for site in pfg.call_sites
    ]
    return {
        "nodes": nodes,
        "edges": edges,
        "param_pre": [
            (target, node.node_id) for target, node in pfg.param_pre.items()
        ],
        "param_post": [
            (target, node.node_id) for target, node in pfg.param_post.items()
        ],
        "result": (
            pfg.result_node.node_id if pfg.result_node is not None else None
        ),
        "field_store_receivers": [
            (store.node_id, receiver.node_id)
            for store, receiver in pfg.field_store_receivers
        ],
        "call_sites": call_sites,
    }


def pfg_from_payload(payload, method_ref, table):
    """Rebuild a PFG around the current program's AST objects."""
    pfg = PFG(method_ref)
    for kind, label, class_name, callee_key, target, line, hints in payload[
        "nodes"
    ]:
        node = pfg.new_node(
            kind,
            label,
            class_name=class_name,
            callee=table[callee_key] if callee_key is not None else None,
            target=target,
            line=line,
        )
        node.hints.update(hints)
    nodes = pfg.nodes
    for src, dst, role in payload["edges"]:
        pfg.new_edge(nodes[src], nodes[dst], role=role)
    pfg.param_pre = {
        target: nodes[node_id] for target, node_id in payload["param_pre"]
    }
    pfg.param_post = {
        target: nodes[node_id] for target, node_id in payload["param_post"]
    }
    if payload["result"] is not None:
        pfg.result_node = nodes[payload["result"]]
    pfg.field_store_receivers = [
        (nodes[store], nodes[receiver])
        for store, receiver in payload["field_store_receivers"]
    ]
    for callee_key, pre, post, result, line, method_name in payload[
        "call_sites"
    ]:
        pfg.call_sites.append(
            {
                "callee": table[callee_key] if callee_key is not None else None,
                "pre": {target: nodes[node_id] for target, node_id in pre},
                "post": {target: nodes[node_id] for target, node_id in post},
                "result": nodes[result] if result is not None else None,
                "line": line,
                "method_name": method_name,
            }
        )
    return pfg
