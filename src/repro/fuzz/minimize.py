"""Delta debugging (Zeller's ddmin) for failing fuzz programs.

``ddmin`` shrinks a list of items to a locally 1-minimal sublist that
still satisfies ``test``; :func:`minimize_source` applies it to program
text at line granularity first (cheap, large strides) and then at
character-chunk granularity inside whatever survives (so a one-line
recursion bomb still shrinks).  Every call is budgeted: minimization is
a convenience on the failure path, never allowed to dominate a campaign.
"""


def ddmin(items, test, budget=None):
    """Zeller's ddmin: a 1-minimal sublist of ``items`` with ``test``
    still true.  ``test`` must hold for ``items`` itself.  ``budget``
    bounds the number of ``test`` evaluations (None = unbounded).
    """
    remaining = list(items)
    calls = [0]

    def check(candidate):
        if budget is not None and calls[0] >= budget:
            return False
        calls[0] += 1
        return test(candidate)

    granularity = 2
    while len(remaining) >= 2:
        chunk = max(1, len(remaining) // granularity)
        subsets = [
            remaining[at : at + chunk]
            for at in range(0, len(remaining), chunk)
        ]
        reduced = False
        for index, subset in enumerate(subsets):
            complement = [
                item
                for other, subset_other in enumerate(subsets)
                if other != index
                for item in subset_other
            ]
            if complement and check(complement):
                remaining = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(remaining):
                break
            granularity = min(len(remaining), granularity * 2)
        if budget is not None and calls[0] >= budget:
            break
    return remaining


def _chunks(text, size):
    return [text[at : at + size] for at in range(0, len(text), size)]


def minimize_source(source, predicate, budget=250):
    """Shrink ``source`` while ``predicate(smaller_source)`` stays true.

    ``predicate`` receives candidate program text and returns True when
    the candidate still reproduces the original failure.  The input
    itself must satisfy the predicate.  Returns the minimized text (the
    input unchanged if nothing smaller reproduces).
    """
    if not predicate(source):
        return source
    # Pass 1: whole lines.
    lines = source.splitlines(keepends=True)
    if len(lines) > 1:
        lines = ddmin(lines, lambda kept: predicate("".join(kept)), budget)
    text = "".join(lines)
    # Pass 2: character chunks, for failures living inside one line
    # (e.g. a parenthesized-expression bomb).  Chunk size shrinks while
    # progress is made and budget remains.
    for chunk_size in (64, 16, 4, 1):
        if len(text) <= chunk_size:
            continue
        pieces = _chunks(text, chunk_size)
        pieces = ddmin(pieces, lambda kept: predicate("".join(kept)), budget)
        text = "".join(pieces)
    return text
