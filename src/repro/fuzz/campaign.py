"""The ``repro fuzz`` campaign driver.

A campaign is two integers: ``seed`` picks the deterministic case
stream, ``budget`` says how many cases of it to run.  Every case goes
through the sentinels; a violation is delta-debugged down to a minimal
reproducer and written (program + provenance JSON) into the regression
corpus, where :func:`replay_regressions` — wired into the test suite
and CI — re-runs it forever after.
"""

import json
import os
import time
from dataclasses import dataclass, field

from repro.fuzz.generator import FAMILIES, FuzzCase, generate_case
from repro.fuzz.minimize import minimize_source
from repro.fuzz.sentinels import run_case

#: The permanent regression corpus, relative to the repo root.
DEFAULT_REGRESSIONS_DIR = os.path.join("tests", "fuzz_regressions")


@dataclass
class CampaignResult:
    """Outcome of one ``run_campaign`` invocation."""

    seed: int
    budget: int
    cases_run: int = 0
    survivors: int = 0
    seconds: float = 0.0
    #: family -> cases run.
    by_family: dict = field(default_factory=dict)
    #: family -> quarantined-case count (failure-ledger non-empty).
    quarantined_by_family: dict = field(default_factory=dict)
    #: One dict per violating case (label, family, violations,
    #: original/minimized sizes, written paths).
    violations: list = field(default_factory=list)
    regressions_written: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.violations

    def summary_line(self):
        families = " ".join(
            "%s=%d" % (family, self.by_family.get(family, 0))
            for family in FAMILIES
        )
        return (
            "fuzz: seed=%d budget=%d ran=%d survivors=%d violations=%d "
            "[%s] in %.1fs"
            % (
                self.seed,
                self.budget,
                self.cases_run,
                self.survivors,
                len(self.violations),
                families,
                self.seconds,
            )
        )


def _violation_kinds(report):
    """The sentinel names that fired (stable under minimization)."""
    return sorted({violation.split(":", 1)[0] for violation in report.violations})


def _minimize_case(case, kinds, deadline, minimize_budget):
    """Shrink each source of a violating case while the same sentinel
    kinds keep firing; returns the minimized FuzzCase."""
    sources = list(case.sources)
    for position in range(len(sources)):
        def predicate(candidate, position=position):
            trial_sources = list(sources)
            trial_sources[position] = candidate
            trial = FuzzCase(
                seed=case.seed,
                index=case.index,
                family=case.family,
                sources=tuple(trial_sources),
                include_api=case.include_api,
            )
            report = run_case(trial, deadline=deadline, differential=True)
            return _violation_kinds(report) == kinds

        sources[position] = minimize_source(
            sources[position], predicate, budget=minimize_budget
        )
    return FuzzCase(
        seed=case.seed,
        index=case.index,
        family=case.family,
        sources=tuple(sources),
        include_api=case.include_api,
    )


def write_regression(directory, case, report, original_chars):
    """Persist one minimized reproducer: ``<label>.java`` (first source,
    for human eyes) plus ``<label>.json`` (full provenance, for replay)."""
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, case.label)
    payload = {
        "case": case.to_payload(),
        "violations": report.violations,
        "original_chars": original_chars,
        "minimized_chars": sum(len(source) for source in case.sources),
    }
    with open(base + ".json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(base + ".java", "w", errors="surrogateescape") as handle:
        handle.write(case.sources[0] if case.sources else "")
    return [base + ".json", base + ".java"]


def load_regression(path):
    """Load one stored ``.json`` reproducer back into a FuzzCase."""
    with open(path) as handle:
        payload = json.load(handle)
    return FuzzCase.from_payload(payload["case"])


def replay_regressions(directory=DEFAULT_REGRESSIONS_DIR, deadline=60.0):
    """Re-run every stored reproducer; returns [(path, CaseReport)].

    An empty (or missing) corpus replays to an empty list — the corpus
    only grows when a campaign actually finds something.
    """
    results = []
    if not os.path.isdir(directory):
        return results
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        case = load_regression(path)
        results.append((path, run_case(case, deadline=deadline)))
    return results


def run_campaign(
    seed,
    budget,
    regressions_dir=DEFAULT_REGRESSIONS_DIR,
    deadline=30.0,
    minimize=True,
    minimize_budget=150,
    log=None,
):
    """Run ``budget`` cases of stream ``seed`` under the sentinels.

    Violations are minimized (when ``minimize``) and written into
    ``regressions_dir`` (None = don't persist).  Returns a
    :class:`CampaignResult`; the campaign itself never raises on a
    finding — discovering bugs is its job, not an error.
    """
    result = CampaignResult(seed=seed, budget=budget)
    start = time.perf_counter()
    for index in range(budget):
        case = generate_case(seed, index)
        report = run_case(case, deadline=deadline)
        result.cases_run += 1
        result.by_family[case.family] = (
            result.by_family.get(case.family, 0) + 1
        )
        if report.survivor:
            result.survivors += 1
        if report.dispositions:
            result.quarantined_by_family[case.family] = (
                result.quarantined_by_family.get(case.family, 0) + 1
            )
        if report.ok:
            continue
        if log is not None:
            log(
                "fuzz: %s violated %s"
                % (case.label, "; ".join(report.violations))
            )
        original_chars = sum(len(source) for source in case.sources)
        minimized = case
        if minimize:
            minimized = _minimize_case(
                case, _violation_kinds(report), deadline, minimize_budget
            )
        entry = {
            "label": case.label,
            "family": case.family,
            "violations": report.violations,
            "original_chars": original_chars,
            "minimized_chars": sum(
                len(source) for source in minimized.sources
            ),
            "paths": [],
        }
        if regressions_dir is not None:
            entry["paths"] = write_regression(
                regressions_dir, minimized, report, original_chars
            )
            result.regressions_written.extend(entry["paths"])
        result.violations.append(entry)
    result.seconds = time.perf_counter() - start
    return result
