"""Seeded structured generator of fuzz cases.

Each case is a small Java-subset program (plus, for some families, a
generated protocol API class) built from a deterministic PRNG: the same
``(seed, index)`` always yields byte-identical sources, which is what
makes a campaign reproducible from two integers and lets the regression
corpus store seeds alongside programs.

Families:

``valid``
    Syntactically valid clients of the Iterator/Collection protocol —
    random method bodies of guarded loops, conditional calls, and
    cross-method calls.  These must flow through the whole pipeline and
    survive every differential sentinel.
``deep-nesting``
    Recursion bombs: parenthesized expressions, nested blocks, or
    ``if`` chains nested far beyond the parser's depth budget.
``giant-method``
    One method with hundreds-to-thousands of statements, sometimes
    carrying a string literal near or past the literal budget.
``dense-callgraph``
    Many mutually calling methods (cycles included) — worklist stress.
``many-states``
    A generated protocol class with >64 abstract states, past the
    bit-vector checker tier's word width, so tier routing is exercised.
``mutated``
    A valid program with a few random edits (spans deleted/duplicated,
    characters replaced) — mostly parse/resolve failures.
``corrupted``
    Byte-level hostility: NUL and non-ASCII injection, truncation.
"""

import random
from dataclasses import dataclass

from repro.corpus.iterator_api import ITERATOR_API_SOURCE

FAMILIES = (
    "valid",
    "deep-nesting",
    "giant-method",
    "dense-callgraph",
    "many-states",
    "mutated",
    "corrupted",
)


@dataclass(frozen=True)
class FuzzCase:
    """One generated input: sources plus provenance."""

    seed: int
    index: int
    family: str
    #: The generated sources, *excluding* the standard annotated API.
    sources: tuple = ()
    #: Prepend the Iterator/Collection API (as ``repro infer``'s
    #: default ``--api`` does)?
    include_api: bool = True

    @property
    def label(self):
        return "fuzz-%d-%d-%s" % (self.seed, self.index, self.family)

    def pipeline_sources(self):
        """The full source tuple the pipeline should run on."""
        if self.include_api:
            return (ITERATOR_API_SOURCE,) + tuple(self.sources)
        return tuple(self.sources)

    def to_payload(self):
        return {
            "seed": self.seed,
            "index": self.index,
            "family": self.family,
            "sources": list(self.sources),
            "include_api": self.include_api,
        }

    @classmethod
    def from_payload(cls, payload):
        return cls(
            seed=int(payload["seed"]),
            index=int(payload["index"]),
            family=str(payload["family"]),
            sources=tuple(payload["sources"]),
            include_api=bool(payload["include_api"]),
        )


def _rng_for(seed, index):
    # A multiplier keeps neighbouring (seed, index) streams decorrelated.
    return random.Random((seed * 1_000_003 + 7) ^ (index * 69_069 + 1))


def generate_case(seed, index):
    """The deterministic case at position ``index`` of campaign ``seed``."""
    family = FAMILIES[index % len(FAMILIES)]
    rng = _rng_for(seed, index)
    builder = _BUILDERS[family]
    return builder(rng, seed, index)


# ---------------------------------------------------------------------------
# valid clients
# ---------------------------------------------------------------------------

def _valid_statements(rng, depth, method_count, self_index):
    """A random list of statement strings for one method body."""
    statements = []
    for _ in range(rng.randint(1, 4)):
        choice = rng.random()
        if choice < 0.30:
            statements.append(
                "Iterator<String> it%d = c.iterator();" % rng.randint(0, 3)
            )
        elif choice < 0.50:
            it = rng.randint(0, 3)
            statements.append("Iterator<String> it%d = c.iterator();" % it)
            statements.append(
                "while (it%d.hasNext()) { String s%d = it%d.next(); }"
                % (it, rng.randint(0, 9), it)
            )
        elif choice < 0.62:
            it = rng.randint(0, 3)
            statements.append("Iterator<String> it%d = c.iterator();" % it)
            statements.append(
                "if (it%d.hasNext()) { it%d.next(); }" % (it, it)
            )
        elif choice < 0.72:
            statements.append("int n%d = c.size();" % rng.randint(0, 9))
        elif choice < 0.80:
            statements.append('c.add("v%d");' % rng.randint(0, 99))
        elif choice < 0.90 and method_count > 1:
            callee = rng.randrange(method_count)
            if callee != self_index:
                statements.append("this.m%d(c);" % callee)
        elif depth < 2:
            inner = _valid_statements(rng, depth + 1, method_count, self_index)
            keyword = rng.choice(
                ["if (c.size() > 0)", "while (c.size() > %d)" % rng.randint(1, 9)]
            )
            statements.append("%s { %s }" % (keyword, " ".join(inner)))
    return statements


def _render_client(methods, class_name="Client"):
    lines = ["class %s {" % class_name]
    for name, body_statements in methods:
        lines.append("    void %s(Collection<String> c) {" % name)
        for statement in body_statements:
            lines.append("        " + statement)
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _build_valid(rng, seed, index):
    method_count = rng.randint(1, 4)
    methods = [
        ("m%d" % i, _valid_statements(rng, 0, method_count, i))
        for i in range(method_count)
    ]
    return FuzzCase(seed, index, "valid", (_render_client(methods),))


# ---------------------------------------------------------------------------
# pathological families
# ---------------------------------------------------------------------------

def _build_deep_nesting(rng, seed, index):
    depth = rng.randint(60, 220)
    shape = rng.randrange(3)
    if shape == 0:  # parenthesized expression bomb
        expr = "(" * depth + "1" + ")" * depth
        body = "int x = %s;" % expr
    elif shape == 1:  # nested block bomb
        body = "{" * depth + "int x = 1;" + "}" * depth
    else:  # if-chain bomb
        body = (
            "if (c.size() > 0) { " * depth
            + "int x = 1;"
            + " }" * depth
        )
    source = (
        "class Deep {\n"
        "    void m0(Collection<String> c) {\n"
        "        %s\n"
        "    }\n"
        "}\n" % body
    )
    return FuzzCase(seed, index, "deep-nesting", (source,))


def _build_giant_method(rng, seed, index):
    statements = []
    for i in range(rng.randint(300, 1200)):
        pick = i % 3
        if pick == 0:
            statements.append("int n%d = c.size();" % i)
        elif pick == 1:
            statements.append('c.add("v%d");' % i)
        else:
            statements.append("c.size();")
    if rng.random() < 0.5:
        # Sometimes push a literal toward (occasionally past) the
        # 64 KiB literal budget.
        length = rng.choice([1_000, 30_000, 70_000])
        statements.append('String blob = "%s";' % ("a" * length))
    return FuzzCase(
        seed, index, "giant-method", (_render_client([("m0", statements)]),)
    )


def _build_dense_callgraph(rng, seed, index):
    method_count = rng.randint(5, 12)
    methods = []
    for i in range(method_count):
        body = ["Iterator<String> it0 = c.iterator();"]
        if rng.random() < 0.6:
            body.append("while (it0.hasNext()) { it0.next(); }")
        # Dense edges, cycles included (a method may call any other,
        # earlier or later, and chains loop back to m0).
        for _ in range(rng.randint(2, method_count)):
            body.append("this.m%d(c);" % rng.randrange(method_count))
        methods.append(("m%d" % i, body))
    return FuzzCase(
        seed, index, "dense-callgraph", (_render_client(methods),)
    )


def _build_many_states(rng, seed, index):
    state_count = rng.randint(66, 96)  # past the 64-bit checker tier
    states = ["S%d" % i for i in range(state_count)]
    lines = ['@States("%s")' % ", ".join(states), "class Widget {", "    Widget() { }"]
    step_count = rng.randint(3, 8)
    for i in range(step_count):
        source_state = states[rng.randrange(state_count)]
        target_state = states[rng.randrange(state_count)]
        lines.append(
            '    @Perm(requires="full(this) in %s", ensures="full(this) in %s")'
            % (source_state, target_state)
        )
        lines.append("    void step%d() { }" % i)
    lines.append('    @Perm(requires="pure(this) in ALIVE", ensures="pure(this)")')
    lines.append("    boolean probe() { return true; }")
    lines.append("}")
    widget = "\n".join(lines) + "\n"
    calls = ["Widget w = new Widget();"]
    for _ in range(rng.randint(1, 5)):
        calls.append("w.step%d();" % rng.randrange(step_count))
        if rng.random() < 0.4:
            calls.append("boolean b = w.probe();")
    client = (
        "class States {\n"
        "    void use() {\n        "
        + "\n        ".join(calls)
        + "\n    }\n}\n"
    )
    return FuzzCase(seed, index, "many-states", (widget, client))


# ---------------------------------------------------------------------------
# invalid families
# ---------------------------------------------------------------------------

def _build_mutated(rng, seed, index):
    base = _build_valid(rng, seed, index).sources[0]
    text = base
    for _ in range(rng.randint(1, 4)):
        if not text:
            break
        kind = rng.randrange(4)
        at = rng.randrange(len(text))
        if kind == 0:  # delete a span
            span = rng.randint(1, 12)
            text = text[:at] + text[at + span :]
        elif kind == 1:  # duplicate a span
            span = rng.randint(1, 12)
            text = text[:at] + text[at : at + span] + text[at:]
        elif kind == 2:  # replace one char with hostile punctuation
            text = text[:at] + rng.choice('{}();<>"\'\\@') + text[at + 1 :]
        else:  # swap two characters
            other = rng.randrange(len(text))
            low, high = sorted((at, other))
            if low != high:
                text = (
                    text[:low]
                    + text[high]
                    + text[low + 1 : high]
                    + text[low]
                    + text[high + 1 :]
                )
    return FuzzCase(seed, index, "mutated", (text,))


def _build_corrupted(rng, seed, index):
    base = _build_valid(rng, seed, index).sources[0]
    kind = rng.randrange(4)
    if kind == 0:  # NUL injection
        at = rng.randrange(len(base))
        text = base[:at] + "\x00" + base[at:]
    elif kind == 1:  # non-ASCII injection
        at = rng.randrange(len(base))
        text = base[:at] + rng.choice("é中🙂\x80﻿") + base[at:]
    elif kind == 2:  # truncation
        text = base[: rng.randrange(1, len(base))]
    else:  # random byte salad over a span
        at = rng.randrange(len(base))
        salad = "".join(chr(rng.randrange(256)) for _ in range(rng.randint(1, 24)))
        text = base[:at] + salad + base[at:]
    return FuzzCase(seed, index, "corrupted", (text,))


_BUILDERS = {
    "valid": _build_valid,
    "deep-nesting": _build_deep_nesting,
    "giant-method": _build_giant_method,
    "dense-callgraph": _build_dense_callgraph,
    "many-states": _build_many_states,
    "mutated": _build_mutated,
    "corrupted": _build_corrupted,
}
