"""Invariant sentinels: one fuzz case through the full pipeline.

A case *violates* a sentinel when the pipeline breaks one of the
properties the rest of the repo treats as contracts:

* **no-crash** — no exception escapes ``run_on_sources`` (hostile input
  must cost quarantines, never the process);
* **deadline** — the case completes within its wall budget;
* **ledger** — every failure record uses the documented stage and
  disposition vocabularies;
* **marginals** — every reported boundary marginal is finite, within
  [0, 1], and normalized (sums to 1);  fraction soundness rides on the
  same check plus :class:`FractionalPermission`'s own (0, 1] guard,
  which would otherwise surface as a crash or quarantine;
* **engine-differential** — loopy ≡ compiled, bit-identically;
* **executor-differential** — serial ≡ thread (the two deterministic
  scheduled executors), bit-identically;
* **tier-differential** — full ≡ auto checker tiers, bit-identically.

Differentials run only on *survivors* (cases whose baseline run is
failure-free): a quarantined case has no meaningful cross-run contract,
and the worklist-vs-scheduled pair is excluded by design (their visit
trajectories legitimately differ).
"""

import math
import time
from dataclasses import dataclass, field

from repro.core.infer import InferenceSettings
from repro.core.pipeline import AnekPipeline
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import DISPOSITIONS, STAGES

#: Survivors larger than this skip the differential sentinels — the
#: giant-method family would otherwise quintuple campaign wall time for
#: a contract the small survivors already pin down every cycle.
DIFFERENTIAL_MAX_CHARS = 8_000


@dataclass
class CaseReport:
    """What one case did under the sentinels."""

    case: object
    violations: list = field(default_factory=list)
    seconds: float = 0.0
    #: Baseline run finished failure-free (differentials applied).
    survivor: bool = False
    #: disposition -> count over the baseline ledger.
    dispositions: dict = field(default_factory=dict)

    @property
    def ok(self):
        return not self.violations


def _run_pipeline(sources, engine="compiled", executor="worklist",
                  check_tier="auto"):
    settings = InferenceSettings(
        engine=engine,
        executor=executor,
        policy=ResiliencePolicy(),
    )
    pipeline = AnekPipeline(
        settings=settings, cache=None, check_tier=check_tier
    )
    return pipeline.run_on_sources(list(sources))


def _check_marginals(result, violations):
    for ref, boundary in result.boundary_marginals.items():
        for (slot, target), marginal in boundary.items():
            for axis in ("kind", "state"):
                distribution = getattr(marginal, axis)
                if distribution is None:
                    continue
                values = list(distribution.values())
                if any(
                    not math.isfinite(value) for value in values
                ):
                    violations.append(
                        "marginals: non-finite %s marginal at %s %s/%s"
                        % (axis, ref.qualified_name, slot, target)
                    )
                    continue
                if any(value < -1e-9 or value > 1 + 1e-9 for value in values):
                    violations.append(
                        "marginals: %s marginal outside [0,1] at %s %s/%s"
                        % (axis, ref.qualified_name, slot, target)
                    )
                if values and abs(sum(values) - 1.0) > 1e-6:
                    violations.append(
                        "marginals: %s marginal not normalized at %s %s/%s "
                        "(sum=%r)"
                        % (axis, ref.qualified_name, slot, target, sum(values))
                    )


def _check_ledger(result, violations):
    for record in result.failures:
        if record.stage not in STAGES:
            violations.append(
                "ledger: unknown stage %r in %s" % (record.stage, record.format())
            )
        if record.disposition not in DISPOSITIONS:
            violations.append(
                "ledger: unknown disposition %r in %s"
                % (record.disposition, record.format())
            )


def run_case(case, deadline=30.0, differential=True):
    """Run one case under every sentinel; returns a :class:`CaseReport`."""
    report = CaseReport(case=case)
    sources = case.pipeline_sources()
    start = time.perf_counter()
    try:
        result = _run_pipeline(sources)
    except Exception as exc:  # the no-crash sentinel
        report.seconds = time.perf_counter() - start
        report.violations.append(
            "no-crash: uncaught %s: %s" % (type(exc).__name__, exc)
        )
        return report
    report.seconds = time.perf_counter() - start
    if deadline and report.seconds > deadline:
        report.violations.append(
            "deadline: case took %.1fs (budget %.1fs)"
            % (report.seconds, deadline)
        )
    _check_ledger(result, report.violations)
    _check_marginals(result, report.violations)
    for record in result.failures:
        report.dispositions[record.disposition] = (
            report.dispositions.get(record.disposition, 0) + 1
        )
    report.survivor = result.failures.is_clean
    if not (differential and report.survivor):
        return report
    if sum(len(source) for source in sources) > DIFFERENTIAL_MAX_CHARS:
        return report
    baseline = result.canonical_json(include_marginals=True)
    try:
        loopy = _run_pipeline(sources, engine="loopy")
        if loopy.canonical_json(include_marginals=True) != baseline:
            report.violations.append(
                "engine-differential: loopy != compiled"
            )
        serial = _run_pipeline(sources, executor="serial")
        threaded = _run_pipeline(sources, executor="thread")
        if serial.canonical_json(include_marginals=True) != (
            threaded.canonical_json(include_marginals=True)
        ):
            report.violations.append(
                "executor-differential: serial != thread"
            )
        full = _run_pipeline(sources, check_tier="full")
        if full.canonical_json(include_marginals=True) != baseline:
            report.violations.append(
                "tier-differential: full != auto"
            )
    except Exception as exc:
        report.violations.append(
            "no-crash: uncaught %s in differential run: %s"
            % (type(exc).__name__, exc)
        )
    report.seconds = time.perf_counter() - start
    return report
