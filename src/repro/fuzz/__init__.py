"""Deterministic structured fuzzing for the whole ANEK pipeline.

The hostile-input counterpart of the resilience layer: a seeded
generator produces random Java-subset programs and protocol annotations
(valid, mutated-invalid, and pathological families), every case runs
through the full pipeline under invariant *sentinels* (no uncaught
exception, bounded wall time, normalized finite marginals, differential
agreement across engines/executors/check tiers), and any sentinel
violation is shrunk by a delta-debugging minimizer and written into
``tests/fuzz_regressions/`` as a permanent replayable regression.

* :mod:`repro.fuzz.generator` — the seeded case generator and its
  program-family grammar;
* :mod:`repro.fuzz.sentinels` — one case through the pipeline, every
  invariant checked;
* :mod:`repro.fuzz.minimize` — line-granularity ddmin;
* :mod:`repro.fuzz.campaign` — the ``repro fuzz`` driver: budgeted
  loop, minimization, regression corpus, replay.
"""

from repro.fuzz.campaign import (
    CampaignResult,
    replay_regressions,
    run_campaign,
)
from repro.fuzz.generator import FAMILIES, FuzzCase, generate_case
from repro.fuzz.minimize import ddmin, minimize_source
from repro.fuzz.sentinels import CaseReport, run_case

__all__ = [
    "FAMILIES",
    "FuzzCase",
    "generate_case",
    "CaseReport",
    "run_case",
    "ddmin",
    "minimize_source",
    "CampaignResult",
    "run_campaign",
    "replay_regressions",
]
