"""The serve wire protocol: framed JSON over a local stream socket.

One message is ``MAGIC + u32 length + UTF-8 JSON``; the magic catches a
client that connected something else to the socket, the length prefix
makes framing trivial in both the blocking client and the non-blocking
server front end (:class:`FrameBuffer`).  JSON keeps the protocol
inspectable and language-neutral; float fidelity is not the wire's
problem — results travel as the pipeline's *canonical payload*
(:meth:`repro.core.pipeline.PipelineResult.canonical_payload`), whose
JSON float round-trip is exact.

Requests are normalized and validated by :func:`normalize_request`
before they enter the queue, so by the time a worker sees one every
knob is typed, ranged, and defaulted — a malformed request costs one
``invalid`` response, never a worker crash.
"""

import json
import struct

from repro.core.model import ENGINES
from repro.core.parallel import EXECUTORS

#: Per-frame magic: catches non-protocol bytes before a length is trusted.
MAGIC = b"ANK1"

#: Frames above this are refused — a local analysis request has no
#: business shipping hundreds of megabytes of source.  This is the
#: protocol-level hard ceiling; the server can configure a *lower*
#: per-connection cap (``AnekServer(max_frame_bytes=...)``).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Total UTF-8 source bytes one request may carry (sum over all its
#: ``sources``).  Bounds what a single admitted request can make the
#: pipeline chew on, independently of frame size (JSON escapes can make
#: a frame much larger or slightly smaller than the decoded sources).
MAX_SOURCE_BYTES = 32 * 1024 * 1024

#: Operations the daemon accepts.  ``health`` is the supervisor's and
#: load balancer's probe: queue depth, worker saturation, RSS, and the
#: overload verdict, answered inline by the front end.
OPS = ("infer", "check", "ping", "health", "stats", "shutdown")

#: Response statuses, mirroring the CLI's exit-code vocabulary:
#: ``ok`` = clean result; ``degraded`` = completed with quarantines or
#: prior-only solves (CLI exit 2); ``invalid`` = bad request (CLI 3);
#: ``error`` = handler failure (CLI 4); ``expired`` = per-request
#: deadline passed; ``rejected`` = bounded queue full or daemon
#: draining; ``overloaded`` = admission shed under memory pressure —
#: like ``rejected`` it is *retryable* (the work never started), and
#: responses carry ``retryable: true`` so clients can tell refusals
#: from execution outcomes.
STATUSES = (
    "ok",
    "degraded",
    "invalid",
    "error",
    "expired",
    "rejected",
    "overloaded",
)

#: Statuses that mean "the work was never executed; retrying is safe
#: and reaches a fresh admission decision".  Execution outcomes
#: (``ok``/``degraded``/``error``/``expired``) are *final* for a given
#: idempotency key and are replayed, never re-run.
RETRYABLE_STATUSES = ("rejected", "overloaded")

#: Longest accepted idempotency key (it is an LRU key, not a payload).
MAX_IDEMPOTENCY_KEY = 128


class ProtocolError(Exception):
    """A malformed frame or an invalid request payload."""


class FrameTooLarge(ProtocolError):
    """A frame announced a length above the configured cap.

    Raised *from the 8-byte header alone*, before any body bytes are
    buffered — a hostile length prefix can never drive buffer growth.
    Distinguished from :class:`ProtocolError` so the server can answer
    with a clean ``invalid`` response (the stream is still framed and
    trustworthy: nothing of the oversized body was consumed out of
    sync) instead of the generic error-and-drop path.
    """


def encode_message(payload):
    """One framed message as bytes."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            "message of %d bytes exceeds the %d byte limit"
            % (len(body), MAX_MESSAGE_BYTES)
        )
    return MAGIC + struct.pack("<I", len(body)) + body


def send_message(sock, payload):
    """Blocking send of one framed message."""
    sock.sendall(encode_message(payload))


def _recv_exact(sock, count):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(
                "connection closed mid-frame (%d of %d bytes missing)"
                % (remaining, count)
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock):
    """Blocking receive of one framed message (the client side)."""
    header = _recv_exact(sock, len(MAGIC) + 4)
    if not header.startswith(MAGIC):
        raise ProtocolError("bad frame magic %r" % header[: len(MAGIC)])
    (length,) = struct.unpack("<I", header[len(MAGIC) :])
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError("frame of %d bytes exceeds the limit" % length)
    body = _recv_exact(sock, length)
    try:
        return json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise ProtocolError("undecodable frame body: %s" % exc)


class FrameBuffer:
    """Incremental frame decoder for the server's non-blocking reads.

    Feed it whatever ``recv`` produced; it yields every complete message
    and keeps the partial tail for the next feed.  Raises
    :class:`ProtocolError` on a bad magic or an undecodable body — the
    server then drops the connection, since the stream can no longer be
    trusted to re-synchronize.

    A frame announcing a length above ``max_frame`` raises
    :class:`FrameTooLarge` from the header alone and switches the
    decoder into *discard mode*: the oversized body is drained from
    subsequent feeds without ever being buffered, after which normal
    framing resumes — the connection survives, one hostile frame costs
    one ``invalid`` response and at most ``max_frame`` resident bytes.
    Messages completed earlier in the same feed ride along on the
    exception's ``messages`` attribute so none are lost.
    """

    def __init__(self, max_frame=None):
        self._buffer = bytearray()
        self.max_frame = min(max_frame or MAX_MESSAGE_BYTES, MAX_MESSAGE_BYTES)
        #: Bytes of an oversized frame body still to drain.
        self._discard = 0

    def feed(self, data):
        if self._discard:
            if len(data) <= self._discard:
                self._discard -= len(data)
                return []
            data = data[self._discard :]
            self._discard = 0
        self._buffer.extend(data)
        messages = []
        header_len = len(MAGIC) + 4
        while True:
            if len(self._buffer) < header_len:
                return messages
            if not self._buffer.startswith(MAGIC):
                raise ProtocolError(
                    "bad frame magic %r" % bytes(self._buffer[: len(MAGIC)])
                )
            (length,) = struct.unpack(
                "<I", bytes(self._buffer[len(MAGIC) : header_len])
            )
            if length > self.max_frame:
                buffered_body = min(len(self._buffer) - header_len, length)
                del self._buffer[: header_len + buffered_body]
                self._discard = length - buffered_body
                error = FrameTooLarge(
                    "frame of %d bytes exceeds the %d byte limit"
                    % (length, self.max_frame)
                )
                error.messages = messages
                raise error
            if len(self._buffer) < header_len + length:
                return messages
            body = bytes(self._buffer[header_len : header_len + length])
            del self._buffer[: header_len + length]
            try:
                messages.append(json.loads(body.decode("utf-8")))
            except ValueError as exc:
                raise ProtocolError("undecodable frame body: %s" % exc)


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------

#: Request defaults, also the documentation of the request schema.
REQUEST_DEFAULTS = {
    "op": "infer",
    "sources": (),
    "api": True,
    "threshold": 0.5,
    "max_iters": 0,
    "engine": "compiled",
    "executor": "worklist",
    "jobs": 0,
    "no_cache": False,
    "deadline": 0.0,
    "include_marginals": False,
    "check_tier": "auto",
    #: Client-generated idempotency key ("" = none).  A retried request
    #: carrying the same key and the same work replays the original
    #: completed response bit-identically instead of re-executing.
    "idem": "",
}

#: Checker dispatch tiers (mirrors the CLI's ``--check-tier``).
CHECK_TIERS = ("full", "bitvector", "auto")


def normalize_request(payload, max_source_bytes=MAX_SOURCE_BYTES):
    """Validate one raw request dict into a fully-defaulted copy.

    Raises :class:`ProtocolError` with a requester-facing message on any
    unknown field, unknown op, out-of-range knob (the same ranges the
    CLI's argparse validators enforce), or a ``sources`` payload whose
    total UTF-8 size exceeds ``max_source_bytes`` (0 = unlimited).
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            "request must be a JSON object, got %s" % type(payload).__name__
        )
    unknown = sorted(set(payload) - set(REQUEST_DEFAULTS))
    if unknown:
        raise ProtocolError("unknown request field(s): %s" % ", ".join(unknown))
    request = dict(REQUEST_DEFAULTS)
    request.update(payload)
    if request["op"] not in OPS:
        raise ProtocolError(
            "unknown op %r (expected one of %s)"
            % (request["op"], ", ".join(OPS))
        )
    sources = request["sources"]
    if not isinstance(sources, (list, tuple)) or any(
        not isinstance(source, str) for source in sources
    ):
        raise ProtocolError("sources must be a list of strings")
    request["sources"] = tuple(sources)
    if request["op"] in ("infer", "check") and not sources:
        raise ProtocolError("op %r requires sources" % request["op"])
    if max_source_bytes:
        total = sum(len(source.encode("utf-8")) for source in sources)
        if total > max_source_bytes:
            raise ProtocolError(
                "sources of %d bytes exceed the %d byte limit"
                % (total, max_source_bytes)
            )
    if not isinstance(request["threshold"], (int, float)) or not (
        0.5 <= request["threshold"] < 1.0
    ):
        raise ProtocolError("threshold must be in [0.5, 1)")
    if not isinstance(request["max_iters"], int) or request["max_iters"] < 0:
        raise ProtocolError("max_iters must be an integer >= 0")
    if request["engine"] not in ENGINES:
        raise ProtocolError(
            "unknown engine %r (expected one of %s)"
            % (request["engine"], ", ".join(ENGINES))
        )
    if request["executor"] not in EXECUTORS:
        raise ProtocolError(
            "unknown executor %r (expected one of %s)"
            % (request["executor"], ", ".join(EXECUTORS))
        )
    if not isinstance(request["jobs"], int) or request["jobs"] < 0:
        raise ProtocolError("jobs must be an integer >= 0")
    if (
        not isinstance(request["deadline"], (int, float))
        or request["deadline"] < 0
    ):
        raise ProtocolError("deadline must be a number of seconds >= 0")
    request["deadline"] = float(request["deadline"])
    if request["check_tier"] not in CHECK_TIERS:
        raise ProtocolError(
            "unknown check_tier %r (expected one of %s)"
            % (request["check_tier"], ", ".join(CHECK_TIERS))
        )
    for flag in ("api", "no_cache", "include_marginals"):
        if not isinstance(request[flag], bool):
            raise ProtocolError("%s must be a boolean" % flag)
    if not isinstance(request["idem"], str):
        raise ProtocolError("idem must be a string")
    if len(request["idem"]) > MAX_IDEMPOTENCY_KEY:
        raise ProtocolError(
            "idem of %d chars exceeds the %d char limit"
            % (len(request["idem"]), MAX_IDEMPOTENCY_KEY)
        )
    return request
