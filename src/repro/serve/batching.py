"""Cross-request batch planning.

The dispatcher pulls a batch of admitted requests and plans it:

* **coalescing** — requests with the same *work fingerprint* (identical
  sources, op, and solve-relevant knobs) collapse into one group that is
  analyzed once and fanned out to every requester.  Under concurrent
  load of a hot program this converts N solves into 1 — the serving
  analogue of the compiled kernel's "build once, sweep many" rule, and
  trivially bit-identical because every member receives the same result.
* **disjoint concurrency** — groups with *different* fingerprints touch
  disjoint per-request state (each group re-materializes its program
  from the content-addressed store; no AST, summary store, or model is
  shared), so one dispatch wave submits them all to the warm worker pool
  at once and their compiled-kernel sweeps run concurrently.

Deliberately **not** done: merging distinct programs into one inference.
ANEK-INFER runs a fixed visit budget (3 passes) rather than to a
fixpoint, so a merged worklist would truncate at different points than
each solo run and break the served ≡ cold bit-identity bar (DESIGN
§12).  Sharing between distinct requests happens through the persistent
cache instead, where replay is trajectory-exact.
"""

from dataclasses import dataclass, field
from typing import List

from repro.cache.fingerprints import digest

#: Request fields that define the *work*, i.e. participate in the
#: coalescing fingerprint.  ``include_marginals`` is excluded — it only
#: widens the response payload, so a marginal-requesting member can
#: share a group with one that is not.  ``deadline`` *is* included even
#: though it does not change the program under analysis: a deadline'd
#: request maps its remaining budget into the solve deadline of the
#: resilience policy, and letting it share a solve with a deadline-free
#: request would let one requester's budget degrade another's result —
#: exactly the cross-request state bleed the serving layer must not have.
WORK_FIELDS = (
    "op",
    "sources",
    "api",
    "threshold",
    "max_iters",
    "engine",
    "executor",
    "jobs",
    "no_cache",
    "deadline",
    "check_tier",
)


def work_fingerprint(request):
    """Hash-seed-independent fingerprint of a normalized request's work."""
    return digest(
        ("serve-work", tuple((name, request[name]) for name in WORK_FIELDS))
    )


@dataclass
class BatchGroup:
    """One unit of execution: a fingerprint and every member waiting on it."""

    fingerprint: str
    members: List[object] = field(default_factory=list)

    @property
    def request(self):
        """The work to run — identical across members by construction."""
        return self.members[0].request


@dataclass
class BatchPlan:
    """The dispatch plan for one wave."""

    groups: List[BatchGroup] = field(default_factory=list)
    #: Requests answered by another member's run (batch size - groups).
    coalesced: int = 0

    @property
    def size(self):
        return sum(len(group.members) for group in self.groups)


def plan_batch(pending):
    """Group one batch of :class:`PendingRequest` by work fingerprint.

    Group order is arrival order of each fingerprint's first member, and
    member order within a group is arrival order — both deterministic
    given the admission sequence, neither observable in results (every
    member of a group receives the same payload; distinct groups share
    nothing).
    """
    groups = {}
    ordered = []
    for item in pending:
        group = groups.get(item.fingerprint)
        if group is None:
            group = groups[item.fingerprint] = BatchGroup(item.fingerprint)
            ordered.append(group)
        group.members.append(item)
    return BatchPlan(
        groups=ordered, coalesced=len(pending) - len(ordered)
    )
