"""The daemon's bounded request queue.

Admission control lives here: a full queue rejects at the door (the
requester gets a ``rejected`` response immediately instead of unbounded
latency), and the dispatcher pulls *batches* — the first waiter plus
whatever else arrives inside the batching window — so concurrent
requests are planned together (:mod:`repro.serve.batching`) instead of
trickling through one by one.
"""

import threading
import time
from collections import deque
from dataclasses import dataclass, field


@dataclass
class PendingRequest:
    """One admitted request, parked until a dispatch wave takes it."""

    #: The normalized request payload (:func:`normalize_request` output).
    request: dict
    #: The connection to respond on (an opaque handle owned by the server).
    connection: object
    #: Server-assigned monotonically increasing id.
    request_id: int
    #: The request's work fingerprint (coalescing key).
    fingerprint: str
    #: ``perf_counter`` timestamp at admission.
    arrival: float = field(default_factory=time.perf_counter)
    #: Absolute ``perf_counter`` deadline, or None (no deadline).
    deadline_at: float = None

    def expired(self, now=None):
        if self.deadline_at is None:
            return False
        return (now if now is not None else time.perf_counter()) > self.deadline_at

    def queue_wait(self, now=None):
        return (now if now is not None else time.perf_counter()) - self.arrival


@dataclass
class QueueMetrics:
    """Counter movement of the queue since daemon start."""

    enqueued: int = 0
    rejected: int = 0
    dispatched: int = 0
    max_depth: int = 0
    #: Requests whose deadline expired while still queued; they are
    #: answered ``expired`` by the dispatcher and never reach a worker.
    evicted: int = 0
    #: Total seconds requests spent queued (divide by dispatched for the
    #: mean wait).
    wait_seconds: float = 0.0

    def to_payload(self):
        return {
            "enqueued": self.enqueued,
            "rejected": self.rejected,
            "dispatched": self.dispatched,
            "max_depth": self.max_depth,
            "evicted": self.evicted,
            "wait_seconds": self.wait_seconds,
        }


class BoundedRequestQueue:
    """A FIFO of :class:`PendingRequest` with a hard depth limit."""

    def __init__(self, limit=64):
        if limit < 1:
            raise ValueError("queue limit must be >= 1, got %d" % limit)
        self.limit = limit
        self.metrics = QueueMetrics()
        self._items = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def depth(self):
        with self._lock:
            return len(self._items)

    def put(self, pending):
        """Admit one request; False when the queue is full or closed."""
        with self._not_empty:
            if self._closed or len(self._items) >= self.limit:
                self.metrics.rejected += 1
                return False
            self._items.append(pending)
            self.metrics.enqueued += 1
            self.metrics.max_depth = max(
                self.metrics.max_depth, len(self._items)
            )
            self._not_empty.notify()
            return True

    def close(self):
        """Stop admitting; waiters wake and drain what is already queued."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self):
        with self._lock:
            return self._closed

    def evict_expired(self, now=None):
        """Remove and return every queued request whose deadline has
        already passed.

        The dispatcher calls this before pulling a batch, so a request
        that died of old age *in the queue* is answered ``expired``
        directly and costs zero worker time — under overload this is
        what keeps workers from burning their cycles on responses nobody
        is still waiting for.
        """
        if now is None:
            now = time.perf_counter()
        evicted = []
        with self._lock:
            if not self._items:
                return evicted
            keep = deque()
            for pending in self._items:
                if pending.expired(now):
                    evicted.append(pending)
                else:
                    keep.append(pending)
            if evicted:
                self._items = keep
                self.metrics.evicted += len(evicted)
        return evicted

    def get_batch(self, max_size, window, timeout=0.1):
        """Pull the next dispatch batch.

        Blocks up to ``timeout`` for a first request; once one is in
        hand, keeps collecting until the queue momentarily empties, the
        batching ``window`` (seconds) elapses, or ``max_size`` is
        reached.  Returns a possibly-empty list — an empty list means
        "nothing arrived; check for shutdown and call again", which
        keeps the dispatcher responsive to drains without busy-waiting.
        """
        batch = []
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                return batch
            batch.append(self._items.popleft())
            deadline = time.perf_counter() + max(window, 0.0)
            while len(batch) < max_size:
                if self._items:
                    batch.append(self._items.popleft())
                    continue
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self._closed:
                    break
                self._not_empty.wait(remaining)
                if not self._items:
                    break
            now = time.perf_counter()
            self.metrics.dispatched += len(batch)
            self.metrics.wait_seconds += sum(
                pending.queue_wait(now) for pending in batch
            )
        return batch

    def drain(self):
        """Remove and return everything still queued (shutdown path)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
        return items
