"""Analysis as a service: the persistent ``repro serve`` daemon.

The package splits along the request's path through the daemon:

* :mod:`repro.serve.protocol` — framed-JSON wire format + validation;
* :mod:`repro.serve.queueing` — bounded admission queue and metrics;
* :mod:`repro.serve.batching` — coalescing/concurrency batch planner;
* :mod:`repro.serve.server` — the daemon (front end, dispatcher, workers);
* :mod:`repro.serve.client` — the synchronous client.
"""

from repro.serve.batching import plan_batch, work_fingerprint
from repro.serve.client import ServeClient, ServeError, wait_for_server
from repro.serve.protocol import (
    OPS,
    STATUSES,
    ProtocolError,
    normalize_request,
)
from repro.serve.queueing import BoundedRequestQueue, PendingRequest
from repro.serve.server import AnekServer

__all__ = [
    "OPS",
    "STATUSES",
    "AnekServer",
    "BoundedRequestQueue",
    "PendingRequest",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "normalize_request",
    "plan_batch",
    "wait_for_server",
    "work_fingerprint",
]
