"""Analysis as a service: the persistent ``repro serve`` daemon.

The package splits along the request's path through the daemon:

* :mod:`repro.serve.protocol` — framed-JSON wire format + validation;
* :mod:`repro.serve.queueing` — bounded admission queue and metrics;
* :mod:`repro.serve.batching` — coalescing/concurrency batch planner;
* :mod:`repro.serve.replay` — idempotent completed-response store;
* :mod:`repro.serve.server` — the daemon (front end, dispatcher, workers);
* :mod:`repro.serve.client` — the synchronous client (reconnect, retry,
  circuit breaker);
* :mod:`repro.serve.supervisor` — the ``--supervise`` restart loop.
"""

from repro.serve.batching import plan_batch, work_fingerprint
from repro.serve.client import (
    CircuitOpenError,
    ServeClient,
    ServeError,
    wait_for_server,
)
from repro.serve.protocol import (
    OPS,
    RETRYABLE_STATUSES,
    STATUSES,
    ProtocolError,
    normalize_request,
)
from repro.serve.queueing import BoundedRequestQueue, PendingRequest
from repro.serve.replay import ReplayCache
from repro.serve.server import (
    AnekServer,
    ServeAddressInUse,
    probe_live_daemon,
)
from repro.serve.supervisor import (
    EXIT_CRASHLOOP,
    ServeSupervisor,
    build_child_argv,
)

__all__ = [
    "OPS",
    "RETRYABLE_STATUSES",
    "STATUSES",
    "AnekServer",
    "BoundedRequestQueue",
    "CircuitOpenError",
    "EXIT_CRASHLOOP",
    "PendingRequest",
    "ProtocolError",
    "ReplayCache",
    "ServeAddressInUse",
    "ServeClient",
    "ServeError",
    "ServeSupervisor",
    "build_child_argv",
    "normalize_request",
    "plan_batch",
    "probe_live_daemon",
    "wait_for_server",
    "work_fingerprint",
]
