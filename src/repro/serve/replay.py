"""Idempotent replay: at-most-once execution for retried requests.

A client that loses its connection mid-call cannot know whether the
daemon executed its request.  Blind retry would re-run the solve; giving
up would drop the result.  The contract here is the standard one:

* every retryable request carries a client-generated **idempotency
  key**;
* the daemon keeps a bounded LRU of **completed responses** keyed by
  ``(idem key, work fingerprint)`` — the fingerprint is included so a
  reused key with *different* work is executed, never served someone
  else's result;
* a retried request whose key is present is answered with the stored
  response byte-for-byte (the payload dict is returned as stored and
  the wire encoding is canonical), and the solve is **not** re-executed.

Only *execution outcomes* (``ok``/``degraded``/``error``/``expired``)
are stored: admission refusals (``rejected``/``overloaded``) mean the
work never ran, so a retry must reach a fresh admission decision.

The store is written on completion *before* the response is sent, so a
connection that dies between execution and delivery still leaves the
result behind for the retry to collect — the exact window the whole
mechanism exists for.
"""

import threading
from collections import OrderedDict

#: Default number of completed responses retained.
DEFAULT_REPLAY_LIMIT = 256

#: Statuses that represent a finished execution and are replayable.
REPLAYABLE_STATUSES = ("ok", "degraded", "error", "expired")


class ReplayCache:
    """A thread-safe bounded LRU of completed responses.

    Keys are ``(idem, fingerprint)`` tuples; values are the exact
    response payload dicts the daemon sent (or tried to send).  Counters
    feed the daemon's ``stats``/``health`` payloads — the chaos suite
    asserts on ``replays`` to prove a retried key never re-executed.
    """

    def __init__(self, limit=DEFAULT_REPLAY_LIMIT):
        if limit < 1:
            raise ValueError("replay limit must be >= 1, got %d" % limit)
        self.limit = limit
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        #: Completed responses stored.
        self.stored = 0
        #: Lookups answered from the store (executions avoided).
        self.replays = 0
        #: Entries dropped by the LRU bound.
        self.evicted = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def lookup(self, idem, fingerprint):
        """The stored response for this key, or None.  A hit refreshes
        the entry's LRU position and counts one replay."""
        if not idem:
            return None
        key = (idem, fingerprint)
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                return None
            self._entries.move_to_end(key)
            self.replays += 1
            return payload

    def store(self, idem, fingerprint, payload):
        """Retain one completed response; a no-op without a key or for
        non-replayable (admission-refusal) statuses."""
        if not idem or payload.get("status") not in REPLAYABLE_STATUSES:
            return False
        key = (idem, fingerprint)
        with self._lock:
            already = key in self._entries
            self._entries[key] = payload
            self._entries.move_to_end(key)
            if not already:
                self.stored += 1
                while len(self._entries) > self.limit:
                    self._entries.popitem(last=False)
                    self.evicted += 1
            return True

    def to_payload(self):
        with self._lock:
            return {
                "entries": len(self._entries),
                "limit": self.limit,
                "stored": self.stored,
                "replays": self.replays,
                "evicted": self.evicted,
            }
