"""The serve supervisor: ``repro serve --supervise``.

One small, allocation-free parent process that keeps a daemon
incarnation alive at a **fixed address**:

* it spawns the daemon as a child process (the same ``repro serve``
  command line minus ``--supervise``), hands every incarnation the same
  cache directory — so restarts come back *warm* — and the same socket
  path, which the daemon's stale-socket probe makes safe (a dead
  incarnation's leftover socket never answers a ping and is unlinked;
  a live one refuses the start instead of being stolen from);
* liveness is watched two ways: ``waitpid`` (crash/exit detection) and
  a **heartbeat file** the daemon's front loop touches every second —
  a child whose pid lives but whose heartbeat goes stale past
  ``heartbeat_timeout`` is wedged and gets SIGKILLed, which turns
  "hung" into "crashed" and reuses the restart path;
* crashed children are restarted under **exponential backoff** (capped,
  reset after a stable run), and a **crash loop** — more than
  ``max_restarts`` restarts inside ``restart_window`` seconds — makes
  the supervisor give up with the distinct exit code
  :data:`EXIT_CRASHLOOP` instead of flapping forever;
* SIGTERM/SIGINT are forwarded to the child and the supervisor exits
  with the child's own (graceful-drain) exit code; a child that exits
  0 on its own (``shutdown`` op) or with a usage error is *not*
  restarted — only unexpected deaths are.

Every lifecycle event is appended to an in-memory ledger and, when
``ledger_path`` is set, mirrored to a JSON file after each event — the
chaos CI job uploads it as the run's flight recorder.
"""

import json
import os
import signal
import subprocess
import sys
import time

#: Supervisor exit code: the child crash-looped and we gave up.
#: Distinct from every CLI code (0/1/2/3/4/5) so orchestrators can tell
#: "the service cannot hold itself up" from one bad run.
EXIT_CRASHLOOP = 6

#: Child exit codes that end supervision instead of triggering a
#: restart: a clean drain (0) is an intended stop, and a usage error
#: (3) would reproduce identically on every restart.
_NO_RESTART_EXITS = (0, 3)


def build_child_argv(argv=None):
    """The child daemon's command line: this process's own serve
    invocation with the supervision-only flags stripped."""
    argv = list(sys.argv if argv is None else argv)
    child = [sys.executable, "-m", "repro"]
    skip_next = False
    for arg in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg == "--supervise":
            continue
        if arg in (
            "--max-restarts",
            "--restart-window",
            "--restart-backoff",
            "--restart-backoff-max",
            "--supervisor-ledger",
            "--heartbeat",  # the supervisor re-appends its own
        ):
            skip_next = True
            continue
        if arg.startswith(
            (
                "--max-restarts=",
                "--restart-window=",
                "--restart-backoff=",
                "--restart-backoff-max=",
                "--supervisor-ledger=",
                "--heartbeat=",
            )
        ):
            continue
        child.append(arg)
    return child


class ServeSupervisor:
    """Fork, watch, restart — the self-healing loop around one daemon.

    ``child_argv`` is the full command line of one incarnation; tests
    substitute tiny scripted children to exercise the policy without
    booting a real daemon.  ``heartbeat_path`` is passed to the child
    via ``--heartbeat`` only when ``wire_heartbeat`` is True (real
    daemons); scripted children ignore it.
    """

    def __init__(
        self,
        child_argv,
        heartbeat_path=None,
        heartbeat_timeout=15.0,
        max_restarts=5,
        restart_window=30.0,
        backoff=0.2,
        backoff_max=5.0,
        stable_seconds=10.0,
        poll_interval=0.1,
        ledger_path=None,
        wire_heartbeat=True,
        out=None,
    ):
        self.child_argv = list(child_argv)
        self.heartbeat_path = heartbeat_path
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_restarts = max(1, int(max_restarts))
        self.restart_window = float(restart_window)
        self.backoff = max(0.01, float(backoff))
        self.backoff_max = max(self.backoff, float(backoff_max))
        #: An incarnation that survived this long resets the backoff.
        self.stable_seconds = float(stable_seconds)
        self.poll_interval = max(0.01, float(poll_interval))
        self.ledger_path = ledger_path
        self.wire_heartbeat = wire_heartbeat
        self.out = out
        self._child = None
        self._restart_times = []
        self._stop_requested = None  # the forwarded signal number
        #: Lifecycle events: spawn/exit/hang-kill/restart/give-up dicts.
        self.events = []
        self.restarts = 0

    # -- event ledger ----------------------------------------------------------

    def _event(self, kind, **detail):
        entry = dict(detail, event=kind)
        self.events.append(entry)
        if self.out is not None:
            print(
                "supervisor: %s %s"
                % (
                    kind,
                    " ".join(
                        "%s=%s" % item for item in sorted(detail.items())
                    ),
                ),
                file=self.out,
                flush=True,
            )
        self._write_ledger()

    def _write_ledger(self):
        if not self.ledger_path:
            return
        try:
            with open(self.ledger_path, "w") as handle:
                json.dump(
                    {"restarts": self.restarts, "events": self.events},
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
        except OSError:
            pass

    # -- child lifecycle -------------------------------------------------------

    def _spawn(self):
        argv = list(self.child_argv)
        if self.wire_heartbeat and self.heartbeat_path:
            argv += ["--heartbeat", self.heartbeat_path]
            # A fresh incarnation must prove liveness itself; a stale
            # file from the previous one must not vouch for it.
            try:
                os.unlink(self.heartbeat_path)
            except OSError:
                pass
        self._child = subprocess.Popen(argv)
        self._event("spawn", pid=self._child.pid, incarnation=self.restarts)
        return self._child

    def _heartbeat_age(self):
        """Seconds since the child last touched its heartbeat, or None
        when heartbeats are not wired / the file has not appeared yet
        (boot is covered by the spawn time instead)."""
        if not (self.wire_heartbeat and self.heartbeat_path):
            return None
        try:
            return time.time() - os.stat(self.heartbeat_path).st_mtime
        except OSError:
            return None

    def _kill_child(self, signum=signal.SIGKILL, reason="stop"):
        if self._child is None or self._child.poll() is not None:
            return
        self._event(
            "kill", pid=self._child.pid, signal=int(signum), reason=reason
        )
        try:
            self._child.send_signal(signum)
        except OSError:
            pass

    def _install_signal_forwarding(self):
        def forward(signum, frame):
            self._stop_requested = signum
            if self._child is not None and self._child.poll() is None:
                try:
                    self._child.send_signal(signum)
                except OSError:
                    pass

        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, forward)

    # -- the supervision loop --------------------------------------------------

    def run(self, install_signals=True):
        """Supervise until the child stops on purpose, the supervisor is
        signalled, or the crash loop trips.  Returns the exit code."""
        if install_signals:
            self._install_signal_forwarding()
        while True:
            spawned_at = time.monotonic()
            child = self._spawn()
            exit_code = self._watch(child, spawned_at)
            if self._stop_requested is not None:
                self._event(
                    "stopped", signal=int(self._stop_requested),
                    exit_code=exit_code,
                )
                return exit_code if exit_code is not None else 0
            if exit_code in _NO_RESTART_EXITS:
                self._event("finished", exit_code=exit_code)
                return exit_code
            lifetime = time.monotonic() - spawned_at
            if lifetime >= self.stable_seconds:
                # A long stable run forgives earlier flapping.
                self._restart_times.clear()
            now = time.monotonic()
            self._restart_times = [
                stamp
                for stamp in self._restart_times
                if now - stamp <= self.restart_window
            ]
            if len(self._restart_times) >= self.max_restarts:
                self._event(
                    "give-up",
                    restarts_in_window=len(self._restart_times),
                    window_seconds=self.restart_window,
                )
                return EXIT_CRASHLOOP
            self._restart_times.append(now)
            self.restarts += 1
            delay = min(
                self.backoff * (2.0 ** (len(self._restart_times) - 1)),
                self.backoff_max,
            )
            self._event(
                "restart",
                exit_code=exit_code,
                lifetime_seconds=round(lifetime, 3),
                backoff_seconds=round(delay, 3),
            )
            if self._sleep_interruptible(delay):
                self._event("stopped", signal=int(self._stop_requested))
                return 0

    def _watch(self, child, spawned_at):
        """Block until this incarnation exits (on its own, by forwarded
        signal, or by our hang-kill).  Returns its exit code."""
        while True:
            code = child.poll()
            if code is not None:
                self._event(
                    "exit",
                    pid=child.pid,
                    exit_code=code,
                    lifetime_seconds=round(
                        time.monotonic() - spawned_at, 3
                    ),
                )
                return code
            if self._stop_requested is not None:
                try:
                    return child.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    self._kill_child(reason="drain-timeout")
                    return child.wait()
            age = self._heartbeat_age()
            if (
                age is not None
                and self.heartbeat_timeout > 0
                and age > self.heartbeat_timeout
            ):
                # Alive pid, dead heartbeat: wedged.  Turn it into a
                # crash and let the restart path handle it.
                self._kill_child(reason="heartbeat-stale")
                child.wait()
                continue
            time.sleep(self.poll_interval)

    def _sleep_interruptible(self, delay):
        """Backoff sleep that still honours a forwarded stop signal.
        True when a stop arrived during the sleep."""
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline:
            if self._stop_requested is not None:
                return True
            time.sleep(min(self.poll_interval, delay))
        return self._stop_requested is not None
