"""The ``repro serve`` daemon: analysis as a persistent service.

One process keeps everything that makes a cold CLI run slow — the
imported toolchain, the content-addressed :class:`AnalysisCache` on a
shared directory, warm-started full-run restores — alive across
requests, and serves concurrent ``infer``/``check`` requests over a
local socket.

Threading model (three kinds of thread, no shared mutable analysis
state):

* the **front end** runs a ``selectors`` loop over *blocking* sockets,
  using readiness only to decide whom to ``recv`` from; it frames,
  validates, and either answers control ops inline (``ping``,
  ``stats``, ``shutdown``) or admits work into the
  :class:`BoundedRequestQueue`.
* the **dispatcher** pulls batches from the queue, plans them
  (:func:`plan_batch` — coalesce identical work, run distinct work
  concurrently), and submits one worker task per group.  Waves are
  synchronous: the dispatcher joins a wave before pulling the next
  batch, which makes "drain in-flight work then stop" a two-line
  shutdown path.
* **workers** (a warm ``ThreadPoolExecutor``) each run one group:
  re-materialize the program from sources (never shared — the applier
  mutates the AST), run the exact :class:`AnekPipeline` the CLI runs,
  and fan the canonical result out to every coalesced member.

Determinism: a served request executes the same pipeline with the same
settings as ``python -m repro infer``, and results travel as
:meth:`PipelineResult.canonical_payload` whose JSON float round-trip is
exact — so a served response is bit-identical to a cold CLI run of the
same request (asserted by ``tests/test_serve_differential.py``).

Shutdown: SIGTERM/SIGINT (or a ``shutdown`` op) closes the queue —
later requests are ``rejected`` at the door — drains everything already
admitted through normal dispatch, then exits 0, mirroring the graceful
drain of the checkpoint layer.

Self-healing additions (DESIGN §15):

* **idempotent replay** — completed responses are retained in a bounded
  LRU (:class:`repro.serve.replay.ReplayCache`) keyed by the client's
  idempotency key and the work fingerprint; a retried request after a
  connection drop is answered from the store bit-identically, never
  re-executed.
* **overload-aware admission** — a ``health`` op reports queue depth,
  worker saturation, and RSS; when ``max_rss_mb`` is set and exceeded,
  new work is shed with a retryable ``overloaded`` status instead of
  letting the daemon grow into the OOM killer; requests whose deadline
  expired while queued are evicted before dispatch and cost zero worker
  time.
* **heartbeat** — with ``heartbeat_path`` set the front loop touches the
  file every ``heartbeat_interval`` seconds, giving the supervisor
  (:mod:`repro.serve.supervisor`) a liveness signal that distinguishes
  "alive but busy" from "wedged".
"""

import os
import selectors
import signal
import socket
import threading
import time
from dataclasses import replace

from repro.cache import DEFAULT_CACHE_DIR, AnalysisCache
from repro.core import AnekPipeline, InferenceSettings
from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import resolve_program
from repro.plural.checker import run_check
from repro.resilience.checkpoint import current_rss_mb
from repro.resilience.faults import maybe_fault
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import FailureReport
from repro.serve.batching import plan_batch, work_fingerprint
from repro.serve.protocol import (
    MAX_SOURCE_BYTES,
    FrameBuffer,
    FrameTooLarge,
    ProtocolError,
    normalize_request,
    recv_message,
    send_message,
)
from repro.serve.queueing import BoundedRequestQueue, PendingRequest
from repro.serve.replay import DEFAULT_REPLAY_LIMIT, ReplayCache


class ServeAddressInUse(RuntimeError):
    """A live daemon already answers on the requested socket path."""

    def __init__(self, path, pid):
        self.path = path
        self.pid = pid
        super().__init__(
            "a live daemon (pid %s) already serves on %s — refusing to "
            "steal its socket" % (pid, path)
        )


def probe_live_daemon(socket_path, timeout=0.5):
    """Ping whoever listens on ``socket_path``; their pid, or None.

    None means the path is stale (nobody connects, or whoever does is
    not speaking the protocol) and safe to unlink.
    """
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(socket_path)
        send_message(sock, {"op": "ping"})
        response = recv_message(sock)
        if isinstance(response, dict) and response.get("op") == "ping":
            return response.get("pid", -1)
        return None
    except (OSError, ProtocolError, ConnectionError):
        return None
    finally:
        try:
            sock.close()
        except OSError:
            pass


class _Connection:
    """One client connection: socket, frame decoder, serialized writes."""

    def __init__(self, sock, max_frame=None):
        self.sock = sock
        self.buffer = FrameBuffer(max_frame=max_frame)
        #: Responses for one connection may come from the front end and
        #: several workers; the lock keeps frames from interleaving.
        self.write_lock = threading.Lock()
        self.open = True

    def send(self, payload):
        """Send one response; a dead peer is noted, never raised."""
        with self.write_lock:
            if not self.open:
                return False
            try:
                send_message(self.sock, payload)
                return True
            except (OSError, ProtocolError):
                self.open = False
                return False

    def close(self):
        with self.write_lock:
            self.open = False
            try:
                self.sock.close()
            except OSError:
                pass


class AnekServer:
    """The daemon.  ``start()`` + ``wait()`` (or :func:`run_forever`)."""

    def __init__(
        self,
        socket_path=None,
        host="127.0.0.1",
        port=None,
        cache_dir=DEFAULT_CACHE_DIR,
        use_cache=True,
        workers=4,
        queue_limit=64,
        batch_window=0.01,
        batch_max=16,
        policy=None,
        max_rss_mb=0,
        replay_limit=DEFAULT_REPLAY_LIMIT,
        heartbeat_path=None,
        heartbeat_interval=1.0,
        max_frame_bytes=0,
        max_source_bytes=MAX_SOURCE_BYTES,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError(
                "exactly one of socket_path (unix) or port (tcp) is required"
            )
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.workers = max(1, int(workers))
        self.batch_window = batch_window
        self.batch_max = max(1, int(batch_max))
        self.policy = policy or ResiliencePolicy()
        self.queue = BoundedRequestQueue(limit=queue_limit)
        #: Soft RSS budget in MiB; 0 disables overload shedding.
        self.max_rss_mb = max(0, int(max_rss_mb))
        #: Per-connection frame cap in bytes (0 = the protocol ceiling).
        #: A frame announcing more is answered ``invalid`` from its
        #: header alone; the body is drained, never buffered.
        self.max_frame_bytes = max(0, int(max_frame_bytes))
        #: Total source bytes one request may carry (0 = unlimited).
        self.max_source_bytes = max(0, int(max_source_bytes))
        #: Completed responses for idempotent retry replay.
        self.replay = ReplayCache(limit=replay_limit)
        self.heartbeat_path = heartbeat_path
        self.heartbeat_interval = max(0.05, float(heartbeat_interval))
        #: The daemon-lifetime failure ledger (request failures never
        #: abort the daemon; they land here and in the response).
        self.failures = FailureReport()
        self._listener = None
        self._selector = None
        self._pool = None
        self._front_thread = None
        self._dispatcher_thread = None
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._connections = set()
        self._connections_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._request_seq = 0
        self._started_at = None
        self._status_counts = {}
        self._waves = 0
        self._coalesced = 0
        self._expired = 0
        self._shed = 0
        self._busy_workers = 0
        self._executed = 0
        self._last_heartbeat = 0.0

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self):
        """The connectable address string (``PATH`` or ``tcp:HOST:PORT``)."""
        if self.socket_path is not None:
            return self.socket_path
        return "tcp:%s:%d" % (self.host, self.port)

    def start(self):
        """Bind, listen, and start the front-end + dispatcher threads."""
        from concurrent.futures import ThreadPoolExecutor

        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                # Never silently steal the path from a live daemon: two
                # servers unlinking each other's socket would take turns
                # orphaning every connected client.  Only an unanswered
                # (stale, crash-leftover) socket is cleaned up.
                pid = probe_live_daemon(self.socket_path)
                if pid is not None:
                    raise ServeAddressInUse(self.socket_path, pid)
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, data=None)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="anek-serve"
        )
        self._started_at = time.perf_counter()
        self._dispatcher_thread = threading.Thread(
            target=self._dispatch_loop, name="anek-dispatch", daemon=True
        )
        self._front_thread = threading.Thread(
            target=self._front_loop, name="anek-front", daemon=True
        )
        self._dispatcher_thread.start()
        self._front_thread.start()
        return self

    def initiate_shutdown(self):
        """Stop admitting, drain what is admitted, then stop.  Safe to
        call from signal handlers and from any thread, any number of
        times."""
        self._stopping.set()
        self.queue.close()

    def wait(self, poll=0.2):
        """Block until the daemon has drained and stopped."""
        while not self._drained.wait(poll):
            pass
        self._teardown()

    def run_forever(self, install_signals=True, out=None):
        """``start()`` + signal wiring + ``wait()``; returns 0."""
        self.start()
        if out is not None:
            print("serving on %s" % self.address, file=out, flush=True)
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, self._signal_handler)
        self.wait()
        return 0

    def _signal_handler(self, signum, frame):
        self.initiate_shutdown()

    def _teardown(self):
        if self._front_thread is not None:
            self._front_thread.join(timeout=5)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            connection.close()
        if self._selector is not None:
            self._selector.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    # -- front end -------------------------------------------------------------

    def _front_loop(self):
        while True:
            if self._drained.is_set():
                return
            self._touch_heartbeat()
            events = self._selector.select(timeout=0.1)
            for key, _ in events:
                if key.data is None:
                    self._accept()
                else:
                    self._read(key)

    def _touch_heartbeat(self):
        """Prove front-loop liveness to the supervisor: touch the
        heartbeat file at most every ``heartbeat_interval`` seconds.  A
        daemon that stops touching it is wedged even if its pid lives."""
        if self.heartbeat_path is None:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_interval:
            return
        self._last_heartbeat = now
        try:
            with open(self.heartbeat_path, "w") as handle:
                handle.write("%d\n" % os.getpid())
        except OSError:
            pass

    def _accept(self):
        try:
            sock, _ = self._listener.accept()
        except OSError:
            return
        # Blocking socket + selector readiness: recv never blocks (we
        # only call it when readable) and sendall needs no write queue.
        sock.setblocking(True)
        connection = _Connection(sock, max_frame=self.max_frame_bytes or None)
        with self._connections_lock:
            self._connections.add(connection)
        self._selector.register(sock, selectors.EVENT_READ, data=connection)

    def _drop(self, connection):
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError):
            pass
        with self._connections_lock:
            self._connections.discard(connection)
        connection.close()

    def _read(self, key):
        connection = key.data
        try:
            data = connection.sock.recv(65536)
        except OSError:
            data = b""
        if not data:
            self._drop(connection)
            return
        try:
            messages = connection.buffer.feed(data)
        except FrameTooLarge as exc:
            # The header alone announced too much; the decoder drains
            # the body without buffering it and stays in sync, so the
            # refusal is a clean ``invalid`` and the connection lives.
            self.failures.record("serve", "frame", exc, "resource-limit")
            self._count_status("invalid")
            connection.send(
                {"status": "invalid", "error": str(exc), "retryable": False}
            )
            messages = exc.messages
        except ProtocolError as exc:
            # The stream cannot re-synchronize after a framing error.
            connection.send({"status": "error", "error": str(exc)})
            self._drop(connection)
            return
        for raw in messages:
            self._handle_message(connection, raw)

    def _handle_message(self, connection, raw):
        try:
            request = normalize_request(
                raw, max_source_bytes=self.max_source_bytes
            )
        except ProtocolError as exc:
            self._count_status("invalid")
            connection.send({"status": "invalid", "error": str(exc)})
            return
        op = request["op"]
        if op == "ping":
            connection.send(
                {
                    "status": "ok",
                    "op": "ping",
                    "pid": os.getpid(),
                    "draining": self._stopping.is_set(),
                }
            )
            return
        if op == "stats":
            connection.send(self._stats_payload())
            return
        if op == "health":
            connection.send(self._health_payload())
            return
        if op == "shutdown":
            connection.send({"status": "ok", "op": "shutdown"})
            self.initiate_shutdown()
            return
        with self._metrics_lock:
            self._request_seq += 1
            request_id = self._request_seq
        fingerprint = work_fingerprint(request)
        # Chaos site: a ``killproc`` fault here SIGKILLs the daemon
        # while it holds an admitted-but-unanswered request — the
        # client's send succeeded, no response will ever come, and only
        # reconnect + idempotent retry (against the supervisor's next
        # incarnation) recovers it.
        try:
            maybe_fault(
                "serve-admit", "admit:%d:%s" % (request_id, fingerprint[:12])
            )
        except Exception as exc:
            self.failures.record(
                "serve", "admit:%d" % request_id, exc, "request-failed"
            )
            self._count_status("error")
            connection.send(
                {
                    "status": "error",
                    "id": request_id,
                    "error": "%s: %s" % (type(exc).__name__, exc),
                }
            )
            return
        replayed = self.replay.lookup(request["idem"], fingerprint)
        if replayed is not None:
            # At-most-once: the original execution's exact response —
            # bit-identical bytes on the wire, zero re-execution.
            self._count_status("replayed")
            connection.send(replayed)
            return
        if self._overloaded():
            self._shed_overloaded(connection, request_id)
            return
        deadline_at = (
            time.perf_counter() + request["deadline"]
            if request["deadline"] > 0
            else None
        )
        pending = PendingRequest(
            request=request,
            connection=connection,
            request_id=request_id,
            fingerprint=fingerprint,
            deadline_at=deadline_at,
        )
        if not self.queue.put(pending):
            self._count_status("rejected")
            connection.send(
                {
                    "status": "rejected",
                    "id": request_id,
                    "retryable": True,
                    "error": "queue full or daemon draining",
                }
            )

    def _overloaded(self, rss_mb=None):
        """True when the RSS budget is set and currently exceeded."""
        if not self.max_rss_mb:
            return False
        if rss_mb is None:
            rss_mb = current_rss_mb()
        return rss_mb > self.max_rss_mb

    def _shed_overloaded(self, connection, request_id):
        """Refuse one admission under memory pressure.

        Shedding at the door (instead of queueing and OOMing mid-solve)
        keeps the daemon alive and the refusal *retryable*: nothing was
        executed, so the client's backoff-retry reaches a fresh
        admission decision once pressure clears."""
        rss_mb = current_rss_mb()
        exc = MemoryError(
            "rss %.1f MiB over the %d MiB budget" % (rss_mb, self.max_rss_mb)
        )
        self.failures.record(
            "serve", "admit:%d" % request_id, exc, "request-shed"
        )
        self._count_status("overloaded")
        with self._metrics_lock:
            self._shed += 1
        connection.send(
            {
                "status": "overloaded",
                "id": request_id,
                "retryable": True,
                "error": str(exc),
                "rss_mb": rss_mb,
                "max_rss_mb": self.max_rss_mb,
            }
        )

    # -- dispatcher ------------------------------------------------------------

    def _dispatch_loop(self):
        try:
            while True:
                # Deadline-aware eviction: whatever died of old age in
                # the queue is answered right here, before planning —
                # zero worker time spent on a response nobody awaits.
                for pending in self.queue.evict_expired():
                    self._respond_evicted(pending)
                batch = self.queue.get_batch(self.batch_max, self.batch_window)
                live = []
                for pending in batch:
                    if pending.expired():
                        self.queue.metrics.evicted += 1
                        self._respond_evicted(pending)
                    else:
                        live.append(pending)
                batch = live
                if not batch:
                    if self._stopping.is_set() and self.queue.depth() == 0:
                        return
                    continue
                plan = plan_batch(batch)
                with self._metrics_lock:
                    self._waves += 1
                    self._coalesced += plan.coalesced
                futures = [
                    self._pool.submit(self._run_group, group, plan)
                    for group in plan.groups
                ]
                # Wave barrier: drain tracking is then simply "the loop
                # has returned".  A worker exception is a handler bug —
                # surface it on the daemon's ledger, keep serving.
                for group, future in zip(plan.groups, futures):
                    try:
                        future.result()
                    except Exception as exc:  # pragma: no cover - safety net
                        self._fail_group(group, plan, exc)
        finally:
            self._drained.set()

    # -- request execution -----------------------------------------------------

    def _run_group(self, group, plan):
        with self._metrics_lock:
            self._busy_workers += 1
        try:
            self._run_group_inner(group, plan)
        finally:
            with self._metrics_lock:
                self._busy_workers -= 1

    def _run_group_inner(self, group, plan):
        now = time.perf_counter()
        live = []
        for member in group.members:
            if member.expired(now):
                self._respond_expired(member, group, plan, "in queue")
            else:
                live.append(member)
        if not live:
            return
        key = "req:%d:%s" % (live[0].request_id, group.fingerprint[:12])
        try:
            token = maybe_fault("serve", key)
            if token is not None:
                raise RuntimeError(
                    "injected serve-stage divergence (%r)" % token
                )
            executed = self._execute(group.request, live)
        except Exception as exc:
            for member in live:
                self.failures.record("serve", key, exc, "request-failed")
                self._count_status("error")
                self._finish(
                    member,
                    group.fingerprint,
                    {
                        "status": "error",
                        "id": member.request_id,
                        "op": group.request["op"],
                        "error": "%s: %s" % (type(exc).__name__, exc),
                        "serve": self._serve_meta(member, group, plan),
                    },
                )
            return
        with self._metrics_lock:
            self._executed += 1
        now = time.perf_counter()
        for member in live:
            if member.expired(now):
                self._respond_expired(
                    member, group, plan, "during execution", executed
                )
                continue
            status = executed["status"]
            self._count_status(status)
            payload = {
                "status": status,
                "id": member.request_id,
                "op": group.request["op"],
                "result": executed["result"],
                "stats": executed["stats"],
                "serve": self._serve_meta(member, group, plan),
            }
            if member.request["include_marginals"] and "marginals" in executed:
                payload["result"] = dict(executed["result"])
                payload["result"]["marginals"] = executed["marginals"]
            self._finish(member, group.fingerprint, payload)

    def _finish(self, member, fingerprint, payload):
        """Deliver one terminal response: store it for idempotent replay
        *first*, then send.  Ordering matters — a connection that dies
        between execution and delivery (or a ``killproc`` fault at the
        ``serve-respond`` site, which loses both) is exactly the window
        the retry-with-replay contract covers."""
        self.replay.store(member.request.get("idem", ""), fingerprint, payload)
        maybe_fault(
            "serve-respond",
            "respond:%d:%s" % (member.request_id, fingerprint[:12]),
        )
        member.connection.send(payload)

    def _execute(self, request, live):
        """Run one group's work: the same pipeline the CLI runs."""
        sources = list(request["sources"])
        if request["api"]:
            sources.insert(0, ITERATOR_API_SOURCE)
        started = time.perf_counter()
        if request["op"] == "check":
            program = resolve_program(
                [parse_compilation_unit(source) for source in sources]
            )
            check = run_check(program, tier=request["check_tier"])
            return {
                "status": "ok",
                "result": {
                    "warnings": [w.format() for w in check.warnings],
                    "count": len(check.warnings),
                },
                "stats": {
                    "elapsed_seconds": time.perf_counter() - started,
                    "check": {
                        "tier": check.tier,
                        "tier1_methods": check.tier1_methods,
                        "tier2_methods": check.tier2_methods,
                        "tier1_sites": check.tier1_sites,
                        "tier2_sites": check.tier2_sites,
                        "tier1_seconds": check.tier1_seconds,
                        "tier2_seconds": check.tier2_seconds,
                    },
                },
            }
        settings = InferenceSettings(
            threshold=request["threshold"],
            max_worklist_iters=request["max_iters"],
            executor=request["executor"],
            jobs=request["jobs"],
            engine=request["engine"],
            policy=self._policy_for(live),
        )
        cache = None
        if self.use_cache and not request["no_cache"]:
            # A fresh AnalysisCache *instance* per request over the
            # shared directory: artifact reuse comes from the store
            # (write-once, atomic — concurrency-safe), while stats stay
            # an unpolluted per-request delta.
            cache = AnalysisCache(cache_dir=self.cache_dir)
        pipeline = AnekPipeline(
            settings=settings, cache=cache, check_tier=request["check_tier"]
        )
        result = pipeline.run_on_sources(sources)
        stats = result.inference_stats
        executed = {
            "status": "degraded" if result.degraded else "ok",
            "result": result.canonical_payload(),
            "stats": {
                "elapsed_seconds": time.perf_counter() - started,
                "inference": stats.to_payload() if stats is not None else None,
                "cache": (
                    result.cache_stats.to_payload()
                    if result.cache_stats is not None
                    else None
                ),
                "warm_start": bool(stats is not None and stats.warm_start),
                "failures": result.failures.to_payload(),
            },
        }
        if any(member.request["include_marginals"] for member in live):
            executed["marginals"] = result.canonical_payload(
                include_marginals=True
            )["marginals"]
        return executed

    def _policy_for(self, live):
        """The group's policy: the server's, narrowed by the members'
        remaining deadline budget (the tightest member governs; members
        with different ``deadline`` knobs never share a group)."""
        deadlines = [
            member.deadline_at
            for member in live
            if member.deadline_at is not None
        ]
        if not deadlines:
            return self.policy
        remaining = max(min(deadlines) - time.perf_counter(), 0.001)
        solve_deadline = (
            min(self.policy.solve_deadline, remaining)
            if self.policy.solve_deadline
            else remaining
        )
        return replace(self.policy, solve_deadline=solve_deadline)

    def _respond_expired(self, member, group, plan, where, executed=None):
        exc = TimeoutError(
            "deadline of %.3fs exceeded %s"
            % (member.request["deadline"], where)
        )
        self.failures.record(
            "serve",
            "req:%d:%s" % (member.request_id, group.fingerprint[:12]),
            exc,
            "request-expired",
        )
        self._count_status("expired")
        with self._metrics_lock:
            self._expired += 1
        payload = {
            "status": "expired",
            "id": member.request_id,
            "op": group.request["op"],
            "error": str(exc),
            "serve": self._serve_meta(member, group, plan),
        }
        if executed is not None:
            # The work finished anyway (coalesced members shared it);
            # include the result — the *status* still says late.
            payload["result"] = executed["result"]
        self._finish(member, group.fingerprint, payload)

    def _respond_evicted(self, pending):
        """Answer one request evicted from the queue by its deadline —
        from the dispatcher thread, never a worker."""
        exc = TimeoutError(
            "deadline of %.3fs expired while queued (evicted before "
            "dispatch)" % pending.request["deadline"]
        )
        self.failures.record(
            "serve",
            "req:%d:%s" % (pending.request_id, pending.fingerprint[:12]),
            exc,
            "request-expired",
        )
        self._count_status("expired")
        with self._metrics_lock:
            self._expired += 1
        self._finish(
            pending,
            pending.fingerprint,
            {
                "status": "expired",
                "id": pending.request_id,
                "op": pending.request["op"],
                "error": str(exc),
                "serve": {
                    "request_id": pending.request_id,
                    "queue_wait_seconds": pending.queue_wait(),
                    "evicted_in_queue": True,
                    "fingerprint": pending.fingerprint,
                },
            },
        )

    def _serve_meta(self, member, group, plan):
        return {
            "request_id": member.request_id,
            "queue_wait_seconds": member.queue_wait(),
            "batch_size": plan.size,
            "batch_groups": len(plan.groups),
            "coalesced_with": len(group.members) - 1,
            "fingerprint": group.fingerprint,
        }

    def _fail_group(self, group, plan, exc):
        for member in group.members:
            self._count_status("error")
            member.connection.send(
                {
                    "status": "error",
                    "id": member.request_id,
                    "op": group.request["op"],
                    "error": "%s: %s" % (type(exc).__name__, exc),
                    "serve": self._serve_meta(member, group, plan),
                }
            )

    def _health_payload(self):
        """The overload-aware probe: everything an admission-steering
        client (or the supervisor) needs in one cheap, inline answer."""
        rss_mb = current_rss_mb()
        with self._metrics_lock:
            busy = self._busy_workers
        depth = self.queue.depth()
        return {
            "status": "ok",
            "op": "health",
            "pid": os.getpid(),
            "draining": self._stopping.is_set(),
            "uptime_seconds": time.perf_counter() - self._started_at,
            "queue_depth": depth,
            "queue_limit": self.queue.limit,
            "workers": self.workers,
            "busy_workers": busy,
            "saturated": busy >= self.workers and depth > 0,
            "rss_mb": rss_mb,
            "max_rss_mb": self.max_rss_mb,
            "overloaded": self._overloaded(rss_mb),
            "replay": self.replay.to_payload(),
        }

    # -- metrics ---------------------------------------------------------------

    def _count_status(self, status):
        with self._metrics_lock:
            self._status_counts[status] = (
                self._status_counts.get(status, 0) + 1
            )

    def _stats_payload(self):
        with self._metrics_lock:
            counts = dict(self._status_counts)
            waves = self._waves
            coalesced = self._coalesced
            expired = self._expired
            shed = self._shed
            executed = self._executed
        return {
            "status": "ok",
            "op": "stats",
            "pid": os.getpid(),
            "address": self.address,
            "uptime_seconds": time.perf_counter() - self._started_at,
            "workers": self.workers,
            "draining": self._stopping.is_set(),
            "queue": self.queue.metrics.to_payload(),
            "responses": counts,
            "waves": waves,
            "coalesced": coalesced,
            "expired": expired,
            "shed": shed,
            "executed": executed,
            "replay": self.replay.to_payload(),
            "failures": self.failures.to_payload(),
        }
