"""The serving client: synchronous framed calls to a running daemon.

Addresses are strings: a filesystem path (Unix socket) or
``tcp:HOST:PORT`` — exactly what the daemon prints as ``serving on
<address>`` at startup.  One client holds one connection and issues one
request at a time; concurrency tests simply open one client per thread.

Failure semantics (DESIGN §15).  With ``retries=0`` (the default) a
call is one attempt: any connection failure closes and discards the
socket — the next call reconnects instead of deadlocking on a desynced
frame stream — and raises :class:`ServeError`.  With ``retries > 0``
the client becomes self-healing:

* every ``infer``/``check`` call carries a client-generated
  **idempotency key**, constant across its retries, so a retried
  request after a connection drop is *replayed* by the daemon from its
  completed-response store instead of re-executed (at-most-once);
* connection failures reconnect and retry under **capped exponential
  backoff with jitter**, bounded by both the attempt budget and an
  optional per-call overall ``call_deadline``;
* retryable refusals (``rejected``/``overloaded`` — the daemon never
  started the work) are retried the same way; execution outcomes are
  final and returned as-is;
* a **circuit breaker** counts consecutive connection-level failures;
  past ``breaker_threshold`` it opens and new calls fail fast for
  ``breaker_cooldown`` seconds, then a half-open probe call decides
  between closing it (success) and re-opening it (failure).
"""

import os
import random
import socket
import time
import uuid

from repro.serve.protocol import (
    RETRYABLE_STATUSES,
    recv_message,
    send_message,
)


class ServeError(ConnectionError):
    """The daemon is unreachable or hung up mid-request."""


class CircuitOpenError(ServeError):
    """Failing fast: too many consecutive failures, cooldown pending."""


def parse_address(address):
    """``(family, connect_arg)`` for an address string."""
    if address.startswith("tcp:"):
        host, _, port = address[len("tcp:") :].rpartition(":")
        return socket.AF_INET, (host or "127.0.0.1", int(port))
    return socket.AF_UNIX, address


def connect(address, timeout=None):
    """One connected blocking socket to the daemon."""
    family, target = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(target)
    except OSError as exc:
        sock.close()
        raise ServeError("cannot reach daemon at %s: %s" % (address, exc))
    return sock


#: Ops whose calls may be transparently retried.  ``shutdown`` is
#: excluded — retrying it against a freshly restarted daemon would turn
#: one intended stop into a kill loop.
RETRYABLE_OPS = ("infer", "check", "ping", "health", "stats")


class ServeClient:
    """One connection, synchronous request/response, optional retries.

    ``retries`` is the number of *additional* attempts after the first;
    ``0`` preserves the historical single-shot semantics.  ``timeout``
    is the per-attempt socket timeout; ``call_deadline`` (seconds,
    ``0`` = none) bounds one logical call across all of its retries and
    backoff sleeps.
    """

    def __init__(
        self,
        address,
        timeout=None,
        retries=0,
        backoff=0.05,
        backoff_max=2.0,
        call_deadline=0.0,
        breaker_threshold=8,
        breaker_cooldown=1.0,
    ):
        self.address = address
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.001, float(backoff))
        self.backoff_max = max(self.backoff, float(backoff_max))
        self.call_deadline = max(0.0, float(call_deadline))
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_cooldown = max(0.0, float(breaker_cooldown))
        self._sock = None
        self._idem_prefix = "%x-%s" % (os.getpid(), uuid.uuid4().hex[:12])
        self._idem_seq = 0
        self._consecutive_failures = 0
        self._breaker_open_until = 0.0
        if self.retries == 0:
            # Historical behaviour: constructing a client for an absent
            # daemon raises immediately.  A retrying client connects
            # lazily — its first call handles an absent daemon anyway.
            self._ensure_connected()

    # -- connection lifecycle --------------------------------------------------

    def _ensure_connected(self):
        if self._sock is None:
            self._sock = connect(self.address, timeout=self.timeout)
        return self._sock

    def _discard_connection(self):
        """Drop a connection that can no longer be trusted.

        After a send/recv error the frame stream is in an undefined
        half-sent state; reusing it would desync every later call.
        Closing and nulling makes the next call reconnect cleanly."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self):
        return self._sock is not None

    def close(self):
        self._discard_connection()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- the call path ---------------------------------------------------------

    def call(self, request):
        """Send one request dict, block for its response.

        Single attempt when ``retries == 0``; otherwise the retrying
        path (idempotency key, backoff, deadline, breaker)."""
        if self.retries == 0 or request.get("op") not in RETRYABLE_OPS:
            return self._call_once(request)
        return self._call_retrying(request)

    def _call_once(self, request):
        try:
            sock = self._ensure_connected()
            send_message(sock, request)
            return recv_message(sock)
        except (OSError, ConnectionError) as exc:
            self._discard_connection()
            if isinstance(exc, ServeError):
                raise
            raise ServeError(
                "daemon at %s hung up: %s" % (self.address, exc)
            )

    def next_idempotency_key(self):
        """A fresh key, unique to this client instance."""
        self._idem_seq += 1
        return "%s-%d" % (self._idem_prefix, self._idem_seq)

    def _call_retrying(self, request):
        request = dict(request)
        if request.get("op") in ("infer", "check") and not request.get("idem"):
            # One key per *logical* call, constant across its retries —
            # this is what lets the daemon replay instead of re-execute.
            request["idem"] = self.next_idempotency_key()
        self._breaker_gate()
        deadline_at = (
            time.monotonic() + self.call_deadline
            if self.call_deadline
            else None
        )
        attempts = self.retries + 1
        last_error = None
        response = None
        for attempt in range(attempts):
            if attempt:
                self._sleep_backoff(attempt, deadline_at)
            if deadline_at is not None and time.monotonic() >= deadline_at:
                break
            try:
                response = self._call_once(request)
            except ServeError as exc:
                last_error = exc
                self._record_failure()
                continue
            self._record_success()
            if response.get("status") in RETRYABLE_STATUSES:
                # The daemon is alive but refused admission; nothing
                # executed, so backing off and re-asking is safe.
                last_error = None
                continue
            return response
        if response is not None and last_error is None:
            # Retries exhausted on retryable refusals: surface the
            # daemon's last word rather than inventing an exception.
            return response
        if deadline_at is not None and time.monotonic() >= deadline_at:
            raise ServeError(
                "call deadline of %.3fs exceeded after %d attempt(s) "
                "against %s (%s)"
                % (
                    self.call_deadline,
                    attempt + 1,
                    self.address,
                    last_error,
                )
            )
        raise ServeError(
            "daemon at %s unreachable after %d attempt(s): %s"
            % (self.address, attempts, last_error)
        )

    def _sleep_backoff(self, attempt, deadline_at):
        """Capped exponential backoff with decorrelating jitter."""
        base = min(self.backoff * (2.0 ** (attempt - 1)), self.backoff_max)
        delay = base * (0.5 + random.random() * 0.5)
        if deadline_at is not None:
            delay = min(delay, max(deadline_at - time.monotonic(), 0.0))
        if delay > 0:
            time.sleep(delay)

    # -- circuit breaker -------------------------------------------------------

    @property
    def breaker_open(self):
        return (
            self._consecutive_failures >= self.breaker_threshold
            and time.monotonic() < self._breaker_open_until
        )

    def _breaker_gate(self):
        """Fail fast while the breaker is open; once the cooldown has
        passed the call proceeds as the half-open probe (success closes
        the breaker, failure re-opens it)."""
        if self.breaker_open:
            raise CircuitOpenError(
                "circuit breaker open for %s after %d consecutive "
                "failures (retry after cooldown)"
                % (self.address, self._consecutive_failures)
            )

    def _record_failure(self):
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.breaker_threshold:
            self._breaker_open_until = (
                time.monotonic() + self.breaker_cooldown
            )

    def _record_success(self):
        self._consecutive_failures = 0
        self._breaker_open_until = 0.0

    # -- op helpers ------------------------------------------------------------

    def ping(self):
        return self.call({"op": "ping"})

    def health(self):
        return self.call({"op": "health"})

    def stats(self):
        return self.call({"op": "stats"})

    def shutdown(self):
        return self.call({"op": "shutdown"})

    def infer(self, sources, **knobs):
        request = {"op": "infer", "sources": list(sources)}
        request.update(knobs)
        return self.call(request)

    def check(self, sources, **knobs):
        request = {"op": "check", "sources": list(sources)}
        request.update(knobs)
        return self.call(request)


def wait_for_server(
    address, timeout=10.0, interval=0.05, connect_timeout=0.5
):
    """Poll until the daemon answers a ping (daemon boot in tests/CLI).

    ``connect_timeout`` bounds each probe attempt on its own — it is
    deliberately *not* derived from the polling ``interval``, which only
    paces the probes.  Returns the ping response; raises
    :class:`ServeError` naming the attempts made on timeout.
    """
    deadline = time.monotonic() + timeout
    last_error = None
    attempts = 0
    while time.monotonic() < deadline:
        attempts += 1
        try:
            with ServeClient(address, timeout=connect_timeout) as client:
                return client.ping()
        except (ServeError, OSError) as exc:
            last_error = exc
            time.sleep(interval)
    raise ServeError(
        "no daemon at %s after %.1fs and %d attempt(s) (%s)"
        % (address, timeout, attempts, last_error)
    )
