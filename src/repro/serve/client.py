"""The serving client: synchronous framed calls to a running daemon.

Addresses are strings: a filesystem path (Unix socket) or
``tcp:HOST:PORT`` — exactly what the daemon prints as ``serving on
<address>`` at startup.  One client holds one connection and issues one
request at a time; concurrency tests simply open one client per thread.
"""

import socket
import time

from repro.serve.protocol import recv_message, send_message


class ServeError(ConnectionError):
    """The daemon is unreachable or hung up mid-request."""


def parse_address(address):
    """``(family, connect_arg)`` for an address string."""
    if address.startswith("tcp:"):
        host, _, port = address[len("tcp:") :].rpartition(":")
        return socket.AF_INET, (host or "127.0.0.1", int(port))
    return socket.AF_UNIX, address


def connect(address, timeout=None):
    """One connected blocking socket to the daemon."""
    family, target = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    try:
        sock.connect(target)
    except OSError as exc:
        sock.close()
        raise ServeError("cannot reach daemon at %s: %s" % (address, exc))
    return sock


class ServeClient:
    """One connection, synchronous request/response."""

    def __init__(self, address, timeout=None):
        self.address = address
        self._sock = connect(address, timeout=timeout)

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def call(self, request):
        """Send one raw request dict, block for its response."""
        try:
            send_message(self._sock, request)
            return recv_message(self._sock)
        except (OSError, ConnectionError) as exc:
            raise ServeError(
                "daemon at %s hung up: %s" % (self.address, exc)
            )

    # -- op helpers ------------------------------------------------------------

    def ping(self):
        return self.call({"op": "ping"})

    def stats(self):
        return self.call({"op": "stats"})

    def shutdown(self):
        return self.call({"op": "shutdown"})

    def infer(self, sources, **knobs):
        request = {"op": "infer", "sources": list(sources)}
        request.update(knobs)
        return self.call(request)

    def check(self, sources, **knobs):
        request = {"op": "check", "sources": list(sources)}
        request.update(knobs)
        return self.call(request)


def wait_for_server(address, timeout=10.0, interval=0.05):
    """Poll until the daemon answers a ping (daemon boot in tests/CLI).

    Returns the ping response; raises :class:`ServeError` on timeout.
    """
    deadline = time.monotonic() + timeout
    last_error = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(address, timeout=interval * 10) as client:
                return client.ping()
        except (ServeError, OSError) as exc:
            last_error = exc
            time.sleep(interval)
    raise ServeError(
        "no daemon at %s after %.1fs (%s)" % (address, timeout, last_error)
    )
