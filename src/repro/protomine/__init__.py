"""Static protocol mining — the paper's §5 future-work combination.

ANEK infers *aliasing + state* specifications against a protocol that
API developers already wrote down.  The related work the paper plans to
combine with (Whaley et al., Alur et al., Perracotta, MAPO) goes the
other way: it *mines* the protocol itself from how clients call the API.
This package implements a static miner in that family:

* ``traces`` — extracts per-object call sequences from client CFGs
  (loop-bounded path enumeration over the must-alias witnesses);
* ``mining`` — aggregates the sequences into a usage model: a
  may-follow relation, guard detection (methods whose boolean result is
  branched on before another call — ``hasNext``/``ready`` style state
  tests), and a candidate ``@States`` hierarchy with spec skeletons.

On the iterator corpus the miner recovers the Figure 1 protocol: it
identifies ``hasNext`` as the state test guarding ``next`` and proposes
the HASNEXT/END refinements of ALIVE.
"""

from repro.protomine.install import install_protocol, strip_protocol
from repro.protomine.mining import MinedProtocol, mine_protocol
from repro.protomine.traces import CallEvent, extract_traces

__all__ = [
    "CallEvent",
    "extract_traces",
    "MinedProtocol",
    "mine_protocol",
    "install_protocol",
    "strip_protocol",
]
