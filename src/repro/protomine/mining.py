"""Protocol mining from static traces.

Aggregates :class:`repro.protomine.traces.ObjectTrace` sequences into a
usage model and proposes a typestate protocol:

* **may-follow** — which call pairs occur adjacently;
* **guards** — for each method m, how often it executes under a
  ``(test, outcome)`` guard; a method that is (almost) always guarded by
  ``test == true`` is protocol-dependent on that test;
* **state tests** — methods whose boolean result is branched on and
  whose outcomes discriminate subsequent behaviour;
* a candidate ``@States`` declaration and spec skeletons: the guard
  test's true/false outcomes become substates of ALIVE, the guarded
  method requires the true-state, and the test method gets
  ``@TrueIndicates``/``@FalseIndicates``.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.permissions.spec import MethodSpec, PermClause
from repro.permissions.states import StateSpace
from repro.protomine.traces import extract_traces

#: A method counts as guarded when at least this fraction of its
#: occurrences sit under the same (test, True) guard.  Deliberately below
#: 1.0: real programs contain buggy unguarded calls (the corpus's three
#: false-positive sites), and mining from imperfect traces is the whole
#: point of the statistical approach (cf. Perracotta).
GUARD_THRESHOLD = 0.75


@dataclass
class MinedProtocol:
    """The mining result for one protocol class."""

    class_name: str = ""
    trace_count: int = 0
    event_count: int = 0
    #: (a, b) -> adjacency count (call b directly after call a).
    follows: Counter = field(default_factory=Counter)
    #: first calls on freshly created objects.
    initial: Counter = field(default_factory=Counter)
    #: method -> Counter of guards ((test, outcome) or None).
    guard_profile: Dict[str, Counter] = field(default_factory=dict)
    #: detected state tests: test method -> (true state, false state).
    state_tests: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: guarded method -> (test method, required state).
    guarded_methods: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    # -- queries ----------------------------------------------------------------

    def methods(self):
        names = set(self.guard_profile)
        for a, b in self.follows:
            names.add(a)
            names.add(b)
        return sorted(names)

    def may_follow(self, a, b):
        return self.follows.get((a, b), 0) > 0

    def proposed_state_space(self):
        """A candidate ``@States`` hierarchy from the detected tests."""
        declaration = ", ".join(
            "%s, %s" % states for states in self.state_tests.values()
        )
        return StateSpace.parse(self.class_name, declaration)

    def proposed_states_declaration(self):
        return ", ".join(
            "%s, %s" % states for states in self.state_tests.values()
        )

    def proposed_specs(self):
        """Spec skeletons: state clauses only (ANEK fills in the kinds)."""
        specs = {}
        for test, (true_state, false_state) in self.state_tests.items():
            specs[test] = MethodSpec(
                requires=[PermClause("pure", "this", "ALIVE")],
                ensures=[PermClause("pure", "this", "ALIVE")],
                true_indicates=true_state,
                false_indicates=false_state,
            )
        for method, (test, state) in self.guarded_methods.items():
            specs[method] = MethodSpec(
                requires=[PermClause("full", "this", state)],
                ensures=[PermClause("full", "this", "ALIVE")],
            )
        return specs

    def describe(self):
        lines = ["Mined protocol for %s" % self.class_name]
        lines.append(
            "  %d traces, %d events" % (self.trace_count, self.event_count)
        )
        if self.state_tests:
            for test, (true_state, false_state) in sorted(
                self.state_tests.items()
            ):
                lines.append(
                    "  state test %s(): true -> %s, false -> %s"
                    % (test, true_state, false_state)
                )
        for method, (test, state) in sorted(self.guarded_methods.items()):
            lines.append(
                "  %s() requires %s (guarded by %s() == true)"
                % (method, state, test)
            )
        lines.append("  may-follow:")
        for (a, b), count in sorted(self.follows.items()):
            lines.append("    %s -> %s  (%d)" % (a, b, count))
        return "\n".join(lines)


def _state_name(method, outcome):
    """HASNEXT-style state names from test methods and outcomes."""
    base = method.upper()
    for prefix in ("HAS", "IS", "CAN"):
        if base.startswith(prefix):
            base = base[len(prefix):]
            break
    base = base or method.upper()
    return ("HAS%s" % base) if outcome else ("NO%s" % base)


def mine_protocol(program, class_name, methods=None):
    """Mine the usage protocol of one API class from its clients."""
    traces = extract_traces(program, {class_name}, methods=methods)
    mined = MinedProtocol(class_name=class_name, trace_count=len(traces))
    for trace in traces:
        previous = None
        for event in trace.events:
            mined.event_count += 1
            profile = mined.guard_profile.setdefault(
                event.method_name, Counter()
            )
            profile[event.guard] += 1
            if previous is None:
                if trace.origin in ("new", "result"):
                    mined.initial[event.method_name] += 1
            else:
                mined.follows[(previous, event.method_name)] += 1
            previous = event.method_name
    _detect_state_tests(mined)
    return mined


def _detect_state_tests(mined):
    """Promote dominant (test, True) guards into state-test structure."""
    for method, profile in mined.guard_profile.items():
        total = sum(profile.values())
        if total == 0:
            continue
        for guard, count in profile.items():
            if guard is None:
                continue
            test, outcome = guard
            if test == method or not outcome:
                continue
            if count / total >= GUARD_THRESHOLD:
                true_state = _state_name(test, True)
                false_state = _state_name(test, False)
                mined.state_tests[test] = (true_state, false_state)
                mined.guarded_methods[method] = (test, true_state)
