"""Installing a mined protocol onto an API class.

Completes the mining → checking loop: the mined ``@States`` hierarchy
and spec skeletons are written onto the API class's AST, after which the
ordinary ANEK + PLURAL pipeline runs against a protocol no human wrote.
"""

from repro.core.applier import apply_spec_to_method
from repro.java import ast


def install_protocol(program, mined, replace=True):
    """Attach the mined protocol to its class; returns methods annotated.

    Installs the ``@States`` declaration on the class (and any program
    classes implementing it) and the mined state-test / guarded-method
    specs on the matching method declarations.
    """
    decl = program.lookup_class(mined.class_name)
    if decl is None:
        raise ValueError("unknown protocol class %r" % mined.class_name)
    declaration = mined.proposed_states_declaration()
    targets = [decl]
    for other in program.classes.values():
        if other is not decl and program.is_subtype(
            other.name, mined.class_name
        ):
            targets.append(other)
    for target in targets:
        if declaration:
            _set_states_annotation(target, declaration, replace=replace)
    annotated = 0
    specs = mined.proposed_specs()
    for target in targets:
        for method in target.methods:
            spec = specs.get(method.name)
            if spec is None:
                continue
            if apply_spec_to_method(method, spec, replace=replace):
                annotated += 1
    return annotated


def _set_states_annotation(decl, declaration, replace):
    existing = [a for a in decl.annotations if a.name == "States"]
    if existing and not replace:
        return
    decl.annotations = [
        a for a in decl.annotations if a.name != "States"
    ] + [ast.Annotation(name="States", arguments={"value": declaration})]


def strip_protocol(program, class_name):
    """Remove a class's protocol annotations (and its subtypes') —
    produces the 'nobody wrote a protocol' starting point for mining."""
    decl = program.lookup_class(class_name)
    if decl is None:
        raise ValueError("unknown protocol class %r" % class_name)
    targets = [decl] + [
        other
        for other in program.classes.values()
        if other is not decl and program.is_subtype(other.name, class_name)
    ]
    removed = 0
    for target in targets:
        before = len(target.annotations)
        target.annotations = [
            a for a in target.annotations if a.name != "States"
        ]
        removed += before - len(target.annotations)
        for method in target.methods:
            before = len(method.annotations)
            method.annotations = [
                a
                for a in method.annotations
                if a.name
                not in ("Perm", "Spec", "TrueIndicates", "FalseIndicates")
            ]
            removed += before - len(method.annotations)
    return removed
