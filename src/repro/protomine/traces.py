"""Static trace extraction for protocol mining.

For every client method, enumerate a bounded set of acyclic-ish CFG
paths (each back edge taken at most once per path) and project, per
tracked object (must-alias witness), the sequence of API calls made on
it.  Guard context is recorded: when a path passes through the true or
false edge of a branch whose condition came from a call on the same
object, subsequent events carry that (method, outcome) guard — this is
what lets the miner discover ``hasNext() == true`` preceding ``next()``.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis import ir
from repro.analysis.alias import analyze_aliases
from repro.analysis.cfg import build_cfg
from repro.analysis.dominance import build_dominator_tree

#: Per-method path budget; keeps enumeration linear-ish in practice.
MAX_PATHS_PER_METHOD = 64


@dataclass
class CallEvent:
    """One API call on a tracked object along one path."""

    receiver_class: str = ""
    method_name: str = ""
    #: the (method, outcome) guard active when the call happened, e.g.
    #: ("hasNext", True); None when unguarded.
    guard: Optional[Tuple[str, bool]] = None
    fresh: bool = False  # first event after the object's creation


@dataclass
class ObjectTrace:
    """The event sequence for one object along one path."""

    class_name: str = ""
    events: List[CallEvent] = field(default_factory=list)
    origin: str = ""  # "result" | "param" | "new" | "field"


class _PathWalker:
    """Depth-first path enumeration with per-path back-edge budget."""

    def __init__(self, cfg, alias, program, target_classes):
        self.cfg = cfg
        self.alias = alias
        self.program = program
        self.target_classes = target_classes
        self.traces = []
        self.paths = 0
        # Proper back edges from dominance (head dominates tail), not the
        # RPO-order approximation; non-loop "retreating" edges on
        # irreducible shapes are treated the same way (budgeted).
        dominators = build_dominator_tree(cfg)
        self._back_edges = {
            (tail.node_id, head.node_id)
            for tail, head in dominators.back_edges()
        }
        self._rpo_index = {
            node.node_id: position
            for position, node in enumerate(cfg.reverse_postorder())
        }

    def _is_back_edge(self, src, dst):
        if (src.node_id, dst.node_id) in self._back_edges:
            return True
        # Retreating edges (rare, irreducible graphs): budget them too.
        return self._rpo_index.get(dst.node_id, 0) <= self._rpo_index.get(
            src.node_id, 0
        )

    def walk(self):
        # Iterative DFS (deep straight-line methods overflow recursion).
        stack = [(self.cfg.entry, _PathState(), frozenset())]
        while stack:
            if self.paths >= MAX_PATHS_PER_METHOD:
                break
            node, state, taken_back_edges = stack.pop()
            # Run forward through straight-line stretches without forking;
            # stop at branches, joins-of-interest, and back edges (those
            # need the budget bookkeeping below).
            while True:
                state = self._apply(node, state)
                if len(node.succs) != 1 or node.kind == "branch":
                    break
                succ = node.succs[0][0]
                if self._is_back_edge(node, succ):
                    break
                node = succ
            successors = node.succs
            if not successors:
                self._finish(state)
                continue
            for succ, label in successors:
                if self._is_back_edge(node, succ):
                    key = (node.node_id, succ.node_id)
                    if key in taken_back_edges:
                        continue
                    next_taken = taken_back_edges | {key}
                else:
                    next_taken = taken_back_edges
                branch_state = state
                if node.kind == "branch" and label in ("true", "false"):
                    branch_state = state.with_guard(
                        node.cond_var, label == "true"
                    )
                stack.append((succ, branch_state.fork(), next_taken))
        return self.traces

    def _finish(self, state):
        self.paths += 1
        for trace in state.objects.values():
            if trace.events:
                self.traces.append(trace)

    def _apply(self, node, state):
        if node.kind != "instr":
            return state
        instr = node.instr
        if not isinstance(instr, ir.Assign):
            return state
        source = instr.source
        state = state.fork()
        if isinstance(source, ir.NewObj):
            witness = self.alias.witness_after(node, instr.target)
            if source.class_name in self.target_classes:
                state.objects[witness] = ObjectTrace(
                    class_name=source.class_name, origin="new"
                )
        elif isinstance(source, ir.Call):
            self._apply_call(node, instr, source, state)
        return state

    def _apply_call(self, node, instr, call, state):
        receiver_class = call.static_class
        witness = (
            self.alias.witness_before(node, call.receiver)
            if call.receiver
            else None
        )
        resolved_class = self._resolve_protocol_class(receiver_class)
        if resolved_class is not None and witness is not None:
            trace = state.objects.get(witness)
            if trace is None:
                trace = ObjectTrace(class_name=resolved_class, origin="param")
                state.objects[witness] = trace
            guard = state.guards.get(witness)
            trace.events.append(
                CallEvent(
                    receiver_class=resolved_class,
                    method_name=call.method_name,
                    guard=guard,
                    fresh=not trace.events and trace.origin != "param",
                )
            )
            # The call's boolean result may become a guard on this object.
            state.tests[instr.target] = (witness, call.method_name)
        # Track protocol-class results (e.g. iterator()).
        result_class = self._result_class(call)
        if result_class in self.target_classes:
            result_witness = self.alias.witness_after(node, instr.target)
            state.objects[result_witness] = ObjectTrace(
                class_name=result_class, origin="result"
            )

    def _resolve_protocol_class(self, class_name):
        if class_name is None:
            return None
        for target in self.target_classes:
            if class_name == target or self.program.is_subtype(
                class_name, target
            ):
                return target
        return None

    def _result_class(self, call):
        if call.static_class is None:
            return None
        callee = self.program.resolve_method(
            call.static_class, call.method_name, len(call.args)
        )
        if callee is None or callee.method_decl.return_type is None:
            return None
        return callee.method_decl.return_type.name


class _PathState:
    """Per-path mining state (copy-on-write via fork)."""

    __slots__ = ("objects", "guards", "tests")

    def __init__(self):
        self.objects = {}  # witness -> ObjectTrace
        self.guards = {}  # witness -> (method, bool)
        self.tests = {}  # boolean var -> (witness, method)

    def fork(self):
        clone = _PathState()
        clone.objects = {
            key: ObjectTrace(
                class_name=value.class_name,
                events=list(value.events),
                origin=value.origin,
            )
            for key, value in self.objects.items()
        }
        clone.guards = dict(self.guards)
        clone.tests = dict(self.tests)
        return clone

    def with_guard(self, cond_var, outcome):
        clone = self.fork()
        test = clone.tests.get(cond_var)
        if test is not None:
            witness, method = test
            clone.guards[witness] = (method, outcome)
        return clone


def extract_traces(program, target_classes, methods=None):
    """Extract object traces for the given protocol classes.

    ``target_classes`` are the API classes whose protocols are being
    mined (e.g. ``{"Iterator"}``).  Returns a list of
    :class:`ObjectTrace`.
    """
    target_classes = set(target_classes)
    traces = []
    for method_ref in methods or program.methods_with_bodies():
        if method_ref.class_decl.name in target_classes:
            continue  # mine clients, not the API implementation
        cfg = build_cfg(
            program, method_ref.class_decl, method_ref.method_decl
        )
        alias = analyze_aliases(
            cfg, [p.name for p in method_ref.method_decl.params]
        )
        walker = _PathWalker(cfg, alias, program, target_classes)
        traces.extend(walker.walk())
    return traces
