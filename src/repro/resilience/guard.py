"""The per-solve guard: deadlines, divergence detection, retry ladder.

One method solve under the guard walks the policy's degradation ladder::

    attempt 0   configured engine, configured damping
    retry 1..N  same engine, escalating damping (oscillation killer)
    fallback    loopy reference engine (when compiled was configured)
    floor       prior-only marginals (never fails)

An attempt *fails* when it raises, exceeds the policy deadline, or
produces non-finite (NaN/inf) or engine-flagged diverged marginals.  On
the zero-failure path the guard adds only a finiteness scan over the
final marginals — the solve itself runs with exactly the configured
parameters, so resilient and non-resilient runs are bit-identical.

The guard emits at most one :class:`FailureRecord` per solve: either
``recovered`` (a retry produced clean marginals — results unchanged) or
``degraded-prior-only`` (the floor was reached).
"""

import time

import numpy as np

from repro.factorgraph.sumproduct import SumProductResult
from repro.resilience.faults import maybe_fault
from repro.resilience.report import FailureRecord


def result_is_finite(result):
    """True when every marginal is finite and no engine flagged NaN/inf."""
    if getattr(result, "diverged", False):
        return False
    for vector in result.marginals.values():
        if not np.isfinite(vector).all():
            return False
    return True


def prior_only_result(graph):
    """The conservative floor: every variable's marginal is its prior.

    Deterministic, engine-free, and never fails — boundary marginals
    extracted from it threshold into the method's prior-implied spec
    (usually the empty ⊤-permission spec for unannotated methods).
    """
    marginals = {}
    for name, variable in graph.variables.items():
        prior = np.asarray(variable.prior, dtype=float)
        total = prior.sum()
        if total <= 0 or not np.isfinite(total):
            marginals[name] = np.full(
                variable.cardinality, 1.0 / variable.cardinality
            )
        else:
            marginals[name] = prior / total
    return SumProductResult(marginals, 0, False, float("inf"))


def _poison(result):
    """Inject NaNs into a result (the ``nan`` fault kind): exercises the
    same detection path a genuinely diverging sweep would take."""
    for name in result.marginals:
        result.marginals[name] = np.full_like(
            result.marginals[name], np.nan
        )
        break
    result.diverged = True
    return result


def _attempt_ladder(settings, policy, engine):
    """[(engine, damping), ...] — the full retry/fallback schedule.

    The first retry reruns with *identical* parameters: a transient
    failure (an injected raise, a killed sweep) then recovers with
    bit-identical marginals.  Only later retries escalate damping, for
    genuinely oscillating/diverging solves where sameness is lost anyway.
    """
    ladder = [(engine, settings.bp_damping)]
    if policy.solve_retries >= 1:
        ladder.append((engine, settings.bp_damping))
    for attempt in range(2, policy.solve_retries + 1):
        ladder.append(
            (
                engine,
                policy.retry_damping_for(attempt - 1, settings.bp_damping),
            )
        )
    if engine == "compiled":
        ladder.append(
            ("loopy", max(settings.bp_damping, policy.retry_damping))
        )
    return ladder


def guarded_solve(model, settings, policy, site_key, engine):
    """Run one method solve under the policy's degradation ladder.

    Returns ``(result, record, degraded)`` where ``record`` is None on
    the clean path, a ``recovered`` record when a retry saved the solve,
    or a ``degraded-prior-only`` record when the floor was reached.
    """
    if policy is None or not policy.enabled:
        return (
            model.solve(
                max_iters=settings.bp_iters,
                damping=settings.bp_damping,
                tolerance=settings.bp_tolerance,
                engine=engine,
            ),
            None,
            False,
        )
    reasons = []
    ladder = _attempt_ladder(settings, policy, engine)
    for attempt, (attempt_engine, damping) in enumerate(ladder):
        start = time.perf_counter()
        try:
            action = maybe_fault("solve", site_key)
            result = model.solve(
                max_iters=settings.bp_iters,
                damping=damping,
                tolerance=settings.bp_tolerance,
                engine=attempt_engine,
            )
            if action == "nan":
                result = _poison(result)
        except Exception as exc:
            reasons.append(
                "%s[%s]: %s: %s"
                % (attempt_engine, damping, type(exc).__name__, exc)
            )
            continue
        elapsed = time.perf_counter() - start
        if policy.solve_deadline and elapsed > policy.solve_deadline:
            reasons.append(
                "%s[%s]: deadline (%.3fs > %.3fs)"
                % (attempt_engine, damping, elapsed, policy.solve_deadline)
            )
            continue
        if not result_is_finite(result):
            reasons.append(
                "%s[%s]: diverged (non-finite marginals)"
                % (attempt_engine, damping)
            )
            continue
        if attempt == 0:
            return result, None, False
        record = FailureRecord(
            stage="solve",
            key=site_key,
            error=reasons[0].split(": ", 1)[-1] if reasons else "unknown",
            message="; ".join(reasons),
            disposition="recovered",
            retries=attempt,
        )
        return result, record, False
    record = FailureRecord(
        stage="solve",
        key=site_key,
        error=reasons[0].split(": ", 1)[-1] if reasons else "unknown",
        message="; ".join(reasons),
        disposition="degraded-prior-only",
        retries=max(len(ladder) - 1, 0),
    )
    return prior_only_result(model.graph), record, True
