"""The resilience policy: every knob of the degradation ladder.

A frozen dataclass of primitives so it pickles across process-pool
boundaries inside :class:`repro.core.infer.InferenceSettings` and
fingerprints deterministically.  The policy deliberately does **not**
participate in cache config digests: with zero faults a resilient run is
bit-identical to a non-resilient one, so artifacts are shared across
policy settings.
"""

from dataclasses import dataclass, field

from repro.resilience.limits import ResourceLimits


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the fault-tolerance layer.

    The degradation ladder for one method solve::

        attempt 0   configured engine, configured damping
        retry 1..N  same engine, damping escalated toward 0.9
        fallback    loopy reference engine (when compiled was configured)
        floor       prior-only marginals (never fails, fully conservative)

    Worker recovery: a dead/hung process pool is rebuilt and its methods
    requeued up to ``worker_retries`` times; after that the remaining
    methods of the run execute in-parent on the serial path.
    """

    #: Master switch.  Disabled = legacy behaviour: any exception aborts
    #: the whole run (kept for debugging and bisection).
    enabled: bool = True
    #: Wall-clock budget for one solve attempt, in seconds (0 = none).
    #: Checked *after* the sweep — BP runs a bounded number of
    #: iterations, so a blown budget means the retry ladder shrinks the
    #: next attempt rather than an in-flight preemption.
    solve_deadline: float = 0.0
    #: Same-engine re-solves with escalated damping before the engine
    #: fallback step.
    solve_retries: int = 2
    #: Damping floor for retry attempts; each retry moves a third of the
    #: remaining distance from this floor toward 0.9.
    retry_damping: float = 0.5
    #: Process-pool rebuilds tolerated before degrading the remaining
    #: methods to the in-parent serial path.
    worker_retries: int = 2
    #: Per-chunk result timeout for process-pool workers, in seconds
    #: (0 = wait forever).  A timeout is treated as a hung worker: the
    #: pool is terminated, rebuilt, and the chunk requeued.
    worker_timeout: float = 0.0
    #: Resource budgets for every untrusted-input stage (lexer, parser,
    #: PFG builder, factor graph, worklist).  Checks are pure threshold
    #: comparisons; a breach quarantines the unit of work with the
    #: ``resource-limit`` disposition.  Governance applies even when the
    #: master ``enabled`` switch is off — limits protect the *process*,
    #: not just resilient runs — and is turned off only via
    #: ``ResourceLimits.disabled()``.
    limits: ResourceLimits = field(default_factory=ResourceLimits)

    def __post_init__(self):
        if self.solve_deadline < 0:
            raise ValueError("solve_deadline must be >= 0")
        if self.solve_retries < 0:
            raise ValueError("solve_retries must be >= 0")
        if not 0.0 <= self.retry_damping < 1.0:
            raise ValueError("retry_damping must be in [0, 1)")
        if self.worker_retries < 0:
            raise ValueError("worker_retries must be >= 0")
        if self.worker_timeout < 0:
            raise ValueError("worker_timeout must be >= 0")

    @classmethod
    def disabled(cls):
        """The legacy all-or-nothing behaviour."""
        return cls(enabled=False)

    def retry_damping_for(self, attempt, base_damping):
        """Damping of retry ``attempt`` (1-based): escalates from the
        policy floor toward 0.9, never below the configured damping."""
        floor = max(self.retry_damping, base_damping)
        step = (0.9 - floor) / 3.0
        return min(0.9, floor + step * (attempt - 1))
