"""Fault tolerance for the ANEK pipeline.

The paper's pitch (§3.4) is that inference is probabilistic and
*forgiving*: partial or imperfect evidence still yields usable specs.
This package makes the runtime match that story — one malformed
compilation unit, one diverging BP solve, or one dead process-pool
worker degrades only its own corner of the corpus instead of aborting
the run:

* :mod:`repro.resilience.report` — the structured failure ledger
  (:class:`FailureRecord` / :class:`FailureReport`) surfaced on
  ``PipelineResult.failure_report`` and ``--fail-report``;
* :mod:`repro.resilience.policy` — :class:`ResiliencePolicy`, the knobs
  of the degradation ladder (deadlines, retry counts, worker recovery);
* :mod:`repro.resilience.guard` — the per-solve guard: deadline and
  NaN/inf detection, retry with escalating damping, engine fallback
  ``compiled → loopy → prior-only``;
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (seeded plans that raise/delay/corrupt/kill at named stages,
  installable in-process or via the ``REPRO_FAULTS`` env hook) that
  makes every recovery path above testable in CI;
* :mod:`repro.resilience.journal` / :mod:`repro.resilience.checkpoint`
  — the durable run layer: an append-only fsync'd journal plus atomic
  compacted snapshots make a run crash-consistent (``--run-dir``), so a
  ``SIGKILL``/OOM of the whole orchestrator resumes (``--resume``)
  bit-identically; also home to graceful SIGTERM/SIGINT shutdown and
  the soft-RSS checkpoint-then-shed governor.
"""

from repro.resilience.checkpoint import (
    CheckpointManager,
    ResumeError,
    RunInterrupted,
    clear_shutdown,
    graceful_shutdown,
    request_shutdown,
    shutdown_requested,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    clear_fault_plan,
    install_fault_plan,
    maybe_fault,
)
from repro.resilience.limits import (
    ResourceLimitError,
    ResourceLimits,
    recursion_guard,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import FailureRecord, FailureReport

__all__ = [
    "FailureRecord",
    "FailureReport",
    "ResiliencePolicy",
    "ResourceLimitError",
    "ResourceLimits",
    "recursion_guard",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "install_fault_plan",
    "clear_fault_plan",
    "maybe_fault",
    "CheckpointManager",
    "RunInterrupted",
    "ResumeError",
    "graceful_shutdown",
    "shutdown_requested",
    "request_shutdown",
    "clear_shutdown",
]
