"""Crash-consistent append-only run journal.

The journal is the durable spine of a checkpointed ANEK-INFER run: every
run-layer event (run begin, checkpoint barrier, snapshot reference,
memory shed, graceful interrupt, finalization) is one *record* appended
to a single file and fsync'd before the run proceeds.  The format is
built so that a ``SIGKILL`` at **any byte** leaves a readable valid
prefix:

* the file opens with an 8-byte magic (``ANEKJRN1``);
* each record is ``b"R" + u32 payload length + u32 CRC-32 + payload``
  (little-endian), the payload being a pickled ``(kind, data)`` pair;
* records are flushed and ``os.fsync``'d as they are written, so a
  record that was acknowledged to the caller is on disk;
* the reader walks records from the start and stops at the first torn,
  truncated, or checksum-failing record — everything before it is
  trusted, everything after it is garbage to be truncated away on the
  next append (:meth:`Journal.append_to` repairs the tail).

The mid-record fault site (``maybe_fault("journal", ...)`` between the
header write and the payload write) lets the chaos harness produce a
*deliberately* torn tail record and assert the valid-prefix property.
"""

import os
import pickle
import struct
import zlib

from repro.resilience.faults import maybe_fault

#: Leading magic of every journal file; the trailing digit versions the
#: record layout.
MAGIC = b"ANEKJRN1"

#: Per-record header: tag byte + u32 payload length + u32 CRC-32.
_HEADER = struct.Struct("<II")
_TAG = b"R"
_HEADER_SIZE = 1 + _HEADER.size


class Journal:
    """An open, append-only journal file (fsync'd, checksummed records)."""

    def __init__(self, path, handle, index=0):
        self.path = path
        self._handle = handle
        #: Index of the next record to be appended (for fault sites).
        self.index = index

    # -- opening ---------------------------------------------------------------

    @classmethod
    def create(cls, path):
        """Start a fresh journal, truncating anything already there."""
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        handle = open(path, "wb")
        handle.write(MAGIC)
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, handle, index=0)

    @classmethod
    def append_to(cls, path, valid_bytes, index):
        """Re-open an existing journal for appending after a crash.

        ``valid_bytes`` (from :func:`read_journal`) is where the valid
        prefix ends; anything past it — a torn tail record — is
        truncated away first so future readers never hit it.
        """
        with open(path, "r+b") as repair:
            repair.truncate(valid_bytes)
            repair.flush()
            os.fsync(repair.fileno())
        handle = open(path, "ab")
        return cls(path, handle, index=index)

    # -- appending -------------------------------------------------------------

    def append(self, kind, data):
        """Durably append one ``(kind, data)`` record.

        The header and payload are written separately with a fault site
        in between: a ``killproc`` there leaves exactly the torn-tail
        state the reader's valid-prefix rule must absorb.  Any
        ``OSError`` (ENOSPC, a yanked volume) propagates to the caller,
        which degrades to no-persist.
        """
        payload = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
        header = _TAG + _HEADER.pack(len(payload), zlib.crc32(payload))
        self._handle.write(header)
        self._handle.flush()
        maybe_fault("journal", "record:%d:%s" % (self.index, kind))
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.index += 1

    def close(self):
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - close-time races
            pass


def read_journal(path):
    """Read the valid prefix of a journal.

    Returns ``(records, valid_bytes, total_bytes)`` where ``records`` is
    a list of ``(kind, data)`` pairs and ``valid_bytes`` is the offset
    the valid prefix ends at (the truncation point for repair).  A
    missing file reads as ``([], 0, 0)``; a file without the magic reads
    as an empty journal.  Corruption anywhere — a torn header, a short
    payload, a CRC mismatch, an unpicklable payload — ends the walk at
    the last good record instead of raising.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, 0
    if not data.startswith(MAGIC):
        return [], 0, len(data)
    records = []
    offset = len(MAGIC)
    while True:
        if offset + _HEADER_SIZE > len(data):
            break
        if data[offset : offset + 1] != _TAG:
            break
        length, crc = _HEADER.unpack(
            data[offset + 1 : offset + _HEADER_SIZE]
        )
        end = offset + _HEADER_SIZE + length
        if end > len(data):
            break
        payload = data[offset + _HEADER_SIZE : end]
        if zlib.crc32(payload) != crc:
            break
        try:
            kind, value = pickle.loads(payload)
        except Exception:
            break
        records.append((kind, value))
        offset = end
    return records, offset, len(data)
