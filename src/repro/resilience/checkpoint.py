"""Crash-consistent checkpoint/resume for ANEK-INFER runs.

A *run directory* makes an inference run durable: ``meta.json``
identifies what is running (program digest, config digest, schedule
kind), ``journal.bin`` (:mod:`repro.resilience.journal`) records every
run-layer event, and ``snapshot-NNNNNN.bin`` files hold compacted
images of the worklist state — the summary store, accumulated boundary
marginals, stats, the failure ledger, the quarantine set, and the
engine's position (worklist contents for the sequential engine,
``(round, level)`` plus the dirty sets for the level-synchronous
scheduler).  Snapshots are written atomically (mkstemp + ``os.replace``,
the :mod:`repro.cache.store` idiom) and checksummed, so a ``SIGKILL`` at
any byte leaves either the previous snapshot or the new one — never a
torn state.

**Bit-identity.**  Both engines are deterministic functions of the state
captured at a barrier: the sequential worklist of the exact pending
visits, the scheduler of the ``(round, level)`` position plus its dirty
sets (PR 1's executor-independence guarantee), and model rebuilds are
bit-identical to refreshes (PR 2).  Resuming from any barrier therefore
re-executes the lost suffix exactly as the uninterrupted run would have,
so the final marginals — and every Table downstream — agree
bit-for-bit.  Barriers sit *between* units of work (after a worklist
visit's enqueues, after a scheduler level's merge), exactly the
granularity at which PR 3's replay trajectory is defined.

The run layer also owns two operational policies:

* **graceful shutdown** — :func:`graceful_shutdown` installs
  SIGTERM/SIGINT handlers that set an event; the next barrier drains
  nothing (in-flight work already completed), writes a final snapshot,
  and raises :class:`RunInterrupted`, which the CLI maps to the
  resumable exit code.  A second signal aborts immediately.
* **resource governance** — a soft RSS budget
  (``InferenceSettings.max_rss_mb``) polled at barriers; when exceeded,
  the manager checkpoints first, then sheds the in-memory model cache
  *and* the live PFGs (both rebuild/re-hydrate bit-identically, so
  results are unaffected).  ``ENOSPC``
  or any other ``OSError`` from the journal/snapshot path disables
  persistence for the rest of the run instead of crashing it.
"""

import json
import os
import pickle
import signal
import struct
import tempfile
import threading
import warnings
import zlib
from dataclasses import asdict
from contextlib import contextmanager

from repro.resilience.faults import maybe_fault
from repro.resilience.journal import Journal, read_journal
from repro.resilience.report import FailureRecord

#: Version tag of the run-directory layout.
RUN_FORMAT = "anek-run-v1"

#: Leading magic of snapshot files (followed by u32 CRC-32 + pickle).
SNAP_MAGIC = b"ANEKSNP1"

META_NAME = "meta.json"
JOURNAL_NAME = "journal.bin"

#: Snapshots kept on disk: the newest plus one predecessor, so a crash
#: *during* compaction still finds a complete image.
KEEP_SNAPSHOTS = 2


class RunInterrupted(Exception):
    """A graceful shutdown stopped the run at a checkpoint barrier.

    Carries the run directory (to print the resume command) and the
    failure ledger as it stood at the interrupt.
    """

    def __init__(self, run_dir, failures=None):
        self.run_dir = run_dir
        self.failures = failures
        super().__init__(
            "run interrupted; resume with --resume %s" % run_dir
        )


class ResumeError(Exception):
    """The run directory cannot seed this run (missing or mismatched)."""


# ---------------------------------------------------------------------------
# Graceful-shutdown machinery
# ---------------------------------------------------------------------------

_SHUTDOWN = threading.Event()


def shutdown_requested():
    """True once SIGTERM/SIGINT (or :func:`request_shutdown`) arrived."""
    return _SHUTDOWN.is_set()


def request_shutdown():
    """Programmatic shutdown request (tests, embedding applications)."""
    _SHUTDOWN.set()


def clear_shutdown():
    _SHUTDOWN.clear()


@contextmanager
def graceful_shutdown():
    """Install SIGTERM/SIGINT → drain-and-checkpoint for the duration.

    The first signal sets the shutdown event — the run finishes its
    in-flight unit of work and stops at the next checkpoint barrier with
    a final snapshot.  A second signal raises ``KeyboardInterrupt``
    immediately (the escape hatch from a stuck drain).  Outside the main
    thread (or on platforms without signals) this is a no-op context.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):
        if _SHUTDOWN.is_set():
            raise KeyboardInterrupt
        _SHUTDOWN.set()

    previous = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, handler)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):  # pragma: no cover
                pass
        _SHUTDOWN.clear()


# ---------------------------------------------------------------------------
# Resource probes
# ---------------------------------------------------------------------------


def current_rss_mb():
    """This process's resident set size in MiB (0.0 when unknowable)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-/proc platforms
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    except Exception:  # pragma: no cover
        return 0.0
    return 0.0  # pragma: no cover


# ---------------------------------------------------------------------------
# Snapshot files
# ---------------------------------------------------------------------------


def _atomic_write(path, data):
    """mkstemp + fsync + ``os.replace``: a reader (or a resume after a
    kill) sees the old content or the new — never a torn file."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise


def write_snapshot(path, state):
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    _atomic_write(
        path, SNAP_MAGIC + struct.pack("<I", zlib.crc32(payload)) + payload
    )


def read_snapshot(path):
    """Load one snapshot; raises ``ValueError`` on any corruption."""
    with open(path, "rb") as handle:
        data = handle.read()
    if not data.startswith(SNAP_MAGIC) or len(data) < len(SNAP_MAGIC) + 4:
        raise ValueError("not a snapshot file: %s" % path)
    (crc,) = struct.unpack(
        "<I", data[len(SNAP_MAGIC) : len(SNAP_MAGIC) + 4]
    )
    payload = data[len(SNAP_MAGIC) + 4 :]
    if zlib.crc32(payload) != crc:
        raise ValueError("snapshot checksum mismatch: %s" % path)
    return pickle.loads(payload)


def _snapshot_files(run_dir):
    """Snapshot filenames, newest first."""
    try:
        names = os.listdir(run_dir)
    except OSError:
        return []
    return sorted(
        (
            name
            for name in names
            if name.startswith("snapshot-") and name.endswith(".bin")
        ),
        reverse=True,
    )


def latest_valid_snapshot(run_dir):
    """(filename, state) of the newest readable snapshot, or (None, None).

    Corrupt or truncated snapshots are skipped, so recovery always lands
    on the last *valid* image — the journal-fuzz guarantee.
    """
    for name in _snapshot_files(run_dir):
        try:
            return name, read_snapshot(os.path.join(run_dir, name))
        except Exception:
            continue
    return None, None


def _snapshot_index(name):
    try:
        return int(name[len("snapshot-") : -len(".bin")])
    except ValueError:  # pragma: no cover - foreign files
        return 0


# ---------------------------------------------------------------------------
# The checkpoint manager
# ---------------------------------------------------------------------------


class CheckpointManager:
    """Owns one run directory for one :class:`AnekInference` run.

    Built via :meth:`start` (fresh run) or :meth:`resume` (continue an
    interrupted one); the engines call :meth:`barrier` between units of
    work and :meth:`finalize` after persisting final results.
    """

    def __init__(self, run_dir, inference):
        self.run_dir = run_dir
        self.inference = inference
        self.settings = inference.settings
        self.table = inference.program.method_key_table()
        self.key_of = {ref: key for key, ref in self.table.items()}
        self.journal = None
        #: Decoded state of the newest valid snapshot (resume only).
        self.resume_state = None
        self.barrier_index = 0
        self.snapshot_index = 0
        #: True once an OSError (ENOSPC, yanked volume) disabled
        #: journal/snapshot persistence for the rest of the run.
        self.disabled = False

    # -- identity ---------------------------------------------------------------

    def _meta(self):
        from repro.cache.fingerprints import config_digest, program_digest

        inference = self.inference
        return {
            "format": RUN_FORMAT,
            "program": program_digest(inference.program),
            "config": config_digest(inference.config, self.settings),
            "schedule": inference._schedule_kind(),
            "engine": self.settings.engine,
        }

    # -- construction -----------------------------------------------------------

    @classmethod
    def start(cls, run_dir, inference):
        """Open a fresh run directory (reusing it wipes stale state)."""
        manager = cls(run_dir, inference)
        try:
            os.makedirs(run_dir, exist_ok=True)
            for name in _snapshot_files(run_dir):
                try:
                    os.remove(os.path.join(run_dir, name))
                except OSError:
                    pass
            _atomic_write(
                os.path.join(run_dir, META_NAME),
                (json.dumps(manager._meta(), indent=2, sort_keys=True) + "\n")
                .encode("utf-8"),
            )
            manager.journal = Journal.create(
                os.path.join(run_dir, JOURNAL_NAME)
            )
        except OSError as exc:
            manager._disable("start", exc)
            return manager
        manager._append("begin", {"schedule": manager._meta()["schedule"]})
        return manager

    @classmethod
    def resume(cls, run_dir, inference):
        """Continue an interrupted run from its directory.

        Validates ``meta.json`` against the *current* program/config
        (resuming under different inputs would silently change results —
        :class:`ResumeError` instead), repairs the journal's torn tail,
        and loads the newest valid snapshot.  A directory with no valid
        snapshot (killed before the first barrier) resumes as a fresh
        run — re-executing from the start *is* the correct recovery.
        """
        manager = cls(run_dir, inference)
        meta_path = os.path.join(run_dir, META_NAME)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
        except FileNotFoundError:
            raise ResumeError(
                "%s is not a run directory (no %s)" % (run_dir, META_NAME)
            )
        except (OSError, ValueError) as exc:
            raise ResumeError(
                "unreadable run metadata %s (%s: %s)"
                % (meta_path, type(exc).__name__, exc)
            )
        expected = manager._meta()
        for field in ("format", "program", "config", "schedule", "engine"):
            if stored.get(field) != expected[field]:
                raise ResumeError(
                    "run directory %s was recorded with a different %s "
                    "(stored %r, current %r); a resume must replay the "
                    "same program, config, and schedule"
                    % (run_dir, field, stored.get(field), expected[field])
                )
        journal_path = os.path.join(run_dir, JOURNAL_NAME)
        records, valid_bytes, total_bytes = read_journal(journal_path)
        name, state = latest_valid_snapshot(run_dir)
        manager.resume_state = state
        if state is not None:
            manager.barrier_index = state.get("barrier_index", 0)
        if name is not None:
            manager.snapshot_index = _snapshot_index(name)
        inference.failures.resumed_from = run_dir
        try:
            if os.path.exists(journal_path):
                manager.journal = Journal.append_to(
                    journal_path, valid_bytes, index=len(records)
                )
            else:
                manager.journal = Journal.create(journal_path)
        except OSError as exc:
            manager._disable("resume", exc)
            return manager
        manager._append(
            "resume",
            {
                "snapshot": name,
                "barrier": manager.barrier_index,
                "journal_records": len(records),
                "truncated_bytes": total_bytes - valid_bytes,
            },
        )
        return manager

    # -- degradation ------------------------------------------------------------

    def _disable(self, what, exc):
        """ENOSPC (or any persistence OSError): keep computing, stop
        persisting — the inverse of crashing a healthy analysis over a
        full disk."""
        self.disabled = True
        self.inference.stats.persist_errors += 1
        self.inference.failures.add(
            FailureRecord(
                stage="checkpoint",
                key=what,
                error=type(exc).__name__,
                message="run persistence disabled (%s); continuing without "
                "checkpoints" % exc,
                disposition="persistence-disabled",
            )
        )
        warnings.warn(
            "run directory %s is not writable (%s: %s); continuing without "
            "checkpoints" % (self.run_dir, type(exc).__name__, exc),
            RuntimeWarning,
            stacklevel=3,
        )

    def _append(self, kind, data):
        if self.disabled or self.journal is None:
            return
        try:
            self.journal.append(kind, data)
        except OSError as exc:
            self._disable("journal", exc)

    # -- snapshots --------------------------------------------------------------

    def _snapshot(self, state, reason):
        if self.disabled:
            return
        self.snapshot_index += 1
        name = "snapshot-%06d.bin" % self.snapshot_index
        state = dict(state)
        state["barrier_index"] = self.barrier_index
        try:
            write_snapshot(os.path.join(self.run_dir, name), state)
        except OSError as exc:
            self._disable("snapshot", exc)
            return
        self.inference.stats.checkpoints += 1
        self._append(
            "snapshot",
            {"file": name, "barrier": self.barrier_index, "reason": reason},
        )
        for old in _snapshot_files(self.run_dir):
            if _snapshot_index(old) <= self.snapshot_index - KEEP_SNAPSHOTS:
                try:
                    os.remove(os.path.join(self.run_dir, old))
                except OSError:
                    pass

    # -- state encoding ---------------------------------------------------------

    def encode(self, results, extra=None, complete=False):
        """The run's durable state as plain picklable data.

        MethodRefs become stable string keys and marginals plain dict
        payloads (the process-executor exchange format), so a snapshot
        written by one process re-attaches to another's ASTs.  Evidence
        site keys are canonicalized (:func:`canonical_site_key`); the
        decode side converts them back to refs for the worklist engine.
        """
        from repro.cache.fingerprints import canonical_site_key

        inference = self.inference
        key_of = self.key_of
        store_payload = inference.summaries.to_payload(key_of)
        store_payload["evidence"] = [
            (
                header,
                [
                    (canonical_site_key(site_key, key_of), part)
                    for site_key, part in bucket
                ],
            )
            for header, bucket in store_payload["evidence"]
        ]
        return {
            "complete": complete,
            "engine": inference._schedule_kind(),
            "store": store_payload,
            "results": [
                (
                    key_of[ref],
                    [
                        (slot_target, marginal.to_payload())
                        for slot_target, marginal in boundary.items()
                    ],
                )
                for ref, boundary in results.items()
                if ref in key_of
            ],
            "stats": asdict(inference.stats),
            "failures": [asdict(r) for r in inference.failures.records],
            "quarantined": [
                (key_of[ref], asdict(record))
                for ref, record in inference.quarantined.items()
                if ref in key_of
            ],
            "extra": extra or {},
        }

    # -- the barrier ------------------------------------------------------------

    def barrier(self, tag, state_fn):
        """One checkpoint barrier, called between units of work.

        ``state_fn`` is a zero-argument callable producing the
        :meth:`encode`\\ d state — invoked only when a snapshot is
        actually due, so barriers that merely journal stay cheap.  In
        order: the chaos fault site, the journal record, RSS governance
        (checkpoint *then* shed), the shutdown check (final snapshot +
        :class:`RunInterrupted`), and the periodic snapshot cadence.
        """
        self.barrier_index += 1
        maybe_fault("checkpoint", tag)
        self._append("barrier", {"index": self.barrier_index, "tag": tag})
        inference = self.inference
        stats = inference.stats
        budget = self.settings.max_rss_mb
        if budget:
            rss = current_rss_mb()
            stats.rss_peak_mb = max(stats.rss_peak_mb, rss)
            pfg_live = getattr(inference.pfgs, "live_count", lambda: 0)()
            if rss > budget and (
                inference.models.entry_count() or pfg_live
            ):
                self._snapshot(state_fn(), reason="memory")
                shed = inference.models.shed()
                # Models alone rarely cover a deep deficit: the PFGs are
                # the other resident analysis artifact, and the store
                # re-hydrates them on demand (cache hit or deterministic
                # rebuild), so evicting them is equally result-neutral.
                pfg_shed = inference.pfgs.shed() if pfg_live else 0
                stats.sheds += 1
                if pfg_shed:
                    stats.pfg_sheds += 1
                self._append(
                    "shed",
                    {"rss_mb": rss, "entries": shed, "pfgs": pfg_shed},
                )
                inference.failures.add(
                    FailureRecord(
                        stage="resource",
                        key=tag,
                        error="SoftMemoryBudget",
                        message="RSS %.0f MiB over the %d MiB budget; "
                        "checkpointed, then shed %d cached model(s) and "
                        "%d PFG(s) (rebuilds are bit-identical)"
                        % (rss, budget, shed, pfg_shed),
                        disposition="memory-shed",
                    )
                )
        if shutdown_requested():
            # Record the interrupt *before* snapshotting so the ledger
            # entry survives into the resumed run (ledger contiguity).
            stats.interrupted = True
            inference.failures.interrupted = True
            inference.failures.add(
                FailureRecord(
                    stage="checkpoint",
                    key=tag,
                    error="Interrupted",
                    message="graceful shutdown: resumable checkpoint "
                    "written to %s" % self.run_dir,
                    disposition="run-interrupted",
                )
            )
            self._snapshot(state_fn(), reason="interrupt")
            self._append("interrupt", {"tag": tag})
            raise RunInterrupted(self.run_dir, inference.failures)
        if self.barrier_index % max(self.settings.checkpoint_every, 1) == 0:
            self._snapshot(state_fn(), reason="periodic")

    def finalize(self, state_fn):
        """Write the run's complete terminal state.

        A resume of a finalized directory restores results directly; a
        kill *during* finalization falls back to the last periodic
        snapshot and deterministically re-executes the tail.
        """
        maybe_fault("checkpoint", "final")
        self._snapshot(state_fn(), reason="final")
        self._append("final", {"barrier": self.barrier_index})
        self.close()

    def close(self):
        if self.journal is not None:
            self.journal.close()
            self.journal = None
