"""Deterministic fault injection: the test harness for every recovery path.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers.  Each
instrumented pipeline site calls :func:`maybe_fault` with its stage name
and the stable key of its unit of work; a matching spec then *acts* —
raising, corrupting, delaying, or killing — exactly ``count`` times.
Matching is purely declarative (stage equality + key substring), so a
plan is deterministic: the same plan over the same corpus fires at the
same sites in the same order on every run.

Plans install two ways:

* in-process: ``install_fault_plan(plan)`` (tests, benchmarks);
* across processes: the ``REPRO_FAULTS`` environment variable carries
  the JSON encoding (``plan.to_json()``), parsed lazily by any process
  — in particular process-pool workers under the ``spawn`` start method,
  and CLI subprocess tests — that has no in-process plan installed.

Fork-started workers inherit the parent's installed plan *by value*, so
a worker-side spec with ``count=1`` would re-arm in every freshly forked
pool.  For once-only semantics across process generations (the worker
kill/recovery tests) give the spec a ``marker`` path: the first firing
atomically claims the marker file and later processes see it and stand
down.

Fault kinds:

``raise``
    Raise :class:`InjectedFault` at the site.
``nan``
    Return the token ``"nan"`` — the solve guard responds by poisoning
    the attempt's marginals with NaN, exercising divergence detection.
``delay``
    Sleep ``seconds`` then continue (deadline / hung-worker paths).
``kill``
    ``os._exit(17)`` — only honoured inside process-pool workers, where
    it simulates a segfaulting/OOM-killed worker.
``killproc``
    ``SIGKILL`` the **whole current process** — fired from orchestrator
    sites (``checkpoint``, ``journal``, ``worker-recover``) it simulates
    an OOM-kill or node preemption of the entire run, the scenario the
    crash-consistent checkpoint/resume layer exists for.
"""

import json
import os
import signal
import time
from dataclasses import asdict, dataclass

#: Environment variable carrying a JSON-encoded plan for subprocesses.
ENV_VAR = "REPRO_FAULTS"

#: Recognized fault kinds.
KINDS = ("raise", "nan", "delay", "kill", "killproc")

#: Instrumented stages (matching :data:`repro.resilience.report.STAGES`
#: where injection makes sense).  ``checkpoint`` fires at run-layer
#: barriers/finalization, ``journal`` *between* the two writes of one
#: journal record (so a kill there leaves a torn tail record),
#: ``worker-recover`` in the parent while it rebuilds a collapsed pool,
#: and ``serve`` inside the daemon's request handler (the key is
#: ``req:<id>:<work fingerprint prefix>``) — a fault there must cost
#: exactly one response, never the daemon.
#:
#: The **server-kill** sites arm whole-daemon chaos: ``serve-admit``
#: fires in the front end after a request is admitted but before any
#: response exists, and ``serve-respond`` fires after execution, after
#: the replay store, *before* the response frame is written.  A
#: ``killproc`` fault at either SIGKILLs the daemon at the two nastiest
#: points of the request lifecycle; with the supervisor restarting it
#: and idempotent client retries, both must still converge to every
#: request succeeding (``tests/test_serve_chaos.py``).
STAGES = (
    "parse",
    "pfg",
    "constraints",
    "solve",
    "worker",
    "checkpoint",
    "journal",
    "worker-recover",
    "serve",
    "serve-admit",
    "serve-respond",
    "check",
)


class InjectedFault(RuntimeError):
    """The exception raised by ``raise``-kind faults."""

    def __init__(self, stage, key):
        self.stage = stage
        self.key = key
        super().__init__("injected fault at %s: %s" % (stage, key))


@dataclass
class FaultSpec:
    """One trigger: where to fire, what to do, how often."""

    #: Stage name (exact match against the instrumentation site).
    stage: str
    #: Substring matched against the site's work-unit key (method key,
    #: ``unit:<index>`` tag).  Empty string matches everything.
    key: str
    #: One of :data:`KINDS`.
    kind: str = "raise"
    #: Firings before the spec burns out; negative = unlimited.
    count: int = 1
    #: Matching sites to *pass over* before the spec arms — ``skip=2``
    #: fires at the third matching site, giving chaos tests a way to aim
    #: a kill at a deterministic mid-run point (the N-th checkpoint
    #: barrier, the N-th journal record) without naming it.
    skip: int = 0
    #: Sleep duration for ``delay`` faults.
    seconds: float = 0.0
    #: Optional marker-file path: the fault fires only if it can claim
    #: the marker (atomic ``open(..., "x")``), making it once-only
    #: across process generations.
    marker: str = None

    def __post_init__(self):
        if self.stage not in STAGES:
            raise ValueError(
                "unknown fault stage %r (expected one of %s)"
                % (self.stage, ", ".join(STAGES))
            )
        if self.kind not in KINDS:
            raise ValueError(
                "unknown fault kind %r (expected one of %s)"
                % (self.kind, ", ".join(KINDS))
            )


class FaultPlan:
    """An ordered set of fault triggers plus a log of what fired."""

    def __init__(self, specs=()):
        self.specs = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in specs
        ]
        #: (stage, key, kind) tuples, in firing order — the view of the
        #: process that fired them (workers log into their own copies).
        self.fired = []

    # -- (de)serialization -----------------------------------------------------

    def to_json(self):
        return json.dumps([asdict(spec) for spec in self.specs])

    @classmethod
    def from_json(cls, text):
        return cls(json.loads(text))

    def env(self):
        """{ENV_VAR: json} — merge into a subprocess environment."""
        return {ENV_VAR: self.to_json()}

    # -- firing ----------------------------------------------------------------

    def fire(self, stage, key):
        """Act on the first armed spec matching this site, if any.

        Returns ``None`` (no match / ``delay`` completed) or the token
        ``"nan"``; raises :class:`InjectedFault` for ``raise`` faults;
        never returns for ``kill``.
        """
        for spec in self.specs:
            if spec.stage != stage or spec.count == 0:
                continue
            if spec.key and spec.key not in key:
                continue
            if spec.skip > 0:
                spec.skip -= 1
                continue
            if spec.marker is not None and not _claim_marker(spec.marker):
                continue
            if spec.count > 0:
                spec.count -= 1
            self.fired.append((stage, key, spec.kind))
            if spec.kind == "raise":
                raise InjectedFault(stage, key)
            if spec.kind == "delay":
                time.sleep(spec.seconds)
                return None
            if spec.kind == "kill":
                os._exit(17)
            if spec.kind == "killproc":
                os.kill(os.getpid(), signal.SIGKILL)
            return "nan"
        return None


def _claim_marker(path):
    """Atomically claim a once-only marker file."""
    try:
        with open(path, "x"):
            return True
    except FileExistsError:
        return False
    except OSError:
        # Unwritable marker location: fail open (never fire) rather
        # than fault every process generation forever.
        return False


#: The installed plan of this process (None = check the environment).
_PLAN = None


def install_fault_plan(plan):
    """Install a plan for this process; returns it for chaining."""
    global _PLAN
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan(plan)
    _PLAN = plan
    return plan


def clear_fault_plan():
    """Remove the in-process plan (the env hook re-arms if still set)."""
    global _PLAN
    _PLAN = None


def current_plan():
    """The in-process plan, falling back to the ``REPRO_FAULTS`` env."""
    global _PLAN
    if _PLAN is None:
        text = os.environ.get(ENV_VAR)
        if text:
            _PLAN = FaultPlan.from_json(text)
    return _PLAN


def maybe_fault(stage, key):
    """The instrumentation hook: a near-free no-op without a plan."""
    if _PLAN is None and ENV_VAR not in os.environ:
        return None
    plan = current_plan()
    if plan is None:
        return None
    return plan.fire(stage, key)
