"""The structured failure ledger of a resilient pipeline run.

Every isolation, retry, and degradation event is appended to a
:class:`FailureReport` as one :class:`FailureRecord` — plain, picklable
data, so records cross process-pool boundaries inside solve outcomes and
serialize to the ``--fail-report`` JSON unchanged.
"""

import json
from dataclasses import asdict, dataclass, field

#: Pipeline stages a failure can be attributed to.
STAGES = (
    "parse",
    "resolve",
    "pfg",
    "constraints",
    "solve",
    "worker",
    "cache",
    "checkpoint",
    "resource",
    "applier",
    "plural-check",
    "serve",
    "check",
)

#: What became of the failing unit of work.
DISPOSITIONS = (
    #: A compilation unit was dropped; the rest of the corpus proceeds.
    "unit-quarantined",
    #: A method was dropped from inference; it gets a conservative spec.
    "method-quarantined",
    #: A retry (escalated damping / engine fallback / fresh worker)
    #: produced a clean result — no observable degradation.
    "recovered",
    #: The solve fell all the way back to prior-only marginals.
    "degraded-prior-only",
    #: A dead/hung worker pool was rebuilt and its methods requeued.
    "worker-restarted",
    #: The process pool collapsed repeatedly; remaining methods ran
    #: in-parent on the serial path.
    "executor-degraded",
    #: A cache entry was discarded (corrupt or schema-invalid).
    "entry-quarantined",
    #: A downstream stage (applier/checker) was skipped for this run.
    "stage-skipped",
    #: The run drained in-flight work, wrote a final checkpoint, and
    #: stopped on SIGTERM/SIGINT — resumable, not a result defect.
    "run-interrupted",
    #: The soft memory budget was hit: a checkpoint was forced and the
    #: in-memory model cache shed (rebuilds are bit-identical).
    "memory-shed",
    #: The journal/snapshot (or cache) store hit ENOSPC or another
    #: OSError; the run continues without persistence.
    "persistence-disabled",
    #: A served request failed (handler crash) or missed its deadline;
    #: the requester got a failure response, the daemon kept serving.
    "request-failed",
    "request-expired",
    #: A served request was refused at admission because the daemon was
    #: over its RSS budget — nothing executed, the refusal is retryable,
    #: and shedding (instead of OOMing) is what kept the daemon up.
    "request-shed",
    #: A tier-1 (bit-vector) check fault degraded the affected methods
    #: to the full fractional-permission checker — warnings are still
    #: bit-identical to a clean run, so this is not a degradation.
    "tier-fallback",
    #: An input exceeded an explicit resource budget (nesting depth,
    #: token count, graph size, worklist visits...) and the affected
    #: unit/method/stage was quarantined instead of crashing the run.
    "resource-limit",
)


@dataclass
class FailureRecord:
    """One failure event: where, what, and how it was handled."""

    #: Pipeline stage (one of :data:`STAGES`).
    stage: str
    #: Stable identity of the failing unit of work — a method key, a
    #: ``unit:<index>`` tag, or a worker/pool description.
    key: str
    #: Exception class name (or a symbolic reason like ``deadline``).
    error: str
    #: Human-readable one-liner.
    message: str
    #: How it was handled (one of :data:`DISPOSITIONS`).
    disposition: str
    #: How many recovery attempts were spent before the disposition.
    retries: int = 0

    def format(self):
        suffix = " after %d retr%s" % (
            self.retries,
            "y" if self.retries == 1 else "ies",
        ) if self.retries else ""
        return "[%s] %s: %s (%s)%s" % (
            self.stage,
            self.key,
            self.error,
            self.disposition,
            suffix,
        )


def record_from_exception(stage, key, exc, disposition, retries=0):
    """Build a :class:`FailureRecord` from a live exception."""
    return FailureRecord(
        stage=stage,
        key=key,
        error=type(exc).__name__,
        message=str(exc),
        disposition=disposition,
        retries=retries,
    )


#: Dispositions that changed the run's output (vs. fully recovered).
_DEGRADED = frozenset(
    (
        "unit-quarantined",
        "method-quarantined",
        "degraded-prior-only",
        "executor-degraded",
        "stage-skipped",
        "resource-limit",
    )
)


@dataclass
class FailureReport:
    """The ordered ledger of every failure event in one pipeline run.

    A run resumed from a checkpoint restores the earlier segment's
    records wholesale, so the ledger is contiguous across resume
    boundaries; ``resumed_from`` names the run directory it came from
    and ``interrupted`` marks a report written by a graceful shutdown
    (the run is incomplete but resumable).
    """

    records: list = field(default_factory=list)
    #: True when this report was written by a graceful shutdown — the
    #: run stopped at a checkpoint barrier and can be resumed.
    interrupted: bool = False
    #: The run directory this run's state was restored from, or None.
    resumed_from: str = None

    def add(self, record):
        self.records.append(record)
        return record

    def extend(self, records):
        self.records.extend(records)

    def record(self, stage, key, exc, disposition, retries=0):
        """Append a record built from a live exception."""
        return self.add(
            record_from_exception(stage, key, exc, disposition, retries)
        )

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __bool__(self):
        return bool(self.records)

    @property
    def is_clean(self):
        return not self.records

    def by_stage(self):
        """{stage: count}, insertion-ordered by first occurrence."""
        counts = {}
        for record in self.records:
            counts[record.stage] = counts.get(record.stage, 0) + 1
        return counts

    def degraded(self):
        """Records whose disposition changed the run's output."""
        return [r for r in self.records if r.disposition in _DEGRADED]

    @property
    def has_degradation(self):
        """True when any output-changing disposition occurred.

        A report with only ``recovered``/``worker-restarted`` records
        describes a run whose results are bit-identical to a failure-free
        one — safe to persist and to trust downstream.
        """
        return bool(self.degraded())

    def summary_line(self):
        """A one-line human summary for the CLI."""
        suffix = ""
        if self.interrupted:
            suffix += " (interrupted — resumable)"
        if self.resumed_from:
            suffix += " (resumed from %s)" % self.resumed_from
        if self.is_clean:
            return "resilience: no failures" + suffix
        parts = [
            "%s=%d" % (stage, count)
            for stage, count in sorted(self.by_stage().items())
        ]
        kind = (
            "completed with quarantines"
            if self.has_degradation
            else "all failures recovered"
        )
        return "resilience: %d failure(s) [%s] — %s%s" % (
            len(self.records),
            " ".join(parts),
            kind,
            suffix,
        )

    def describe(self):
        lines = [self.summary_line()]
        for record in self.records:
            lines.append("  " + record.format())
        return "\n".join(lines)

    def to_payload(self):
        """A plain-data dict, ready for ``json.dumps``."""
        return {
            "clean": self.is_clean,
            "degraded": self.has_degradation,
            "interrupted": self.interrupted,
            "resumed_from": self.resumed_from,
            "by_stage": self.by_stage(),
            "failures": [asdict(record) for record in self.records],
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)
