"""Resource governance: explicit budgets on every untrusted-input stage.

The serving stack accepts programs from arbitrary clients, so every stage
that consumes untrusted input runs under an explicit budget: source size,
token count and literal length in the lexer; nesting depth in the
recursive-descent parser (plus a ``RecursionError`` backstop at each
recursive entry point); node ceilings in the PFG builder; factor/variable
ceilings on the BP factor graph; a visit ceiling on the inference
worklist; and frame/source caps on the wire protocol.

A breached budget raises :class:`ResourceLimitError` — a *typed*,
quarantinable failure that the pipeline records in the failure ledger
with the ``resource-limit`` disposition, exactly like any other
quarantine.  Nothing crashes; one hostile input costs one unit of work.

Governance is observational: every check is a pure threshold comparison
on values the stage computes anyway, so a clean-corpus run is
bit-identical with governance on or off (the differential tests in
``tests/test_resource_limits.py`` pin this down).  Defaults are set far
above anything the in-repo corpus generator produces.
"""

from contextlib import contextmanager
from dataclasses import dataclass

#: Default budgets.  Chosen so the clean corpus (and any plausible real
#: program) never trips them, while recursion bombs, memory bombs, and
#: degenerate graphs all do.
DEFAULT_MAX_SOURCE_CHARS = 4 * 1024 * 1024
DEFAULT_MAX_TOKENS = 1_000_000
DEFAULT_MAX_LITERAL_CHARS = 64 * 1024
#: One nesting level of a parenthesized expression costs ~16 interpreter
#: frames in the recursive-descent parser; 48 levels ≈ 770 frames, which
#: stays under CPython's default 1000-frame recursion limit with room
#: for ambient stack (pytest, serve worker threads).  The counter is
#: therefore what fires on recursion bombs — the ``RecursionError``
#: backstop only covers exotic stacks that start already deep.
DEFAULT_MAX_PARSE_DEPTH = 48
DEFAULT_MAX_PFG_NODES = 250_000
DEFAULT_MAX_GRAPH_FACTORS = 500_000
DEFAULT_MAX_WORKLIST_VISITS = 1_000_000


class ResourceLimitError(RuntimeError):
    """An untrusted input exceeded one of its resource budgets.

    Typed so every consumer can tell "this input is hostile or
    degenerate" apart from "this stage has a bug": the former is
    quarantined with the ``resource-limit`` disposition, the latter
    keeps its existing quarantine/abort path.
    """

    def __init__(self, limit, observed, cap, detail=""):
        #: Which budget was breached (e.g. ``parse-depth``).
        self.limit = limit
        #: The offending observed value.
        self.observed = observed
        #: The configured ceiling.
        self.cap = cap
        message = "%s limit exceeded: %s > %s" % (limit, observed, cap)
        if detail:
            message += " (%s)" % detail
        super().__init__(message)


@dataclass(frozen=True)
class ResourceLimits:
    """Budgets for every untrusted-input stage (0 = unlimited).

    A frozen dataclass of ints, nested inside
    :class:`repro.resilience.policy.ResiliencePolicy` — it pickles
    across process-pool boundaries and, like the rest of the policy,
    stays out of cache config digests (governance never changes clean
    results, so artifacts are shared across limit settings).
    """

    #: Master switch for all stage budgets.
    enabled: bool = True
    #: Source text length (characters) accepted by the lexer.
    max_source_chars: int = DEFAULT_MAX_SOURCE_CHARS
    #: Tokens produced per compilation unit.
    max_tokens: int = DEFAULT_MAX_TOKENS
    #: Characters in one string literal.
    max_literal_chars: int = DEFAULT_MAX_LITERAL_CHARS
    #: Statement/expression nesting depth in the recursive-descent
    #: parser.  Kept well under CPython's recursion limit so the breach
    #: is a deterministic typed error, not an interpreter
    #: ``RecursionError`` (which the entry-point backstop would still
    #: convert, but nondeterministically w.r.t. ambient stack depth).
    max_parse_depth: int = DEFAULT_MAX_PARSE_DEPTH
    #: Permission flow graph nodes per method.
    max_pfg_nodes: int = DEFAULT_MAX_PFG_NODES
    #: Factor + variable nodes in one method's BP factor graph.
    max_graph_factors: int = DEFAULT_MAX_GRAPH_FACTORS
    #: Total method visits of the interprocedural worklist.
    max_worklist_visits: int = DEFAULT_MAX_WORKLIST_VISITS

    def __post_init__(self):
        for name in (
            "max_source_chars",
            "max_tokens",
            "max_literal_chars",
            "max_parse_depth",
            "max_pfg_nodes",
            "max_graph_factors",
            "max_worklist_visits",
        ):
            if getattr(self, name) < 0:
                raise ValueError("%s must be >= 0" % name)

    @classmethod
    def disabled(cls):
        """No budgets anywhere (legacy behaviour, kept for bisection)."""
        return cls(enabled=False)

    def cap(self, name):
        """The effective ceiling for budget ``name`` (0 = unlimited)."""
        if not self.enabled:
            return 0
        return getattr(self, name)

    def check(self, name, limit, observed, detail=""):
        """Raise :class:`ResourceLimitError` when ``observed`` exceeds
        the ``name`` budget (no-op when disabled or unlimited)."""
        ceiling = self.cap(name)
        if ceiling and observed > ceiling:
            raise ResourceLimitError(limit, observed, ceiling, detail)


@contextmanager
def recursion_guard(limit, detail=""):
    """Convert an escaping ``RecursionError`` into a typed
    :class:`ResourceLimitError`.

    The backstop for recursive entry points whose depth is not counted
    explicitly (pretty-printer, CFG construction): the interpreter
    unwinds the deep stack first, so by the time the error reaches the
    guard there is ample headroom to raise the typed replacement.
    """
    try:
        yield
    except RecursionError as exc:
        raise ResourceLimitError(
            limit, "interpreter-recursion", "sys.recursionlimit", detail
        ) from exc
