"""Gibbs sampling — an alternative marginal estimator.

The paper (§3.4): "the specifications for the program can be easily
derived from the marginal functions of Φ_P via *sampling*."  This module
provides that route: a Gibbs sampler over the factor graph whose sample
frequencies estimate the same marginals sum-product computes.  It serves
as a second, independent implementation of SOLVE used by the test suite
to cross-validate BP, and as a fallback for graphs where loopy BP
oscillates.

The chain resamples one variable at a time from its full conditional
(the product of its prior and the adjacent factors' rows), which is
cheap because every factor touches only a few variables.
"""

import numpy as np


class GibbsResult:
    """Estimated marginals plus sampling metadata."""

    def __init__(self, marginals, samples, burn_in):
        self.marginals = marginals
        self.samples = samples
        self.burn_in = burn_in

    def marginal(self, variable_name):
        return self.marginals[variable_name]

    def probability(self, variable, value):
        return float(self.marginals[variable.name][variable.index_of(value)])

    def most_likely(self, variable):
        vector = self.marginals[variable.name]
        position = int(np.argmax(vector))
        return variable.domain[position], float(vector[position])


def _conditional(graph, variable, assignment, factors_of):
    """Unnormalized full conditional of ``variable`` given the rest."""
    weights = variable.prior.copy()
    original = assignment[variable.name]
    for factor in factors_of:
        for position, value in enumerate(variable.domain):
            assignment[variable.name] = value
            weights[position] *= factor.value(assignment)
    assignment[variable.name] = original
    total = weights.sum()
    if total <= 0:
        return np.full(len(weights), 1.0 / len(weights))
    return weights / total


def run_gibbs(graph, samples=2000, burn_in=200, seed=0, initial=None):
    """Run Gibbs sampling; returns a :class:`GibbsResult`.

    ``seed`` makes runs reproducible.  ``initial`` optionally maps
    variable names to starting values (default: prior-weighted draw).
    """
    rng = np.random.default_rng(seed)
    variables = list(graph.variables.values())
    factors_of = {
        variable.name: graph.factors_of(variable.name)
        for variable in variables
    }
    assignment = {}
    for variable in variables:
        if initial is not None and variable.name in initial:
            assignment[variable.name] = initial[variable.name]
        else:
            position = rng.choice(variable.cardinality, p=variable.prior)
            assignment[variable.name] = variable.domain[position]
    counts = {
        variable.name: np.zeros(variable.cardinality)
        for variable in variables
    }
    for step in range(burn_in + samples):
        for variable in variables:
            conditional = _conditional(
                graph, variable, assignment, factors_of[variable.name]
            )
            position = rng.choice(variable.cardinality, p=conditional)
            assignment[variable.name] = variable.domain[position]
        if step >= burn_in:
            for variable in variables:
                counts[variable.name][
                    variable.index_of(assignment[variable.name])
                ] += 1
    marginals = {
        name: vector / vector.sum() for name, vector in counts.items()
    }
    return GibbsResult(marginals, samples, burn_in)
