"""Finite-domain random variables.

The paper models each PFG node with five Bernoulli permission variables
and one Bernoulli per abstract state.  We use the equivalent categorical
encoding — one variable per node whose domain is the permission kinds
(plus ``none``), and one whose domain is the abstract states — which keeps
factor tables small while exposing the same per-value marginals
(``P(X_kind = k)`` equals the Bernoulli mean of the paper's ``X^n_k``).
"""

import numpy as np


class Variable:
    """A random variable over a finite, ordered domain."""

    __slots__ = ("name", "domain", "_index", "prior")

    def __init__(self, name, domain, prior=None):
        if len(domain) < 2:
            raise ValueError("variable %r needs a domain of size >= 2" % name)
        self.name = name
        self.domain = tuple(domain)
        self._index = {value: position for position, value in enumerate(self.domain)}
        if prior is None:
            prior = np.full(len(self.domain), 1.0 / len(self.domain))
        else:
            prior = np.asarray(prior, dtype=float)
            if prior.shape != (len(self.domain),):
                raise ValueError(
                    "prior for %r has wrong shape %s" % (name, prior.shape)
                )
            total = prior.sum()
            if total <= 0:
                raise ValueError("prior for %r must have positive mass" % name)
            prior = prior / total
        self.prior = prior

    def index_of(self, value):
        return self._index[value]

    @property
    def cardinality(self):
        return len(self.domain)

    def uniform(self):
        return np.full(self.cardinality, 1.0 / self.cardinality)

    def __repr__(self):
        return "Variable(%s, |domain|=%d)" % (self.name, len(self.domain))


def bernoulli_domain():
    """The classic two-valued domain (False, True)."""
    return (False, True)


def make_prior(domain, weights):
    """Build a normalized prior vector from a value->weight mapping.

    Unmentioned values get weight 0; useful for "B(0.9) on full and 0.1 on
    the rest"-style priors from the paper §3.2.
    """
    vector = np.zeros(len(domain))
    index = {value: position for position, value in enumerate(domain)}
    for value, weight in weights.items():
        vector[index[value]] = weight
    total = vector.sum()
    if total <= 0:
        raise ValueError("prior weights must have positive mass")
    return vector / total
