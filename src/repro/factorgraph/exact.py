"""Exact marginals by enumeration — the validation oracle for BP.

Only feasible for small graphs (the assignment space is the product of
domain sizes), but exactly this comparison is how the test suite
establishes that loopy BP computes trustworthy approximate marginals on
tree-shaped and modestly loopy ANEK models.
"""

import itertools

import numpy as np

DEFAULT_BUDGET = 2_000_000


class ExactResult:
    """Exact marginals plus the partition function."""

    def __init__(self, marginals, partition):
        self.marginals = marginals
        self.partition = partition

    def marginal(self, variable_name):
        return self.marginals[variable_name]

    def probability(self, variable, value):
        return float(self.marginals[variable.name][variable.index_of(value)])


def assignment_space_size(graph):
    size = 1
    for variable in graph.variables.values():
        size *= variable.cardinality
    return size


def run_exact(graph, budget=DEFAULT_BUDGET):
    """Enumerate every assignment; raises ValueError when over budget."""
    size = assignment_space_size(graph)
    if size > budget:
        raise ValueError(
            "assignment space %d exceeds enumeration budget %d" % (size, budget)
        )
    variables = list(graph.variables.values())
    accum = {
        variable.name: np.zeros(variable.cardinality) for variable in variables
    }
    partition = 0.0
    domains = [variable.domain for variable in variables]
    for combo in itertools.product(*domains):
        assignment = {
            variable.name: value for variable, value in zip(variables, combo)
        }
        weight = graph.unnormalized_joint(assignment)
        if weight == 0.0:
            continue
        partition += weight
        for variable, value in zip(variables, combo):
            accum[variable.name][variable.index_of(value)] += weight
    if partition <= 0.0:
        raise ValueError("all assignments have zero probability")
    marginals = {
        name: vector / partition for name, vector in accum.items()
    }
    return ExactResult(marginals, partition)


def map_assignment(graph, budget=DEFAULT_BUDGET):
    """The maximum a-posteriori full assignment, by enumeration."""
    size = assignment_space_size(graph)
    if size > budget:
        raise ValueError(
            "assignment space %d exceeds enumeration budget %d" % (size, budget)
        )
    variables = list(graph.variables.values())
    domains = [variable.domain for variable in variables]
    best = None
    best_weight = -1.0
    for combo in itertools.product(*domains):
        assignment = {
            variable.name: value for variable, value in zip(variables, combo)
        }
        weight = graph.unnormalized_joint(assignment)
        if weight > best_weight:
            best_weight = weight
            best = assignment
    return best, best_weight
