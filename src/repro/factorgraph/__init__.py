"""A factor-graph engine with loopy sum-product belief propagation.

This is the substitute for INFER.NET in the paper's pipeline: ANEK's
probabilistic constraints (paper §3.3–3.4) compile to factors over
finite-domain variables, and approximate marginals are computed with the
sum-product algorithm (Kschischang, Frey & Loeliger — the paper's own
citation [14]).

* ``variables``  — finite-domain random variables with priors
* ``factors``    — table factors and soft-predicate factors (paper Eq. 6)
* ``graph``      — the bipartite factor graph
* ``sumproduct`` — loopy BP with damping and convergence detection
* ``compiled``   — the same schedule lowered to flat-array sweeps (fast path)
* ``exact``      — brute-force marginals for small graphs (testing)
* ``compile``    — decomposition of wide constraints via auxiliary chains
"""

from repro.factorgraph.compiled import CompiledGraph, compile_graph, run_compiled
from repro.factorgraph.factors import Factor, predicate_factor, soft_equality
from repro.factorgraph.graph import FactorGraph
from repro.factorgraph.sumproduct import SumProductResult, run_sum_product
from repro.factorgraph.variables import Variable

__all__ = [
    "Variable",
    "Factor",
    "predicate_factor",
    "soft_equality",
    "FactorGraph",
    "run_sum_product",
    "SumProductResult",
    "CompiledGraph",
    "compile_graph",
    "run_compiled",
]
