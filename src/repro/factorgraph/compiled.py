"""Compiled flat-array belief propagation.

``CompiledGraph`` lowers a :class:`repro.factorgraph.graph.FactorGraph`
once into contiguous numpy storage and then runs whole BP sweeps as a
handful of vectorized array operations, replacing the per-message Python
loop of :mod:`repro.factorgraph.sumproduct` on the hot path:

* **variables** — one row per variable in a padded ``(V, D)`` prior
  matrix, where ``D`` is the largest domain cardinality; columns past a
  variable's cardinality hold zeros so row reductions ignore them;
* **edges** — every (factor, variable) incidence becomes one row in two
  padded message matrices (variable→factor and factor→variable).  The
  factor→variable rows are interleaved with prior rows in one flat
  ``(V_active + E, D)`` belief buffer laid out in CSR segments
  ``[prior, msg, msg, …]`` per variable, so a single
  ``np.multiply.reduceat`` reproduces the reference engine's
  ``((prior · m₁) · m₂) · …`` product **in the exact same association
  order** — compiled marginals match the loopy engine bit-for-bit, not
  just within tolerance;
* **factor tables** — stacked into one dense block per *shape group*
  (factors sharing the same tuple of axis cardinalities), so a group's
  entire factor→variable sweep is a single broadcasted
  multiply-and-reduce over a ``(G, d0, …, dk−1)`` block.

The sweep schedule, message normalization, damping blend, and
convergence test replicate the reference engine operation-for-operation.
Both phases of a sweep are Jacobi (writes never feed back within the
phase), which is what makes the vectorization exact.

For incremental reuse the kernel exposes ``set_prior`` and
``set_table``: a cached method model rewrites just the prior rows and
evidence-table slots that changed since the last worklist visit and
re-sweeps, with no Python-side graph reconstruction.  All storage is
plain numpy arrays and builtin containers, so a compiled kernel pickles
cleanly across process-pool boundaries.
"""

import numpy as np

from repro.factorgraph.factors import table_signature
from repro.factorgraph.sumproduct import SumProductResult


def _card_groups(cards):
    """Group row indices by cardinality: [(card, indices), …]."""
    cards = np.asarray(cards, dtype=np.intp)
    return [
        (int(card), np.flatnonzero(cards == card))
        for card in np.unique(cards)
    ]


class CompiledGraph:
    """One factor graph, lowered to flat arrays ready for BP sweeps."""

    def __init__(self, graph):
        names = list(graph.variables)
        self.names = names
        self.index_of = {name: position for position, name in enumerate(names)}
        cards = np.array(
            [graph.variables[name].cardinality for name in names], dtype=np.intp
        )
        self.cards = cards
        count = len(names)
        width = int(cards.max()) if count else 1
        self.width = width

        # Priors: padded (V, D); pad columns stay 0 so row sums are exact
        # (x + 0.0 == x bitwise, so padding never perturbs a reduction).
        self.priors = np.zeros((count, width))
        for position, name in enumerate(names):
            self.priors[position, : cards[position]] = graph.variables[name].prior

        # Edges: one per (factor, axis), sorted by (variable, factor) so a
        # variable's incident edges mirror the reference engine's
        # adjacency order (factors in insertion order).
        incidences = []  # (var index, factor index, axis)
        for factor_index, factor in enumerate(graph.factors):
            seen = set()
            for axis, variable in enumerate(factor.variables):
                if variable.name in seen:
                    raise ValueError(
                        "factor %r repeats variable %r; compiled BP requires "
                        "distinct variables per factor"
                        % (factor.name, variable.name)
                    )
                seen.add(variable.name)
                incidences.append(
                    (self.index_of[variable.name], factor_index, axis)
                )
        incidences.sort(key=lambda item: (item[0], item[1]))
        edge_count = len(incidences)
        self.edge_count = edge_count
        self.edge_var = np.array(
            [item[0] for item in incidences], dtype=np.intp
        )
        edge_of = {
            (factor_index, axis): position
            for position, (_, factor_index, axis) in enumerate(incidences)
        }

        degrees = np.zeros(count, dtype=np.intp)
        for var_index, _, _ in incidences:
            degrees[var_index] += 1
        self.degrees = degrees
        #: Variables that touch at least one factor (the rest keep their
        #: prior as marginal, exactly like the reference engine).
        self._active = np.flatnonzero(degrees > 0)
        active_degrees = degrees[self._active]

        # The flat belief buffer: per active variable one prior row
        # followed by its factor→variable message rows, so reduceat over
        # segment starts reproduces ((prior·m1)·m2)… left-to-right.
        flat_rows = int(len(self._active) + edge_count)
        self._flat = np.zeros((flat_rows, width))
        self._prior_rows = np.zeros(len(self._active), dtype=np.intp)
        self._msg_rows = np.zeros(edge_count, dtype=np.intp)
        self._flat_starts = np.zeros(len(self._active), dtype=np.intp)
        cursor = 0
        edge_cursor = 0
        for rank, var_index in enumerate(self._active):
            self._flat_starts[rank] = cursor
            self._prior_rows[rank] = cursor
            cursor += 1
            for _ in range(degrees[var_index]):
                self._msg_rows[edge_cursor] = cursor
                cursor += 1
                edge_cursor += 1
        self._active_degrees = active_degrees

        # Per-edge uniform rows / pad masks for normalization fallbacks.
        edge_cards = cards[self.edge_var]
        # Row-total index groups, one per distinct cardinality: summing a
        # padded width-D row is NOT bitwise-neutral once D >= 8 (numpy
        # switches from sequential to pairwise accumulation, so the zero
        # pads change the association order of the real entries).  Totals
        # are therefore taken over each row's exact-cardinality slice,
        # which reduces with the same pairwise schedule as the reference
        # engine's 1-D ``vector.sum()`` of the same length.
        self._edge_card_groups = _card_groups(edge_cards)
        self._var_card_groups = _card_groups(cards)
        columns = np.arange(width)
        self._edge_pad = columns[np.newaxis, :] >= edge_cards[:, np.newaxis]
        with np.errstate(divide="ignore"):
            self._edge_uniform = np.where(
                self._edge_pad, 0.0, 1.0 / edge_cards[:, np.newaxis]
            ) if edge_count else np.zeros((0, width))
            self._var_uniform = np.where(
                columns[np.newaxis, :] >= cards[:, np.newaxis],
                0.0,
                1.0 / cards[:, np.newaxis],
            ) if count else np.zeros((0, width))

        # Factor groups: stack same-shape tables into one dense block.
        grouped = {}
        self._slot_of = {}  # factor index -> (shape, position in group)
        for factor_index, factor in enumerate(graph.factors):
            shape = table_signature(factor)
            group = grouped.setdefault(
                shape, {"factors": [], "edges": [[] for _ in shape]}
            )
            self._slot_of[factor_index] = (shape, len(group["factors"]))
            group["factors"].append(factor_index)
            for axis in range(len(shape)):
                group["edges"][axis].append(edge_of[(factor_index, axis)])
        self.groups = []
        for shape, group in grouped.items():
            edge_ids = [np.array(ids, dtype=np.intp) for ids in group["edges"]]
            self.groups.append(
                {
                    "shape": shape,
                    "tables": np.stack(
                        [graph.factors[index].table for index in group["factors"]]
                    ),
                    "edges": edge_ids,
                    "rows": [self._msg_rows[ids] for ids in edge_ids],
                }
            )
        self._group_index = {
            group["shape"]: position for position, group in enumerate(self.groups)
        }
        #: Largest message delta seen in each group's last sweep.
        self.group_deltas = np.zeros(len(self.groups))

        # Variable→factor message store (padded with zeros; factor-side
        # gathers slice to each axis's true cardinality).
        self._msg_vf = np.zeros((edge_count, width))

    # -- incremental slot updates -------------------------------------------------

    def set_prior(self, name, vector):
        """Rewrite one variable's prior row (incremental model reuse)."""
        position = self.index_of[name]
        card = self.cards[position]
        self.priors[position, :card] = vector
        self.priors[position, card:] = 0.0

    def set_table(self, factor_index, table):
        """Rewrite one factor's table slot (evidence updates)."""
        shape, position = self._slot_of[factor_index]
        self.groups[self._group_index[shape]]["tables"][position] = table

    # -- queries ------------------------------------------------------------------

    @property
    def variable_count(self):
        return len(self.names)

    def describe(self):
        return "CompiledGraph(%d vars, %d edges, %d shape groups)" % (
            len(self.names),
            self.edge_count,
            len(self.groups),
        )

    # -- the sweeps ---------------------------------------------------------------

    @staticmethod
    def _normalize_rows(rows, uniform, totals=None):
        """Row-normalize with the reference engine's degenerate fallback.

        ``totals`` (when given) are exact-cardinality row sums from
        :func:`_card_groups` indexing; without them the full padded row is
        summed, which is only bit-safe when every row is unpadded.
        """
        if totals is None:
            totals = rows.sum(axis=1, keepdims=True)
        bad = (totals <= 0) | ~np.isfinite(totals)
        safe = np.where(bad, 1.0, totals)
        return np.where(bad, uniform, rows / safe)

    @staticmethod
    def _exact_row_totals(rows, groups):
        """Per-row sums over each row's true cardinality slice — the same
        length-n contiguous reduction the reference engine performs."""
        totals = np.zeros((rows.shape[0], 1))
        for card, indices in groups:
            totals[indices, 0] = rows[indices, :card].sum(axis=1)
        return totals

    def _segment_products(self):
        """Per-active-variable belief products prior·m1·m2·… — bitwise
        identical to the reference engine's sequential accumulation."""
        return np.multiply.reduceat(self._flat, self._flat_starts, axis=0)

    def _variable_sweep(self):
        """All variable→factor messages in one pass."""
        if self.edge_count == 0:
            return
        full = self._segment_products()
        per_edge = np.repeat(full, self._active_degrees, axis=0)
        messages = self._flat[self._msg_rows]
        outgoing = np.where(messages > 0, per_edge / messages, 0.0)
        self._msg_vf[:] = self._normalize_rows(
            outgoing,
            self._edge_uniform,
            totals=self._exact_row_totals(outgoing, self._edge_card_groups),
        )

    def _factor_sweep(self, damping, semiring):
        """All factor→variable messages, group by group; returns the
        largest message delta (the convergence signal)."""
        max_delta = 0.0
        for position, group in enumerate(self.groups):
            shape = group["shape"]
            arity = len(shape)
            tables = group["tables"]
            count = tables.shape[0]
            incoming = [
                self._msg_vf[group["edges"][axis], : shape[axis]]
                for axis in range(arity)
            ]
            group_delta = 0.0
            for target in range(arity):
                weighted = tables
                for axis in range(arity):
                    if axis == target:
                        continue
                    view = (count,) + tuple(
                        shape[axis] if other == axis else 1
                        for other in range(arity)
                    )
                    weighted = weighted * incoming[axis].reshape(view)
                reduce_axes = tuple(
                    1 + axis for axis in range(arity) if axis != target
                )
                if reduce_axes:
                    if semiring == "max":
                        message = weighted.max(axis=reduce_axes)
                    else:
                        message = weighted.sum(axis=reduce_axes)
                else:
                    message = weighted
                card = shape[target]
                uniform = np.full((1, card), 1.0 / card)
                message = self._normalize_rows(message, uniform)
                rows = group["rows"][target]
                old = self._flat[rows, :card]
                if damping > 0.0:
                    message = self._normalize_rows(
                        damping * old + (1.0 - damping) * message, uniform
                    )
                if message.size:
                    delta = float(np.abs(message - old).max())
                    if delta > group_delta:
                        group_delta = delta
                self._flat[rows, :card] = message
            self.group_deltas[position] = group_delta
            if group_delta > max_delta:
                max_delta = group_delta
        return max_delta

    def _marginals(self):
        """(marginals dict, finite flag) — finiteness is checked before
        normalization, which would mask NaN/inf rows as uniform."""
        beliefs = self.priors.copy()
        if len(self._active):
            beliefs[self._active] = self._segment_products()
        finite = bool(np.isfinite(beliefs).all())
        beliefs = self._normalize_rows(
            beliefs,
            self._var_uniform,
            totals=self._exact_row_totals(beliefs, self._var_card_groups),
        )
        return {
            name: beliefs[position, : self.cards[position]].copy()
            for position, name in enumerate(self.names)
        }, finite

    def _reset_messages(self):
        # Prior rows reflect the (possibly updated) prior matrix; message
        # rows start uniform with pad columns at the multiplicative
        # identity so full-row products ignore them.
        if len(self._active):
            self._flat[self._prior_rows] = self.priors[self._active]
        if self.edge_count:
            self._flat[self._msg_rows] = np.where(
                self._edge_pad, 1.0, self._edge_uniform
            )
            np.copyto(self._msg_vf, self._edge_uniform)

    def run(self, max_iters=50, tolerance=1e-6, damping=0.0, semiring="sum"):
        """Run BP sweeps; returns a :class:`SumProductResult`."""
        self._reset_messages()
        iterations = 0
        max_delta = np.inf
        converged = False
        with np.errstate(divide="ignore", invalid="ignore"):
            for iterations in range(1, max_iters + 1):
                self._variable_sweep()
                max_delta = self._factor_sweep(damping, semiring)
                if max_delta < tolerance:
                    converged = True
                    break
            marginals, finite = self._marginals()
        diverged = not finite or not np.isfinite(max_delta)
        return SumProductResult(
            marginals, iterations, converged, max_delta, diverged=diverged
        )


def compile_graph(graph):
    """Lower ``graph`` into a :class:`CompiledGraph` (one-time cost)."""
    return CompiledGraph(graph)


def run_compiled(graph, max_iters=50, tolerance=1e-6, damping=0.0,
                 semiring="sum"):
    """One-shot convenience: compile then run (matches ``run_sum_product``)."""
    return compile_graph(graph).run(
        max_iters=max_iters,
        tolerance=tolerance,
        damping=damping,
        semiring=semiring,
    )
