"""The bipartite factor graph.

Holds variables and factors, maintains adjacency, and computes the joint
probability of full assignments (used by the exact solver and by tests to
validate BP marginals).
"""

import numpy as np

from repro.factorgraph.factors import Factor
from repro.factorgraph.variables import Variable


class FactorGraph:
    """A collection of variables and factors over them."""

    def __init__(self, name="model"):
        self.name = name
        self.variables = {}
        self.factors = []
        self._factors_of = {}

    # -- construction ----------------------------------------------------------

    def add_variable(self, name, domain, prior=None):
        """Create (or fetch, if identical) a variable."""
        if name in self.variables:
            existing = self.variables[name]
            if existing.domain != tuple(domain):
                raise ValueError(
                    "variable %r re-added with different domain" % name
                )
            return existing
        variable = Variable(name, domain, prior=prior)
        self.variables[name] = variable
        self._factors_of[name] = []
        return variable

    def get_variable(self, name):
        return self.variables[name]

    def add_factor(self, factor):
        if not isinstance(factor, Factor):
            raise TypeError("expected a Factor, got %r" % type(factor).__name__)
        for variable in factor.variables:
            if variable.name not in self.variables:
                raise ValueError(
                    "factor %r references unknown variable %r"
                    % (factor.name, variable.name)
                )
        self.factors.append(factor)
        for variable in factor.variables:
            self._factors_of[variable.name].append(factor)
        return factor

    def factors_of(self, variable_name):
        return self._factors_of[variable_name]

    # -- queries -----------------------------------------------------------------

    @property
    def variable_count(self):
        return len(self.variables)

    @property
    def factor_count(self):
        return len(self.factors)

    def table_cells(self):
        """Total number of table entries; a memory-cost proxy."""
        return sum(factor.table.size for factor in self.factors)

    def unnormalized_joint(self, assignment):
        """Product of all factor values (and priors) on a full assignment."""
        score = 1.0
        for variable in self.variables.values():
            score *= variable.prior[variable.index_of(assignment[variable.name])]
        for factor in self.factors:
            score *= factor.value(assignment)
        return score

    def log_joint(self, assignment):
        score = self.unnormalized_joint(assignment)
        return -np.inf if score <= 0 else float(np.log(score))

    def __repr__(self):
        return "FactorGraph(%s, %d vars, %d factors)" % (
            self.name,
            self.variable_count,
            self.factor_count,
        )
