"""Factors: non-negative functions over small sets of variables.

A probabilistic constraint ``φ |h`` from the paper becomes a table factor
whose value is ``h`` on assignments satisfying ``φ`` and ``1 − h``
otherwise (Equation 6).  Tables are dense numpy arrays with one axis per
variable, which lets sum-product messages be computed by tensor
contraction.
"""

import itertools

import numpy as np


class Factor:
    """A dense table factor over an ordered list of variables."""

    __slots__ = ("name", "variables", "table")

    def __init__(self, name, variables, table):
        self.name = name
        self.variables = list(variables)
        table = np.asarray(table, dtype=float)
        expected = tuple(var.cardinality for var in self.variables)
        if table.shape != expected:
            raise ValueError(
                "factor %r table shape %s does not match domains %s"
                % (name, table.shape, expected)
            )
        if (table < 0).any():
            raise ValueError("factor %r has negative entries" % name)
        self.table = table

    @property
    def arity(self):
        return len(self.variables)

    def value(self, assignment):
        """Evaluate on a mapping var-name -> value."""
        indices = tuple(
            var.index_of(assignment[var.name]) for var in self.variables
        )
        return self.table[indices]

    def message_to(self, target, incoming, reduce="sum"):
        """Sum-product (or max-product) message to ``target``.

        ``incoming`` maps each *other* variable's name to its message (a
        numpy vector over that variable's domain).  Computes
        ``reduce_{others} table * prod(incoming)`` marginalized onto the
        target's axis; ``reduce`` is ``"sum"`` or ``"max"``.
        """
        result = self.table
        target_axis = None
        # Multiply incoming messages onto their axes, then sum them out.
        for axis, var in enumerate(self.variables):
            if var is target or var.name == target.name:
                target_axis = axis
        if target_axis is None:
            raise ValueError(
                "variable %r not in factor %r" % (target.name, self.name)
            )
        # Build the weighted table lazily: use einsum-style broadcasting.
        weighted = self.table
        for axis, var in enumerate(self.variables):
            if axis == target_axis:
                continue
            message = incoming[var.name]
            shape = [1] * weighted.ndim
            shape[axis] = var.cardinality
            weighted = weighted * message.reshape(shape)
        axes = tuple(
            axis for axis in range(weighted.ndim) if axis != target_axis
        )
        if axes:
            if reduce == "max":
                return weighted.max(axis=axes)
            return weighted.sum(axis=axes)
        return weighted.copy()

    def __repr__(self):
        return "Factor(%s, vars=[%s])" % (
            self.name,
            ", ".join(var.name for var in self.variables),
        )


def table_signature(factor):
    """The factor's domain shape — the grouping key of the compiled
    engine, which stacks all same-shape tables into one dense block so a
    whole group's messages are computed by a single tensor contraction."""
    return tuple(var.cardinality for var in factor.variables)


def export_tables(factors):
    """Group factor tables by :func:`table_signature`.

    Returns ``{shape: (factor_indices, stacked_tables)}`` where
    ``stacked_tables[i]`` is the table of ``factors[factor_indices[i]]``.
    This is the flat layout the compiled BP kernel sweeps over.
    """
    grouped = {}
    for index, factor in enumerate(factors):
        grouped.setdefault(table_signature(factor), []).append(index)
    return {
        shape: (
            tuple(indices),
            np.stack([factors[index].table for index in indices]),
        )
        for shape, indices in grouped.items()
    }


#: Cache of predicate tables keyed by (predicate id, domains, h, axes).
#: The same constraint shape recurs at every PFG edge of every method, so
#: memoizing the table build is a large constant-factor win.
_TABLE_CACHE = {}


def _build_table(domains, predicate, high_probability):
    low = 1.0 - high_probability
    if low == 0.0:
        low = 1e-9  # keep the table strictly positive for BP stability
    shape = tuple(len(domain) for domain in domains)
    table = np.empty(shape)
    for combo in itertools.product(*(range(card) for card in shape)):
        values = tuple(
            domains[axis][position] for axis, position in enumerate(combo)
        )
        table[combo] = high_probability if predicate(*values) else low
    return table


def _cached_table(variables, predicate, high_probability, condition_axes=None):
    domains = tuple(var.domain for var in variables)
    key = (id(predicate), domains, high_probability, condition_axes)
    table = _TABLE_CACHE.get(key)
    if table is None:
        table = _build_table(domains, predicate, high_probability)
        if condition_axes is not None:
            axes = tuple(
                axis for axis in range(table.ndim) if axis not in condition_axes
            )
            totals = table.sum(axis=axes, keepdims=True)
            totals[totals == 0] = 1.0
            table = table / totals
        _TABLE_CACHE[key] = table
    return table


def predicate_factor(name, variables, predicate, high_probability):
    """Compile a soft constraint ``φ |h`` into a table factor (Eq. 6).

    ``predicate`` receives one value per variable (in order) and returns
    truthiness; satisfied assignments score ``h`` and violations ``1−h``.
    Tables are cached by (predicate, domains, h): pass a *named function*
    rather than a fresh lambda wherever the constraint recurs, so the
    cache can hit.
    """
    if not 0.0 < high_probability <= 1.0:
        raise ValueError("high probability must be in (0, 1]")
    table = _cached_table(variables, predicate, high_probability)
    return Factor(name, variables, table)


def conditional_predicate_factor(name, variables, predicate, high_probability,
                                 condition_axes=(0,)):
    """A predicate factor normalized per joint value of the condition axes.

    Each slice over the *non*-condition axes is scaled to sum to 1,
    making the factor a conditional distribution p(rest | conditions).
    This keeps the constraint's compatibility content while removing the
    counting bias a raw table would exert on the condition variables
    (values with more satisfying completions would otherwise be favored),
    and sends unbiased (unit) messages toward the condition variables
    when the dependent side is uninformative.
    """
    if isinstance(condition_axes, int):
        condition_axes = (condition_axes,)
    if not 0.0 < high_probability <= 1.0:
        raise ValueError("high probability must be in (0, 1]")
    table = _cached_table(
        variables, predicate, high_probability, tuple(condition_axes)
    )
    return Factor(name, variables, table)


def _equal_values(a, b):
    return a == b


def soft_equality(name, var_a, var_b, high_probability):
    """Soft constraint that two same-domain variables are equal (L1/L2)."""
    if var_a.domain != var_b.domain:
        raise ValueError(
            "soft_equality requires matching domains (%s vs %s)"
            % (var_a.domain, var_b.domain)
        )
    return predicate_factor(
        name, [var_a, var_b], _equal_values, high_probability
    )


def prior_factor(name, variable, weights=None):
    """A unary factor carrying a prior (value -> weight mapping)."""
    if weights is None:
        table = variable.prior.copy()
    else:
        table = np.zeros(variable.cardinality)
        for value, weight in weights.items():
            table[variable.index_of(value)] = weight
    return Factor(name, [variable], table)


def evidence_factor(name, variable, value, confidence):
    """A unary factor concentrating mass on one value with ``confidence``."""
    remaining = (1.0 - confidence) / (variable.cardinality - 1)
    table = np.full(variable.cardinality, remaining)
    table[variable.index_of(value)] = confidence
    return Factor(name, [variable], table)
