"""Decomposition of wide constraints into bounded-arity factors.

The paper's L2 constraint says a node's permission equals the permission
on *one of* its incoming edges — a disjunction over all incoming edges.
Compiled naively that is a single factor over m+1 variables (table size
d^(m+1)), which blows up at loop joins with many predecessors.  This
module rewrites such disjunctions as a chain of ternary "selector"
factors through auxiliary variables, keeping every table at d^3 cells.

This is exactly the kind of factorization Equation 5 of the paper
anticipates: the joint stays a product of small-support functions.
"""

from repro.factorgraph.factors import predicate_factor

#: Factors wider than this get decomposed through auxiliary variables.
MAX_DIRECT_ARITY = 4


def _node_equals_any(node, *edges):
    return any(node == edge for edge in edges)


def _match_starts(match, node, edge):
    return match == (node == edge)


def _match_extends(match, prior_match, node, edge):
    return match == (prior_match or node == edge)


def _is_true(match):
    return match


def add_soft_one_of(graph, name, node_var, edge_vars, high_probability):
    """Assert softly that ``node_var`` equals at least one of ``edge_vars``.

    For few edges, emits a single factor with predicate
    ``node == e1 or node == e2 or ...``.  For many edges, chains auxiliary
    boolean "seen a match so far" variables so that every factor has
    arity <= 3.  Returns the list of factors added.
    """
    if not edge_vars:
        return []
    added = []
    if len(edge_vars) + 1 <= MAX_DIRECT_ARITY:
        factor = predicate_factor(
            name,
            [node_var] + list(edge_vars),
            _node_equals_any,
            high_probability,
        )
        graph.add_factor(factor)
        added.append(factor)
        return added
    # Chain: match_i == (node == edge_i) or match_{i-1}.
    previous = None
    for position, edge_var in enumerate(edge_vars):
        aux = graph.add_variable(
            "%s$match%d" % (name, position), (False, True)
        )
        if previous is None:
            factor = predicate_factor(
                "%s$link%d" % (name, position),
                [aux, node_var, edge_var],
                _match_starts,
                max(high_probability, 0.999),
            )
        else:
            factor = _chain_link(
                "%s$link%d" % (name, position),
                aux,
                previous,
                node_var,
                edge_var,
            )
        graph.add_factor(factor)
        added.append(factor)
        previous = aux
    terminal = predicate_factor(
        "%s$terminal" % name, [previous], _is_true, high_probability
    )
    graph.add_factor(terminal)
    added.append(terminal)
    return added


def _chain_link(name, aux, previous, node_var, edge_var):
    """aux == previous or (node == edge) — an arity-4 deterministic link."""
    return predicate_factor(
        name,
        [aux, previous, node_var, edge_var],
        _match_extends,
        0.999,
    )


def add_soft_all_equal(graph, name, node_var, edge_vars, high_probability):
    """Assert softly that the node equals *every* edge (branch case of L1).

    Emitted as independent pairwise equalities, which is an exact
    factorization of the conjunction.
    """
    from repro.factorgraph.factors import soft_equality

    added = []
    for position, edge_var in enumerate(edge_vars):
        factor = soft_equality(
            "%s$eq%d" % (name, position), node_var, edge_var, high_probability
        )
        graph.add_factor(factor)
        added.append(factor)
    return added
