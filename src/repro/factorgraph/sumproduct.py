"""Loopy sum-product (and max-product) belief propagation.

Implements the sum-product algorithm of Kschischang, Frey & Loeliger
(the paper's reference [14]) on :class:`repro.factorgraph.graph.FactorGraph`.
Messages are updated in synchronous sweeps with damping; the run stops at
convergence (max message delta below tolerance) or after ``max_iters``
sweeps — mirroring the paper's acceptance of approximate marginals.

``run_max_product`` runs the same schedule with max instead of sum,
yielding max-marginals whose argmaxes approximate the MAP assignment —
the "single most likely specification" view, as opposed to thresholding
per-variable marginals.
"""

import numpy as np


class SumProductResult:
    """Marginals plus convergence metadata."""

    def __init__(self, marginals, iterations, converged, max_delta,
                 diverged=False):
        self.marginals = marginals
        self.iterations = iterations
        self.converged = converged
        self.max_delta = max_delta
        #: True when the engine observed NaN/inf state — a non-finite
        #: message delta or a non-finite pre-normalization belief.  The
        #: resilience guard treats a diverged result as a failed attempt.
        self.diverged = diverged

    def marginal(self, variable_name):
        return self.marginals[variable_name]

    def probability(self, variable_name, value, graph=None, variable=None):
        """P(variable = value); needs the variable for domain lookup."""
        if variable is None:
            if graph is None:
                raise ValueError("pass graph or variable to resolve the domain")
            variable = graph.get_variable(variable_name)
        return float(self.marginals[variable_name][variable.index_of(value)])

    def most_likely(self, variable):
        """(value, probability) with the highest marginal mass."""
        vector = self.marginals[variable.name]
        position = int(np.argmax(vector))
        return variable.domain[position], float(vector[position])


def _normalize(vector):
    total = vector.sum()
    if total <= 0 or not np.isfinite(total):
        return np.full(vector.shape, 1.0 / len(vector))
    return vector / total


def run_sum_product(graph, max_iters=50, tolerance=1e-6, damping=0.0,
                    semiring="sum"):
    """Run loopy BP and return a :class:`SumProductResult`.

    Priors participate as implicit unary potentials on each variable.
    ``damping`` in [0, 1) blends each new factor-to-variable message with
    the previous one, which stabilizes oscillating loopy graphs.
    ``semiring`` selects marginalization: ``"sum"`` (marginals) or
    ``"max"`` (max-marginals / MAP belief revision).
    """
    variables = list(graph.variables.values())
    factors = list(graph.factors)

    # Message stores, keyed by (factor index, variable name).
    var_to_factor = {}
    factor_to_var = {}
    neighbors_of = {variable.name: [] for variable in variables}
    for factor_index, factor in enumerate(factors):
        for variable in factor.variables:
            var_to_factor[(factor_index, variable.name)] = variable.uniform()
            factor_to_var[(factor_index, variable.name)] = variable.uniform()
            neighbors_of[variable.name].append(factor_index)

    iterations = 0
    max_delta = np.inf
    converged = False
    with np.errstate(divide="ignore", invalid="ignore"):
        for iterations in range(1, max_iters + 1):
            max_delta = 0.0
            # Variable -> factor messages first, so priors propagate in the
            # very first sweep: compute the full belief product once per
            # variable, then divide out each factor's own contribution.
            for variable in variables:
                indexed = neighbors_of[variable.name]
                if not indexed:
                    continue
                full = variable.prior.copy()
                for factor_index in indexed:
                    full = full * factor_to_var[(factor_index, variable.name)]
                for factor_index in indexed:
                    message = factor_to_var[(factor_index, variable.name)]
                    outgoing = np.where(message > 0, full / message, 0.0)
                    var_to_factor[(factor_index, variable.name)] = _normalize(
                        outgoing
                    )
            # Factor -> variable messages.
            for factor_index, factor in enumerate(factors):
                incoming = {
                    variable.name: var_to_factor[(factor_index, variable.name)]
                    for variable in factor.variables
                }
                for variable in factor.variables:
                    message = _normalize(
                        factor.message_to(variable, incoming, reduce=semiring)
                    )
                    old = factor_to_var[(factor_index, variable.name)]
                    if damping > 0.0:
                        message = _normalize(
                            damping * old + (1.0 - damping) * message
                        )
                    delta = float(np.abs(message - old).max())
                    if delta > max_delta:
                        max_delta = delta
                    factor_to_var[(factor_index, variable.name)] = message
            if max_delta < tolerance:
                converged = True
                break

    marginals = {}
    # NaN/inf detection: normalization masks non-finite beliefs (they
    # fall back to uniform), so divergence is checked *before* it.
    diverged = not np.isfinite(max_delta)
    for variable in variables:
        belief = variable.prior.copy()
        for factor_index in neighbors_of[variable.name]:
            belief = belief * factor_to_var[(factor_index, variable.name)]
        if not np.isfinite(belief).all():
            diverged = True
        marginals[variable.name] = _normalize(belief)
    return SumProductResult(
        marginals, iterations, converged, max_delta, diverged=diverged
    )


def run_max_product(graph, max_iters=50, tolerance=1e-6, damping=0.0):
    """Max-product BP: max-marginals whose argmaxes approximate the MAP
    assignment (exact on trees)."""
    return run_sum_product(
        graph,
        max_iters=max_iters,
        tolerance=tolerance,
        damping=damping,
        semiring="max",
    )
