"""Abstract state hierarchies (paper Figure 1).

Every class has a state space rooted at ``ALIVE`` (the paper: "the root of
the state hierarchy ... equivalent to saying the iterator is not in any
state of interest").  Classes declare refinements with a ``@States``
annotation::

    @States("HASNEXT, END")
    interface Iterator<T> { ... }

which puts HASNEXT and END under ALIVE.  Nested refinements use
``parent:child1|child2`` entries, e.g. ``@States("OPEN:READING|EOF, CLOSED")``.
"""

ALIVE = "ALIVE"


class StateSpace:
    """A rooted tree of abstract states for one class."""

    def __init__(self, class_name, parent_of=None):
        self.class_name = class_name
        # parent_of maps state -> parent; ALIVE has no parent.
        self.parent_of = dict(parent_of or {})
        self.parent_of.pop(ALIVE, None)

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, class_name, declaration):
        """Parse a ``@States`` declaration string.

        Entries are comma-separated.  A bare name is a child of ALIVE; an
        entry ``PARENT:A|B`` introduces A and B as children of PARENT.
        """
        parent_of = {}
        for entry in declaration.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if ":" in entry:
                parent, _, children = entry.partition(":")
                parent = parent.strip()
                if parent != ALIVE and parent not in parent_of:
                    parent_of[parent] = ALIVE
                for child in children.split("|"):
                    child = child.strip()
                    if child:
                        parent_of[child] = parent
            else:
                parent_of[entry] = ALIVE
        return cls(class_name, parent_of)

    @classmethod
    def trivial(cls, class_name):
        """A state space with only ALIVE (no protocol)."""
        return cls(class_name, {})

    # -- queries -----------------------------------------------------------------

    @property
    def states(self):
        """All states including ALIVE, root first, then sorted children."""
        return [ALIVE] + sorted(self.parent_of)

    def is_state(self, name):
        return name == ALIVE or name in self.parent_of

    def parent(self, state):
        if state == ALIVE:
            return None
        return self.parent_of[state]

    def children(self, state):
        return sorted(
            child for child, parent in self.parent_of.items() if parent == state
        )

    def ancestors(self, state):
        """States from ``state`` up to and including ALIVE.

        Unknown states (e.g. mentioned by a spec but not declared) are
        treated as direct children of ALIVE, keeping queries total.
        """
        chain = [state]
        while chain[-1] != ALIVE:
            parent = self.parent_of.get(chain[-1])
            if parent is None:
                chain.append(ALIVE)
                break
            chain.append(parent)
        return chain

    def is_substate(self, sub, sup):
        """True if ``sub`` refines (or equals) ``sup``."""
        return sup in self.ancestors(sub)

    def satisfies(self, known, required):
        """Does knowing the object is in ``known`` satisfy requiring ``required``?

        Knowledge of a substate implies knowledge of every superstate.
        """
        return self.is_substate(known, required)

    def meet(self, state_a, state_b):
        """Most general common refinement along one ancestor chain, if any.

        Returns the deeper of the two when one refines the other (knowing
        both facts means the object is in the deeper state); None when the
        states are incomparable (contradictory knowledge).
        """
        if self.is_substate(state_a, state_b):
            return state_a
        if self.is_substate(state_b, state_a):
            return state_b
        return None

    def join(self, state_a, state_b):
        """Least common ancestor — what is known after merging two paths."""
        ancestors_a = self.ancestors(state_a)
        for candidate in ancestors_a:
            if self.is_substate(state_b, candidate):
                return candidate
        return ALIVE

    def leaves(self):
        parents = set(self.parent_of.values())
        return sorted(
            state for state in self.parent_of if state not in parents
        ) or [ALIVE]

    def to_dot(self):
        """Render the hierarchy (Figure 1 style) in DOT format."""
        lines = ["digraph states_%s {" % self.class_name]
        lines.append('  %s [shape=doublecircle];' % ALIVE)
        for state in sorted(self.parent_of):
            lines.append("  %s;" % state)
            lines.append("  %s -> %s;" % (self.parent_of[state], state))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return "StateSpace(%s, %s)" % (self.class_name, self.states)


def state_space_of_class(class_decl):
    """Extract the state space from a class's ``@States`` annotation."""
    for annotation in class_decl.annotations:
        if annotation.name == "States":
            declaration = annotation.argument("value", "")
            return StateSpace.parse(class_decl.name, declaration)
    return StateSpace.trivial(class_decl.name)


def iterator_state_space():
    """The Figure 1 protocol: ALIVE with HASNEXT and END refinements."""
    return StateSpace.parse("Iterator", "HASNEXT, END")
