"""Sound permission splitting and merging (paper constraint L1, Eq. 2).

This module centralizes the *legality* relation used by both the PLURAL
checker (when it actually performs splits) and ANEK's constraint
generator (when it asserts that a split node's outgoing edges carry a
sound division of the incoming permission).

``legal_edge_pair(held, given, retained)`` answers: may a permission of
kind ``held`` be divided so that one reference gets ``given`` and the
original keeps ``retained``?
"""

from repro.permissions import kinds


def legal_edge_pair(held, given, retained):
    """Legality of a binary split of ``held`` into (given, retained).

    Encodes Equation 2 of the paper:

    * each piece must be a reachable split target of ``held``;
    * at most one piece may carry an exclusive claim (unique/full);
    * a unique piece asserts no other references, so its co-piece must
      also be... impossible — unique can only appear as a piece when the
      whole permission moves (we model that as ``retained is None``).
    """
    if retained is None:
        # Whole permission transferred; the piece may weaken arbitrarily.
        return kinds.satisfies(held, given)
    targets = kinds.split_targets(held)
    if given not in targets or retained not in targets:
        return False
    if given in kinds.EXCLUSIVE_KINDS and retained in kinds.EXCLUSIVE_KINDS:
        return False
    if given == kinds.UNIQUE or retained == kinds.UNIQUE:
        # unique pieces cannot coexist with any other piece.
        return False
    # A full piece asserts no *other* writers: the co-piece must be
    # read-only.
    if given == kinds.FULL and retained in kinds.WRITING_KINDS:
        return False
    if retained == kinds.FULL and given in kinds.WRITING_KINDS:
        return False
    # An immutable piece asserts no writers at all: co-piece read-only.
    if given == kinds.IMMUTABLE and retained in kinds.WRITING_KINDS:
        return False
    if retained == kinds.IMMUTABLE and given in kinds.WRITING_KINDS:
        return False
    return True


def legal_pairs(held):
    """All (given, retained) pairs legal for a split of ``held``."""
    pairs = []
    for given in kinds.ALL_KINDS:
        if legal_edge_pair(held, given, None):
            pairs.append((given, None))
        for retained in kinds.ALL_KINDS:
            if legal_edge_pair(held, given, retained):
                pairs.append((given, retained))
    return pairs


def best_retained(held, given):
    """Strongest kind the splitter can keep after giving ``given`` away.

    Returns ``None`` when nothing can be retained (e.g. giving unique).
    """
    candidates = [
        retained
        for retained in kinds.ALL_KINDS
        if legal_edge_pair(held, given, retained)
    ]
    if not candidates:
        return None
    return kinds.strongest(candidates)


def mergeable(kind_a, kind_b):
    """May permissions of these kinds (to one object) be merged at a node?"""
    if kind_a == kind_b:
        return True
    pair = frozenset([kind_a, kind_b])
    return pair == frozenset([kinds.FULL, kinds.PURE]) or not (
        pair & kinds.EXCLUSIVE_KINDS
    )


def merged_kind(kind_a, kind_b):
    """Resulting kind of merging (ignoring fractions; see ``fractions``)."""
    if kind_a == kind_b:
        return kind_a
    pair = frozenset([kind_a, kind_b])
    if pair == frozenset([kinds.FULL, kinds.PURE]):
        return kinds.FULL
    return kinds.weakest([kind_a, kind_b])
