"""Access permissions: kinds, fractions, abstract states, specifications.

Implements the PLURAL permission methodology the paper builds on:

* ``kinds``     — the five permission kinds of Figure 4 and their ordering
* ``fractions`` — fractional permissions (Boyland) for sound split/merge
* ``states``    — abstract state hierarchies (Figure 1)
* ``spec``      — the ``@Perm(requires=..., ensures=...)`` spec language
* ``splitting`` — sound permission splitting/merging tables (paper L1)
"""

from repro.permissions.kinds import (
    ALL_KINDS,
    FULL,
    IMMUTABLE,
    PURE,
    SHARE,
    UNIQUE,
    KindInfo,
    kind_info,
    satisfies,
    split_targets,
)
from repro.permissions.spec import (
    MethodSpec,
    PermClause,
    SpecParseError,
    format_clauses,
    parse_perm_clauses,
    spec_of_method,
)
from repro.permissions.states import ALIVE, StateSpace, state_space_of_class

__all__ = [
    "UNIQUE",
    "FULL",
    "SHARE",
    "IMMUTABLE",
    "PURE",
    "ALL_KINDS",
    "KindInfo",
    "kind_info",
    "satisfies",
    "split_targets",
    "ALIVE",
    "StateSpace",
    "state_space_of_class",
    "PermClause",
    "MethodSpec",
    "SpecParseError",
    "parse_perm_clauses",
    "format_clauses",
    "spec_of_method",
]
