"""The ``@Perm`` specification language (paper Figures 2 and 8).

A method specification consists of a *requires* and an *ensures* list of
permission clauses, each of the form::

    kind(target) [in STATE]

where ``kind`` is one of the five permission kinds, ``target`` is ``this``,
``result``, or a parameter name, and ``STATE`` defaults to ``ALIVE``.
Clauses are comma-separated.  Dynamic state test methods additionally
carry ``@TrueIndicates("STATE")`` / ``@FalseIndicates("STATE")``.

Both ``@Perm`` and ``@Spec`` annotation names are accepted — the paper
uses both spellings.
"""

import re

from repro.permissions import kinds
from repro.permissions.states import ALIVE

SPEC_ANNOTATION_NAMES = ("Perm", "Spec")

_CLAUSE_RE = re.compile(
    r"^\s*(?P<kind>unique|full|share|immutable|pure)\s*"
    r"\(\s*(?P<target>[A-Za-z_$][A-Za-z0-9_$]*|#\d+)\s*\)\s*"
    r"(?:in\s+(?P<state>[A-Za-z_][A-Za-z0-9_]*)\s*)?$"
)


class SpecParseError(ValueError):
    """Raised on malformed specification strings."""


class PermClause:
    """One ``kind(target) in STATE`` clause."""

    __slots__ = ("kind", "target", "state")

    def __init__(self, kind, target, state=ALIVE):
        if kind not in kinds.ALL_KINDS:
            raise SpecParseError("unknown permission kind %r" % kind)
        self.kind = kind
        self.target = target
        self.state = state

    def __eq__(self, other):
        return (
            isinstance(other, PermClause)
            and self.kind == other.kind
            and self.target == other.target
            and self.state == other.state
        )

    def __hash__(self):
        return hash((self.kind, self.target, self.state))

    def __repr__(self):
        return "PermClause(%s(%s) in %s)" % (self.kind, self.target, self.state)

    def format(self):
        if self.state == ALIVE:
            return "%s(%s)" % (self.kind, self.target)
        return "%s(%s) in %s" % (self.kind, self.target, self.state)


def parse_perm_clauses(text):
    """Parse a comma-separated clause list; empty/None yields []."""
    if text is None:
        return []
    text = text.strip()
    if not text:
        return []
    clauses = []
    for part in text.split(","):
        match = _CLAUSE_RE.match(part)
        if match is None:
            raise SpecParseError("malformed permission clause %r" % part.strip())
        state = match.group("state") or ALIVE
        clauses.append(
            PermClause(match.group("kind"), match.group("target"), state)
        )
    return clauses


def format_clauses(clauses):
    """Render clauses back to spec-string form."""
    return ", ".join(clause.format() for clause in clauses)


class MethodSpec:
    """The complete specification attached to one method."""

    __slots__ = ("requires", "ensures", "true_indicates", "false_indicates")

    def __init__(self, requires=None, ensures=None, true_indicates=None,
                 false_indicates=None):
        self.requires = list(requires or [])
        self.ensures = list(ensures or [])
        self.true_indicates = true_indicates
        self.false_indicates = false_indicates

    @property
    def is_empty(self):
        return not (
            self.requires
            or self.ensures
            or self.true_indicates
            or self.false_indicates
        )

    @property
    def is_state_test(self):
        return self.true_indicates is not None or self.false_indicates is not None

    def required_for(self, target):
        """Clauses in *requires* constraining ``target``."""
        return [clause for clause in self.requires if clause.target == target]

    def ensured_for(self, target):
        """Clauses in *ensures* constraining ``target``."""
        return [clause for clause in self.ensures if clause.target == target]

    def __eq__(self, other):
        return (
            isinstance(other, MethodSpec)
            and self.requires == other.requires
            and self.ensures == other.ensures
            and self.true_indicates == other.true_indicates
            and self.false_indicates == other.false_indicates
        )

    def __repr__(self):
        return "MethodSpec(requires=[%s], ensures=[%s])" % (
            format_clauses(self.requires),
            format_clauses(self.ensures),
        )

    def to_annotations(self):
        """Render as (annotation-name, arguments) pairs for the applier."""
        result = []
        arguments = {}
        if self.requires:
            arguments["requires"] = format_clauses(self.requires)
        if self.ensures:
            arguments["ensures"] = format_clauses(self.ensures)
        if arguments:
            result.append(("Perm", arguments))
        if self.true_indicates:
            result.append(("TrueIndicates", {"value": self.true_indicates}))
        if self.false_indicates:
            result.append(("FalseIndicates", {"value": self.false_indicates}))
        return result


def spec_of_method(method_decl):
    """Extract the :class:`MethodSpec` from a method's annotations.

    Returns an empty spec when the method is unannotated.
    """
    spec = MethodSpec()
    for annotation in method_decl.annotations:
        if annotation.name in SPEC_ANNOTATION_NAMES:
            spec.requires.extend(
                parse_perm_clauses(annotation.argument("requires"))
            )
            spec.ensures.extend(parse_perm_clauses(annotation.argument("ensures")))
        elif annotation.name == "TrueIndicates":
            spec.true_indicates = annotation.argument("value")
        elif annotation.name == "FalseIndicates":
            spec.false_indicates = annotation.argument("value")
    return spec
