"""The five access-permission kinds (paper Figure 4).

Each kind pairs a privilege for *this* reference with an assumption about
what *other* aliases may do:

============  ==============  =================
kind          this reference  other references
============  ==============  =================
unique        read/write      none exist
full          read/write      read-only
share         read/write      read/write
immutable     read-only       read-only
pure          read-only       read/write
============  ==============  =================

``satisfies`` encodes the weakening order (a held kind can stand in for a
required kind); ``split_targets`` encodes which kinds a permission can be
split into when a new alias is introduced (the legality core of the
paper's L1 constraint — fraction bookkeeping lives in ``fractions``).
"""

from collections import namedtuple

UNIQUE = "unique"
FULL = "full"
SHARE = "share"
IMMUTABLE = "immutable"
PURE = "pure"

#: Canonical order used everywhere (strongest first).
ALL_KINDS = (UNIQUE, FULL, SHARE, IMMUTABLE, PURE)

#: Kinds that permit writing through this reference.
WRITING_KINDS = frozenset([UNIQUE, FULL, SHARE])

#: Kinds that are read-only through this reference.
READ_ONLY_KINDS = frozenset([IMMUTABLE, PURE])

#: Kinds compatible with concurrent access from other threads (paper H5).
THREAD_SHARED_KINDS = frozenset([FULL, SHARE, PURE])


KindInfo = namedtuple(
    "KindInfo", ["name", "this_writes", "others_exist", "others_write"]
)

_KIND_TABLE = {
    UNIQUE: KindInfo(UNIQUE, this_writes=True, others_exist=False, others_write=False),
    FULL: KindInfo(FULL, this_writes=True, others_exist=True, others_write=False),
    SHARE: KindInfo(SHARE, this_writes=True, others_exist=True, others_write=True),
    IMMUTABLE: KindInfo(
        IMMUTABLE, this_writes=False, others_exist=True, others_write=False
    ),
    PURE: KindInfo(PURE, this_writes=False, others_exist=True, others_write=True),
}

# A held kind satisfies a required kind when every guarantee of the
# requirement is implied by the held kind (weakening).
_SATISFIES = {
    UNIQUE: frozenset([UNIQUE, FULL, SHARE, IMMUTABLE, PURE]),
    FULL: frozenset([FULL, SHARE, IMMUTABLE, PURE]),
    SHARE: frozenset([SHARE, PURE]),
    IMMUTABLE: frozenset([IMMUTABLE, PURE]),
    PURE: frozenset([PURE]),
}

# One-step split legality: from a held kind, the set of kinds each piece
# may take when the permission is divided between two references.  Derived
# from the paper's Equation 2: unique may split into anything (with at
# most one unique/full piece), full into {full, immutable, share, pure},
# immutable into {immutable, pure}, share into {share, pure}, pure into
# {pure}.
_SPLIT_TARGETS = {
    UNIQUE: frozenset([UNIQUE, FULL, SHARE, IMMUTABLE, PURE]),
    FULL: frozenset([FULL, SHARE, IMMUTABLE, PURE]),
    SHARE: frozenset([SHARE, PURE]),
    IMMUTABLE: frozenset([IMMUTABLE, PURE]),
    PURE: frozenset([PURE]),
}

# Kinds carrying an exclusive claim: at most one piece of a split may be
# exclusive (the paper's ¬(unique ∨ full) side condition on co-pieces).
EXCLUSIVE_KINDS = frozenset([UNIQUE, FULL])


def kind_info(kind):
    """Return the :class:`KindInfo` row of Figure 4 for ``kind``."""
    return _KIND_TABLE[kind]


def is_kind(name):
    return name in _KIND_TABLE


def satisfies(held, required):
    """True if holding ``held`` satisfies a requirement of ``required``."""
    return required in _SATISFIES[held]


def satisfying_kinds(required):
    """All kinds that can satisfy a requirement of ``required``."""
    return frozenset(
        held for held in ALL_KINDS if required in _SATISFIES[held]
    )


def satisfying_common(kind_a, kind_b):
    """Kinds that both ``kind_a`` and ``kind_b`` can stand in for.

    Used by lattice joins: after a path merge, the context may only claim
    a permission that is implied by what was held on *every* path.
    """
    return frozenset(
        required
        for required in ALL_KINDS
        if satisfies(kind_a, required) and satisfies(kind_b, required)
    )


def split_targets(held):
    """Kinds each piece may take when splitting a held permission."""
    return _SPLIT_TARGETS[held]


def legal_split(held, piece_a, piece_b):
    """True if a permission of kind ``held`` may split into the two pieces.

    Both pieces must be reachable split targets and at most one piece may
    carry an exclusive claim; two exclusive pieces would each assume the
    other cannot write, violating one another.
    """
    targets = _SPLIT_TARGETS[held]
    if piece_a not in targets or piece_b not in targets:
        return False
    if piece_a in EXCLUSIVE_KINDS and piece_b in EXCLUSIVE_KINDS:
        return False
    # A unique piece asserts *no* other references at all, so the co-piece
    # must be the vanished (no-permission) case — not expressible here;
    # treat unique as splittable only from unique with a non-exclusive,
    # droppable co-piece.
    if UNIQUE in (piece_a, piece_b) and held is not UNIQUE and held != UNIQUE:
        return False
    return True


def strength_rank(kind):
    """Smaller is stronger; useful for choosing the best inferred spec."""
    return ALL_KINDS.index(kind)


def strongest(kinds):
    """Return the strongest kind in a non-empty iterable."""
    return min(kinds, key=strength_rank)


def weakest(kinds):
    """Return the weakest kind in a non-empty iterable."""
    return max(kinds, key=strength_rank)


def figure4_rows():
    """The Figure 4 table as printable rows (used by the figure bench)."""
    rows = []
    for kind in ALL_KINDS:
        info = _KIND_TABLE[kind]
        this_access = "read/write" if info.this_writes else "read-only"
        if not info.others_exist:
            other_access = "none"
        elif info.others_write:
            other_access = "read/write"
        else:
            other_access = "read-only"
        rows.append((kind, this_access, other_access))
    return rows
