"""Fractional permissions (Boyland 2003, used by PLURAL).

A :class:`FractionalPermission` is a permission kind plus a rational
fraction of the underlying object.  Fractions make splitting and merging
sound and reversible: a ``unique`` permission with fraction 1 can be split
into two ``share`` halves, and merging the halves restores ``unique``.

The tables here drive both the PLURAL checker's split/merge steps and its
local Gaussian-elimination inference (``repro.plural.local_inference``).
"""

from fractions import Fraction

from repro.permissions import kinds


class FractionalPermission:
    """An immutable (kind, fraction, state) triple."""

    __slots__ = ("kind", "fraction", "state")

    def __init__(self, kind, fraction=Fraction(1), state="ALIVE"):
        if kind not in kinds.ALL_KINDS:
            raise ValueError("unknown permission kind %r" % kind)
        fraction = Fraction(fraction)
        if fraction <= 0 or fraction > 1:
            raise ValueError("fraction must be in (0, 1], got %s" % fraction)
        self.kind = kind
        self.fraction = fraction
        self.state = state

    def with_state(self, state):
        return FractionalPermission(self.kind, self.fraction, state)

    def with_kind(self, kind):
        return FractionalPermission(kind, self.fraction, self.state)

    def __eq__(self, other):
        return (
            isinstance(other, FractionalPermission)
            and self.kind == other.kind
            and self.fraction == other.fraction
            and self.state == other.state
        )

    def __hash__(self):
        return hash((self.kind, self.fraction, self.state))

    def __repr__(self):
        return "%s(%s, %s)" % (self.kind, self.fraction, self.state)


def split_for_requirement(held, required_kind):
    """Split ``held`` so one piece satisfies ``required_kind``.

    Returns ``(given, retained)`` where ``given`` has the required kind, or
    ``None`` when the held permission cannot satisfy the requirement.
    ``retained`` may be ``None`` when the whole permission is consumed
    (e.g. unique required from unique held).

    The fraction bookkeeping follows PLURAL: an exclusive piece keeps the
    whole fraction (exclusivity is what matters), a shared piece takes
    half, leaving half behind.
    """
    if not kinds.satisfies(held.kind, required_kind):
        return None
    if required_kind in (kinds.UNIQUE,):
        # The entire permission is handed over.
        return (FractionalPermission(kinds.UNIQUE, held.fraction, held.state), None)
    if required_kind == kinds.FULL:
        # Exclusive write piece; a read-only pure residue may stay behind.
        given = FractionalPermission(kinds.FULL, held.fraction / 2, held.state)
        retained = FractionalPermission(kinds.PURE, held.fraction / 2, held.state)
        return (given, retained)
    # Symmetric (share/immutable/pure) pieces: give half, keep half.
    given = FractionalPermission(required_kind, held.fraction / 2, held.state)
    retained_kind = _retained_kind(held.kind, required_kind)
    retained = FractionalPermission(retained_kind, held.fraction / 2, held.state)
    return (given, retained)


def _retained_kind(held_kind, given_kind):
    """Kind kept by the splitter after giving away ``given_kind``."""
    if given_kind == kinds.SHARE:
        # Another writer now exists; the residue can write but must assume
        # other writers: share.
        return kinds.SHARE
    if given_kind == kinds.IMMUTABLE:
        # Other readers assume no writers; residue must drop write: immutable.
        return kinds.IMMUTABLE
    if given_kind == kinds.PURE:
        # A pure alias assumes writers may exist; the holder keeps its kind.
        return held_kind
    return held_kind


def merge(piece_a, piece_b):
    """Merge two permissions to the same object; returns the combined one.

    Merging follows the fraction laws: same-kind pieces add fractions, and
    a piece re-absorbed into the permission it was split from restores the
    original kind once the whole fraction is reassembled.
    """
    total = piece_a.fraction + piece_b.fraction
    if total > 1:
        raise ValueError("merged fraction exceeds 1: %s" % total)
    state = piece_a.state if piece_a.state == piece_b.state else "ALIVE"
    if piece_a.kind == piece_b.kind:
        kind = piece_a.kind
        if total == 1 and kind in (kinds.SHARE, kinds.IMMUTABLE, kinds.PURE):
            # Whole object reassembled from symmetric pieces: unique again.
            return FractionalPermission(kinds.UNIQUE, Fraction(1), state)
        return FractionalPermission(kind, total, state)
    pair = frozenset([piece_a.kind, piece_b.kind])
    if pair == frozenset([kinds.FULL, kinds.PURE]):
        # full + its pure residue: restores the stronger claim.
        kind = kinds.FULL if total < 1 else kinds.UNIQUE
        return FractionalPermission(kind, total, state)
    # Mixed merge falls back to the weaker kind.
    weaker = kinds.weakest([piece_a.kind, piece_b.kind])
    return FractionalPermission(weaker, total, state)


def initial_unique(state="ALIVE"):
    """The permission held right after ``new``: unique, fraction 1."""
    return FractionalPermission(kinds.UNIQUE, Fraction(1), state)
