"""Tier-1 bit-vector typestate checking (the checker fast path).

The full PLURAL checker (:mod:`repro.plural.checker`) interprets every
method with dict-based :class:`~repro.plural.context.Context` facts — a
worklist fixpoint that copies contexts at every transfer.  On scaled
corpora the check stage dominates once inference is cached, so this
module compiles each method into a *bit-vector machine plan*:

* object-typed locals become **lanes**; a lane's flow fact is a pair of
  small integers (permission-kind id, state id in a per-class interned
  state table), so a whole context is one flat tuple;
* every call site's requires clause becomes a precomputed **uint64
  state mask** (bit ``i`` set iff interned state ``i`` satisfies the
  clause) plus a kind-requirement id;
* every call's effect on a lane (:meth:`PluralChecker._after_call_perm`)
  is precompiled into a per-held-kind **transfer row** — new kind id and
  keep-state/constant-state action — so the fixpoint never consults
  specs;
* plans are deduplicated by structural signature: the corpus's thousands
  of structurally identical methods (``scan0..scanN``, filler ``opN``)
  share one fixpoint;
* all surviving site checks across *all* plans are batched into flat
  numpy arrays and swept in one vectorized pass
  (``np.take`` over a flattened kind-satisfaction table,
  ``np.bitwise_and`` of state bits against allowed masks).

Tier 1 never emits warnings.  It proves whole methods warning-free; a
method whose plan cannot be built exactly (aliasing inside loops,
rebound locals, >64 interned states) or whose plan has any failing site
is *residue* and is re-checked by the unmodified full checker, so the
tiered warning set is bit-identical to the full checker's by
construction (see DESIGN §14 for the exactness argument).
"""

from collections import deque

from repro.analysis import ir
from repro.analysis.cfg import build_cfg
from repro.permissions import kinds
from repro.permissions.splitting import best_retained
from repro.permissions.states import ALIVE
from repro.plural.context import Guard, StateTest, kind_join

try:  # pragma: no cover - exercised via available()
    import numpy as np
except Exception:  # pragma: no cover
    np = None


def available():
    """True when the vectorized sweep can run (numpy importable)."""
    return np is not None


# ---------------------------------------------------------------------------
# Kind encoding — shared across every machine
# ---------------------------------------------------------------------------

#: Kind ids 0..4 follow ALL_KINDS; 5 encodes "no permission" (None).
KIND_LIST = list(kinds.ALL_KINDS)
KIND_ID = {kind: index for index, kind in enumerate(KIND_LIST)}
KIND_ID[None] = len(KIND_LIST)
ID_KIND = KIND_LIST + [None]
NKIND = len(ID_KIND)

#: Requirement ids 0..4 are kind requirements; 5 is the field-store
#: "not read-only" requirement (held may also be None, which passes).
REQ_NOT_READONLY = len(KIND_LIST)
NREQ = REQ_NOT_READONLY + 1

ALL_ONES = (1 << 64) - 1

#: KSAT[held_id][req_id] — does holding ``held`` satisfy requirement
#: ``req``?  Mirrors the checker: a kind requirement needs a held kind
#: that ``kinds.satisfies`` it (None never does); the read-only check
#: passes unless the held kind is a READ_ONLY kind.
KSAT = [
    [
        (
            held is None or held not in kinds.READ_ONLY_KINDS
            if req == REQ_NOT_READONLY
            else held is not None and kinds.satisfies(held, ID_KIND[req])
        )
        for req in range(NREQ)
    ]
    for held in ID_KIND
]

#: KJOIN[a][b] — kind id of kind_join(a, b).
KJOIN = [
    [KIND_ID[kind_join(ID_KIND[a], ID_KIND[b])] for b in range(NKIND)]
    for a in range(NKIND)
]


class Residue(Exception):
    """A method (or plan) the bit abstraction cannot prove exactly."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# Per-class state machines
# ---------------------------------------------------------------------------


class Machine:
    """Interned state table + lattice tables for one class.

    ``space`` is the class's :class:`StateSpace` or None (undeclared
    class / unknown result class).  The lattice operations *call the
    space's own functions* over the interned names and memoize, so the
    integer semantics is the checker's semantics by construction.  A
    space-less machine mirrors ``refine_state(..., state_space=None)``
    (replace always) and the checker's join fallback (equal keeps,
    different goes to ALIVE).
    """

    def __init__(self, class_name, space):
        self.class_name = class_name
        self.space = space
        self.states = [ALIVE]
        self.index = {ALIVE: 0}
        if space is not None:
            for state in space.states:
                self.intern(state)
        self._join = {}
        self._meet = {}

    def intern(self, state):
        if state is None:
            state = ALIVE
        sid = self.index.get(state)
        if sid is None:
            if len(self.states) >= 64:
                raise Residue("state-overflow")
            sid = len(self.states)
            self.states.append(state)
            self.index[state] = sid
        return sid

    def join(self, a, b):
        """State id after a path join (mirrors Context.join)."""
        if a == b:
            return a
        key = (a, b)
        sid = self._join.get(key)
        if sid is None:
            if self.space is None:
                sid = 0  # different states, no space: ALIVE
            else:
                sid = self.intern(self.space.join(self.states[a], self.states[b]))
            self._join[key] = sid
        return sid

    def meet_or_replace(self, current, refined):
        """State id after refine_state(current, refined)."""
        key = (current, refined)
        sid = self._meet.get(key)
        if sid is None:
            if self.space is None:
                sid = refined
            else:
                met = self.space.meet(self.states[current], self.states[refined])
                sid = refined if met is None else self.intern(met)
            self._meet[key] = sid
        return sid

    def signature(self):
        """Structural identity (for plan dedup across same-shape classes)."""
        if self.space is None:
            hierarchy = None
        else:
            hierarchy = tuple(sorted(self.space.parent_of.items()))
        return (tuple(self.states), hierarchy)


# ---------------------------------------------------------------------------
# Method plans
# ---------------------------------------------------------------------------

# Fixpoint/reporting ops (per CFG node, executed in order):
#   ("site", lane_or_None, req_id, mask)           reporting only
#   ("update", lane, rows)  rows[held_id] = (new_kind_id, keep, const_sid)
#   ("bindc", lane, kind_id, state_id)             constant rebind
#   ("weaken", lane)                               exclusive -> share


class Plan:
    """One compiled method: lanes, node ops, edge refinements."""

    __slots__ = (
        "lanes",  # list of Machine, one per lane
        "entry",  # tuple of (kind_id, state_id) per lane
        "nodes",  # list of (ops, preds, succs); preds = ((idx|-1, refs), ...)
        "entry_idx",
        "exit_idx",
        "rpo",  # worklist seed order (indices into nodes)
        "site_count",
        "signature",
    )


class _PlanBuilder:
    """Compile one method into a :class:`Plan`, or raise :class:`Residue`."""

    def __init__(self, host, method_ref):
        self.host = host
        self.checker = host.checker
        self.ref = method_ref
        self.site_count = 0

    # -- classification ------------------------------------------------------

    def build(self):
        checker = self.checker
        ref = self.ref
        cfg = build_cfg(checker.program, ref.class_decl, ref.method_decl)
        reachable = cfg.reachable_nodes()
        rset = {node.node_id for node in reachable}

        # Entry lanes mirror entry_context: receiver + non-primitive params.
        spec = checker.spec_of(ref)
        entry_vars = []  # (var, kind, state_name, class_name)
        method = ref.method_decl
        if not method.is_static:
            clauses = spec.required_for("this")
            if clauses:
                clause = clauses[0]
                entry_vars.append(
                    ("this", clause.kind, clause.state, ref.class_decl.name)
                )
            else:
                entry_vars.append(
                    ("this", checker.default_this_kind, ALIVE, ref.class_decl.name)
                )
        for param in method.params:
            class_name = param.type.name if param.type is not None else None
            if not checker._is_protocol_class(class_name) and class_name not in (
                None,
            ):
                if param.type is not None and param.type.is_primitive:
                    continue
            clauses = spec.required_for(param.name)
            if clauses:
                clause = clauses[0]
                entry_vars.append((param.name, clause.kind, clause.state, class_name))
            else:
                entry_vars.append((param.name, None, ALIVE, class_name))
        entry_names = {}
        for var, kind, state, class_name in entry_vars:
            if var in entry_names:
                raise Residue("duplicate-entry-binding")
            entry_names[var] = (kind, state, class_name)

        instr_nodes = [n for n in reachable if n.kind == "instr"]

        # Iterate classification + alias validation to a fixpoint: object
        # binds can only flip to scalar (alias of a later-invalidated
        # var, field load whose receiver turns out unbound), so this
        # terminates.
        scalar_forced = set()
        rpo = cfg.reverse_postorder()
        tin, tout = _dominance_intervals(rpo)
        self.entry_id = cfg.entry.node_id
        cycle_cache = []

        def on_cycle_set():
            if not cycle_cache:
                cycle_cache.append(_cycle_nodes(rpo, tin, tout))
            return cycle_cache[0]

        for _ in range(len(instr_nodes) + len(entry_names) + 2):
            binder, alias, alias_node, klass = self._classify(
                instr_nodes, entry_names, scalar_forced
            )
            invalid = self._invalid_aliases(
                alias, alias_node, binder, tin, tout, on_cycle_set
            )
            if not invalid:
                break
            scalar_forced.update(invalid)
        else:  # pragma: no cover - fixpoint bound is structural
            raise Residue("classification-divergence")

        # Lane assignment: aliases share the aliased var's lane.
        lane_of = {}
        lanes = []

        def lane_for(var):
            if var in lane_of:
                return lane_of[var]
            if var in alias:
                lane = lane_for(alias[var])
            else:
                lane = len(lanes)
                lanes.append(self.host.machine(klass[var]))
            lane_of[var] = lane
            return lane

        for var in klass:
            lane_for(var)

        def_node = {}  # var -> node_id whose strict dominance means "bound"
        for var in entry_names:
            if var in klass:
                def_node[var] = cfg.entry.node_id
        for var, node_id in binder.items():
            def_node[var] = node_id
        for var, node_id in alias_node.items():
            if var in alias:
                def_node[var] = node_id

        def bound_at(var, node_id):
            """cell_of(var) is not None in the node's in-fact."""
            if var not in klass:
                return False
            d = def_node[var]
            return d != node_id and tin[d] <= tin[node_id] <= tout[d]

        # -- op construction with static test-environment propagation ----
        plan_idx = {node.node_id: i for i, node in enumerate(reachable)}
        ops = [[] for _ in reachable]
        edge_refs = {}  # (plan_idx, label) -> ((lane, sid), ...)
        env_out = {}
        for node in rpo:
            idx = plan_idx[node.node_id]
            preds = [
                (p, l) for p, l in node.preds if p.node_id in rset
            ]
            if len(preds) == 1:
                env = dict(env_out.get(preds[0][0].node_id, ()) or {})
            else:
                env = {}
            if node.kind == "branch":
                guard = env.get(node.cond_var)
                if guard is not None:
                    for label in ("true", "false"):
                        refs = []
                        for lane, state in guard.refinements(label == "true"):
                            if state is None:
                                continue
                            machine = lanes[lane]
                            refs.append((lane, machine.intern(state)))
                        if refs:
                            edge_refs[(idx, label)] = tuple(refs)
            elif node.kind == "instr":
                env = self._compile_instr(
                    node, env, ops[idx], klass, lane_of, lanes, bound_at
                )
            env_out[node.node_id] = env

        # Exit postcondition sites (kind-only, mirrors _check_exit).  An
        # unreachable exit (infinite loop) has a None in-fact in the full
        # checker, which skips the check — collect_sites does the same.
        if cfg.exit.node_id in plan_idx:
            exit_ops = ops[plan_idx[cfg.exit.node_id]]
            targets = ["this"] + [param.name for param in method.params]
            for target in targets:
                clauses = spec.ensured_for(target)
                if not clauses:
                    continue
                clause = clauses[0]
                lane = lane_of.get(target) if target in klass else None
                self._site(exit_ops, lane, KIND_ID[clause.kind], ALL_ONES)

        plan = Plan()
        plan.lanes = lanes
        entry_fact = [(KIND_ID[None], 0)] * len(lanes)
        for var, (kind, state, _class_name) in entry_names.items():
            if var in klass:
                lane = lane_of[var]
                entry_fact[lane] = (KIND_ID[kind], lanes[lane].intern(state))
        plan.entry = tuple(entry_fact)
        plan.nodes = []
        for node in reachable:
            idx = plan_idx[node.node_id]
            preds = []
            for pred, label in node.preds:
                pidx = plan_idx.get(pred.node_id, -1)
                refs = edge_refs.get((pidx, label)) if pidx >= 0 else None
                preds.append((pidx, refs))
            succs = tuple(
                plan_idx[s.node_id] for s, _ in node.succs if s.node_id in rset
            )
            plan.nodes.append((tuple(ops[idx]), tuple(preds), succs))
        plan.entry_idx = plan_idx[cfg.entry.node_id]
        plan.exit_idx = plan_idx.get(cfg.exit.node_id, -1)
        plan.rpo = tuple(plan_idx[node.node_id] for node in rpo)
        plan.site_count = self.site_count
        plan.signature = self._signature(plan)
        return plan

    def _classify(self, instr_nodes, entry_names, scalar_forced):
        """var -> class (object vars only), binder nodes, alias edges."""
        checker = self.checker
        klass = {}  # object var -> class name (may be None)
        binder = {}  # object var -> binding node_id (non-entry, non-alias)
        alias = {}  # var -> aliased var
        alias_node = {}  # alias var -> its assign node_id
        for var, (_kind, _state, class_name) in entry_names.items():
            klass[var] = class_name
        scalars = set(scalar_forced)

        def as_object(target, node_id, class_name):
            if target in scalars:
                raise Residue("class-switch")
            if target in entry_names:
                raise Residue("rebind-entry")
            if target in alias:
                raise Residue("multi-binding")
            if target in binder and binder[target] != node_id:
                raise Residue("multi-binding")
            if target in klass and klass[target] != class_name:
                raise Residue("multi-binding")
            binder[target] = node_id
            klass[target] = class_name

        def as_scalar(target):
            if target in klass and target not in scalar_forced:
                raise Residue("class-switch")
            if target in entry_names:
                raise Residue("rebind-entry")
            scalars.add(target)

        for _ in range(len(instr_nodes) + 2):
            changed = False
            for node in instr_nodes:
                instr = node.instr
                if not isinstance(instr, ir.Assign):
                    continue
                target = instr.target
                source = instr.source
                was_object = target in klass
                was_scalar = target in scalars
                if isinstance(source, ir.UseVar):
                    name = source.name
                    if target in scalar_forced:
                        as_scalar(target)
                    elif name in klass:
                        if target in alias and alias[target] != name:
                            raise Residue("multi-binding")
                        if target in binder or target in entry_names:
                            raise Residue("multi-binding")
                        alias[target] = name
                        alias_node[target] = node.node_id
                        klass[target] = klass[name]
                    elif name in scalars:
                        as_scalar(target)
                    # else: source still unclassified; retry next pass.
                elif isinstance(source, ir.NewObj):
                    as_object(target, node.node_id, source.class_name)
                elif isinstance(source, ir.Call):
                    callee = None
                    if source.static_class is not None:
                        callee = checker.program.resolve_method(
                            source.static_class,
                            source.method_name,
                            len(source.args),
                        )
                    if callee is None:
                        as_object(target, node.node_id, None)
                    else:
                        spec = checker.spec_of(callee)
                        class_name = checker._result_class(callee)
                        if spec.ensured_for("result") or checker._is_protocol_class(
                            class_name
                        ):
                            as_object(target, node.node_id, class_name)
                        else:
                            as_scalar(target)
                elif isinstance(source, ir.FieldLoad):
                    receiver = source.receiver
                    field_class = None
                    field_kind = None
                    if receiver is not None and receiver in klass:
                        owner_class = klass[receiver]
                        if owner_class is not None:
                            found = checker.program.lookup_field(
                                owner_class, source.field_name
                            )
                            if found is not None:
                                _owner, field = found
                                field_class = (
                                    field.type.name
                                    if field.type is not None
                                    else None
                                )
                                for annotation in field.annotations:
                                    if annotation.name == "Perm":
                                        field_kind = annotation.argument("value")
                    if checker._is_protocol_class(field_class):
                        if field_kind is not None and field_kind not in KIND_ID:
                            raise Residue("odd-field-kind")
                        as_object(target, node.node_id, field_class)
                    elif receiver is None or receiver in klass or receiver in scalars:
                        as_scalar(target)
                    # else: receiver unclassified; retry next pass.
                else:
                    as_scalar(target)
                if (target in klass) != was_object or (target in scalars) != was_scalar:
                    changed = True
            if not changed:
                break
        # Anything never classified is a never-assigned use: full binds
        # it scalar on first touch (cell_of None), so no lane.
        return binder, alias, alias_node, klass

    def _invalid_aliases(self, alias, alias_node, binder, tin, tout, on_cycle_set):
        """Aliases the lane abstraction cannot share exactly.

        ``y = x`` shares x's lane only when (a) x's binding strictly
        dominates the alias node (full's cell_of(x) is not None there,
        so bind_alias actually fires) and (b) the alias node is not on a
        CFG cycle (re-executing the alias against a re-bound x would
        decouple the runtime cells).  Everything else flips y to scalar
        — which is exactly full's bind_scalar fallback for (a); (b) is
        conservative residue-by-scalar (any later object use of y then
        routes the method to tier 2 via a kind-None site).
        """
        invalid = set()
        if not alias:
            return invalid
        on_cycle = on_cycle_set()
        entry_id = self.entry_id
        for target, node_id in alias_node.items():
            if target not in alias:
                continue
            source = alias[target]
            d = binder.get(source)
            if d is None:
                d = alias_node.get(source, entry_id)
            dominated = d != node_id and tin[d] <= tin[node_id] <= tout[d]
            if not dominated:
                invalid.add(target)
            elif node_id in on_cycle:
                raise Residue("alias-in-loop")
        return invalid

    # -- per-instruction op compilation --------------------------------------

    def _site(self, ops, lane, req_id, mask):
        ops.append(("site", lane, req_id, mask))
        self.site_count += 1

    def _compile_instr(self, node, env, ops, klass, lane_of, lanes, bound_at):
        checker = self.checker
        instr = node.instr
        if isinstance(instr, ir.Assign):
            target = instr.target
            source = instr.source
            if isinstance(source, ir.UseVar):
                # A valid alias shares the lane (no dataflow op); the
                # scalar fallback mirrors bind_scalar.  Either way the
                # test fact is copied from the source (bind_alias and
                # the scalar path both do), or dropped.
                guard = env.get(source.name)
                env.pop(target, None)
                if guard is not None:
                    env[target] = guard
                return env
            if isinstance(source, ir.NewObj):
                ctor = checker.program.resolve_constructor(
                    source.class_name, len(source.args)
                )
                if ctor is not None:
                    spec = checker.spec_of(ctor)
                    for param, arg in zip(ctor.method_decl.params, source.args):
                        self._call_target(
                            ops, node, arg, param.name, spec, ctor, klass,
                            lane_of, lanes, bound_at,
                        )
                lane = lane_of[target]
                ops.append(("bindc", lane, KIND_ID[kinds.UNIQUE], 0))
                self._kill_lane(env, lane)
                env.pop(target, None)
                return env
            if isinstance(source, ir.Call):
                return self._compile_call(
                    node, instr, source, env, ops, klass, lane_of, lanes, bound_at
                )
            if isinstance(source, ir.FieldLoad):
                if target in klass and target in lane_of:
                    # Classification decided "protocol field" from the
                    # receiver's static class; that only matches the
                    # checker when the receiver is actually bound here.
                    if source.receiver is None or not bound_at(
                        source.receiver, node.node_id
                    ):
                        raise Residue("field-load-unbound")
                    lane = lane_of[target]
                    field_kind = self._field_kind(source, klass)
                    ops.append(("bindc", lane, KIND_ID[field_kind], 0))
                    self._kill_lane(env, lane)
                env.pop(target, None)
                return env
            if isinstance(source, ir.UnOp) and source.op == "!":
                guard = env.get(source.operand)
                env.pop(target, None)
                if guard is not None:
                    env[target] = guard.negated()
                return env
            if isinstance(source, ir.BinOp) and source.op in ("&&", "||"):
                left = env.get(source.left)
                right = env.get(source.right)
                env.pop(target, None)
                if left is not None or right is not None:
                    neutral = Guard()
                    if source.op == "&&":
                        env[target] = Guard.conjunction(
                            left if left is not None else neutral,
                            right if right is not None else neutral,
                        )
                    else:
                        env[target] = Guard.disjunction(
                            left if left is not None else neutral,
                            right if right is not None else neutral,
                        )
                return env
            # Const and every other scalar source.
            env.pop(target, None)
            return env
        if isinstance(instr, ir.FieldStore):
            receiver = instr.receiver
            if receiver is not None and bound_at(receiver, node.node_id):
                self._site(ops, lane_of[receiver], REQ_NOT_READONLY, ALL_ONES)
            value = instr.value
            if value is not None and bound_at(value, node.node_id):
                ops.append(("weaken", lane_of[value]))
            return env
        if isinstance(instr, ir.ReturnInstr):
            spec = checker.spec_of(self.ref)
            clauses = spec.ensured_for("result")
            if clauses and instr.value is not None:
                clause = clauses[0]
                if bound_at(instr.value, node.node_id):
                    lane = lane_of[instr.value]
                    machine = lanes[lane]
                    mask = self._state_mask(
                        machine, clause, checker.state_space(machine.class_name)
                    )
                    self._site(ops, lane, KIND_ID[clause.kind], mask)
                else:
                    self._site(ops, None, KIND_ID[clause.kind], ALL_ONES)
            return env
        return env

    def _compile_call(
        self, node, instr, call, env, ops, klass, lane_of, lanes, bound_at
    ):
        checker = self.checker
        target = instr.target
        callee = None
        if call.static_class is not None:
            callee = checker.program.resolve_method(
                call.static_class, call.method_name, len(call.args)
            )
        if callee is None:
            lane = lane_of[target]
            ops.append(("bindc", lane, KIND_ID[None], 0))
            self._kill_lane(env, lane)
            env.pop(target, None)
            return env
        spec = checker.spec_of(callee)
        receiver = call.receiver
        if not callee.method_decl.is_static and receiver is not None:
            self._call_target(
                ops, node, receiver, "this", spec, callee, klass, lane_of,
                lanes, bound_at,
            )
        for param, arg in zip(callee.method_decl.params, call.args):
            self._call_target(
                ops, node, arg, param.name, spec, callee, klass, lane_of,
                lanes, bound_at,
            )
        result_clauses = spec.ensured_for("result")
        target_is_object = target in klass and target in lane_of
        if result_clauses:
            clause = result_clauses[0]
            lane = lane_of[target]
            machine = lanes[lane]
            ops.append(
                ("bindc", lane, KIND_ID[clause.kind], machine.intern(clause.state))
            )
            self._kill_lane(env, lane)
            env.pop(target, None)
        elif target_is_object:
            lane = lane_of[target]
            ops.append(("bindc", lane, KIND_ID[None], 0))
            self._kill_lane(env, lane)
            env.pop(target, None)
        else:
            env.pop(target, None)
        # Dynamic state test witness on the boolean result.
        if spec.is_state_test and receiver is not None:
            if target == receiver:
                bound = target_is_object or bool(result_clauses)
            else:
                bound = bound_at(receiver, node.node_id)
            if bound:
                lane = lane_of.get(target if target == receiver else receiver)
                if lane is not None:
                    env[target] = Guard.of(
                        StateTest(
                            lane, spec.true_indicates, spec.false_indicates
                        )
                    )
        return env

    def _call_target(
        self, ops, node, var, spec_target, spec, callee, klass, lane_of,
        lanes, bound_at,
    ):
        """Mirror _check_and_update_target for one argument/receiver."""
        checker = self.checker
        requires = spec.required_for(spec_target)
        ensures = spec.ensured_for(spec_target)
        bound = bound_at(var, node.node_id)
        lane = lane_of[var] if bound else None
        if requires:
            clause = requires[0]
            if lane is None:
                # Held kind is None on every path: MISSING_PERMISSION.
                self._site(ops, None, KIND_ID[clause.kind], ALL_ONES)
            else:
                machine = lanes[lane]
                space = checker.state_space(
                    machine.class_name or callee.class_decl.name
                ) or checker.state_space(callee.class_decl.name)
                mask = self._state_mask(machine, clause, space)
                self._site(ops, lane, KIND_ID[clause.kind], mask)
        if lane is None:
            return  # cell_of(var) is None: no ensures application
        machine = lanes[lane]
        rows = self._update_rows(machine, requires, ensures)
        if rows is not None:
            ops.append(("update", lane, rows))

    def _update_rows(self, machine, requires, ensures):
        """Precompiled _after_call_perm per held-kind id, or None if no-op."""
        required_kind = requires[0].kind if requires else None
        ensured = ensures[0] if ensures else None
        if required_kind is None and ensured is None:
            return None  # kind kept, borrowed_readonly keeps state
        borrowed_readonly = (
            required_kind is None or required_kind not in kinds.WRITING_KINDS
        )
        rows = []
        for held_id in range(NKIND):
            held = ID_KIND[held_id]
            if required_kind is not None and (
                held is None or not kinds.satisfies(held, required_kind)
            ):
                rows.append((held_id, True, 0))  # requires failed: unchanged
                continue
            if ensured is not None:
                if held is not None and kinds.satisfies(held, ensured.kind):
                    new_kind = held
                else:
                    new_kind = ensured.kind
            elif required_kind is not None:
                new_kind = best_retained(held, required_kind)
            else:
                new_kind = held
            if ensured is not None and not borrowed_readonly:
                rows.append((KIND_ID[new_kind], False, machine.intern(ensured.state)))
            elif borrowed_readonly:
                rows.append((KIND_ID[new_kind], True, 0))
            else:
                rows.append((KIND_ID[new_kind], False, 0))  # reset to ALIVE
        return tuple(rows)

    def _field_kind(self, load, klass):
        checker = self.checker
        receiver = load.receiver
        if receiver is None or receiver not in klass:
            return None
        owner_class = klass[receiver]
        if owner_class is None:
            return None
        found = checker.program.lookup_field(owner_class, load.field_name)
        if found is None:
            return None
        _owner, field = found
        for annotation in field.annotations:
            if annotation.name == "Perm":
                return annotation.argument("value")
        return None

    @staticmethod
    def _state_mask(machine, clause, space):
        """uint64 of interned states satisfying the clause's state."""
        if clause.state == ALIVE or space is None:
            return ALL_ONES
        machine.intern(clause.state)
        mask = 0
        for sid, name in enumerate(machine.states):
            if space.satisfies(name, clause.state):
                mask |= 1 << sid
        return mask

    @staticmethod
    def _kill_lane(env, lane):
        """Drop guard facts about a freshly re-bound lane (stale cell)."""
        for var in list(env):
            guard = env[var]
            true_refs = tuple(
                (l, s) for l, s in guard.true_refinements if l != lane
            )
            false_refs = tuple(
                (l, s) for l, s in guard.false_refinements if l != lane
            )
            if (true_refs, false_refs) != (
                guard.true_refinements,
                guard.false_refinements,
            ):
                if true_refs or false_refs:
                    env[var] = Guard(true_refs, false_refs)
                else:
                    del env[var]

    def _signature(self, plan):
        machine_ids = tuple(
            self.host.machine_sig_id(machine) for machine in plan.lanes
        )
        return (
            machine_ids,
            plan.entry,
            tuple(plan.nodes),
            plan.entry_idx,
            plan.exit_idx,
            plan.rpo,
        )


# ---------------------------------------------------------------------------
# Graph helpers
# ---------------------------------------------------------------------------


def _dominance_intervals(rpo):
    """Dominator-tree preorder intervals for O(1) dominance queries.

    Cooper–Harvey–Kennedy iterative idoms over reverse postorder, then a
    preorder numbering of the dominator tree: ``d`` dominates ``n`` iff
    ``tin[d] <= tin[n] <= tout[d]`` (reflexive).  Self-loop edges are
    skipped — a path through a self edge reaches the node first, so they
    never change dominators.
    """
    index = {node.node_id: i for i, node in enumerate(rpo)}
    preds = [
        [index[p.node_id] for p, _ in node.preds if p.node_id in index]
        for node in rpo
    ]
    idom = [None] * len(rpo)
    if rpo:
        idom[0] = 0
    changed = True
    while changed:
        changed = False
        for i in range(1, len(rpo)):
            new = None
            for p in preds[i]:
                if p == i or idom[p] is None:
                    continue
                if new is None:
                    new = p
                    continue
                a, b = new, p
                while a != b:
                    while a > b:
                        a = idom[a]
                    while b > a:
                        b = idom[b]
                new = a
            if new is not None and idom[i] != new:
                idom[i] = new
                changed = True
    children = [[] for _ in rpo]
    for i in range(1, len(rpo)):
        if idom[i] is not None:
            children[idom[i]].append(i)
    tin = {}
    tout = {}
    clock = 0
    stack = [(0, False)] if rpo else []
    while stack:
        i, done = stack.pop()
        node_id = rpo[i].node_id
        if done:
            tout[node_id] = clock
            continue
        clock += 1
        tin[node_id] = clock
        stack.append((i, True))
        for child in reversed(children[i]):
            stack.append((child, False))
    return tin, tout


def _cycle_nodes(rpo, tin, tout):
    """node_ids lying on some CFG cycle.

    Java's structured control flow lowers to reducible CFGs, where every
    cycle is a natural loop of a back edge ``u -> h`` with ``h``
    dominating ``u``; the on-cycle set is the union of natural-loop
    bodies, gathered by reverse reachability from ``u`` stopping at
    ``h``.  A retreating edge whose target does not dominate its source
    would mean an irreducible region — punt the method to tier 2 rather
    than reason imprecisely about it.
    """
    index = {node.node_id: i for i, node in enumerate(rpo)}
    by_id = {node.node_id: node for node in rpo}
    result = set()
    for node in rpo:
        u = node.node_id
        for succ, _label in node.succs:
            h = succ.node_id
            if h not in index or index[h] > index[u]:
                continue
            if not (tin[h] <= tin[u] <= tout[h]):
                raise Residue("irreducible-cycle")
            if h == u:
                result.add(u)
                continue
            result.add(h)
            stack = [u]
            seen = {h, u}
            result.add(u)
            while stack:
                current = by_id[stack.pop()]
                for pred, _ in current.preds:
                    p = pred.node_id
                    if p in index and p not in seen:
                        seen.add(p)
                        result.add(p)
                        stack.append(p)
    return result


# ---------------------------------------------------------------------------
# Fixpoint + reporting over a plan
# ---------------------------------------------------------------------------


def _transfer(fact, ops):
    """Apply a node's non-site ops to a fact tuple."""
    if not ops:
        return fact
    values = None
    for op in ops:
        tag = op[0]
        if tag == "site":
            continue
        if values is None:
            values = list(fact)
        if tag == "update":
            lane, rows = op[1], op[2]
            kind_id, state_id = values[lane]
            new_kind, keep, const = rows[kind_id]
            values[lane] = (new_kind, state_id if keep else const)
        elif tag == "bindc":
            values[op[1]] = (op[2], op[3])
        elif tag == "weaken":
            lane = op[1]
            kind_id, state_id = values[lane]
            if ID_KIND[kind_id] in kinds.EXCLUSIVE_KINDS:
                values[lane] = (KIND_ID[kinds.SHARE], state_id)
    return fact if values is None else tuple(values)


def _join(plan, left, right):
    if left is None:
        return right
    if right is None:
        return left
    if left == right:
        return left
    lanes = plan.lanes
    out = []
    for lane, (a, b) in enumerate(zip(left, right)):
        if a == b:
            out.append(a)
            continue
        machine = lanes[lane]
        out.append((KJOIN[a[0]][b[0]], machine.join(a[1], b[1])))
    return tuple(out)


def _apply_refs(plan, fact, refs):
    values = list(fact)
    for lane, sid in refs:
        kind_id, state_id = values[lane]
        values[lane] = (kind_id, plan.lanes[lane].meet_or_replace(state_id, sid))
    return tuple(values)


def run_plan(plan):
    """Fixpoint a plan; returns (in_facts, out_facts) lists."""
    n = len(plan.nodes)
    in_facts = [None] * n
    out_facts = [None] * n
    in_facts[plan.entry_idx] = plan.entry
    worklist = deque(plan.rpo)
    queued = set(plan.rpo)
    while worklist:
        idx = worklist.popleft()
        queued.discard(idx)
        ops, preds, succs = plan.nodes[idx]
        if idx != plan.entry_idx:
            incoming = None
            first = True
            for pidx, refs in preds:
                fact = out_facts[pidx] if pidx >= 0 else None
                if fact is not None and refs:
                    fact = _apply_refs(plan, fact, refs)
                incoming = fact if first else _join(plan, incoming, fact)
                first = False
            in_facts[idx] = incoming
        fact = in_facts[idx]
        new_out = None if fact is None else _transfer(fact, ops)
        if new_out != out_facts[idx]:
            out_facts[idx] = new_out
            for sidx in succs:
                if sidx not in queued:
                    queued.add(sidx)
                    worklist.append(sidx)
    return in_facts, out_facts


def collect_sites(plan, in_facts):
    """(held_id, state_bit, req_id, mask) records for every site check."""
    records = []
    for idx, (ops, _preds, _succs) in enumerate(plan.nodes):
        fact = in_facts[idx]
        if fact is None or not ops:
            continue
        values = None
        for op in ops:
            tag = op[0]
            if tag == "site":
                _tag, lane, req_id, mask = op
                if lane is None:
                    records.append((KIND_ID[None], 1, req_id, mask))
                else:
                    kind_id, state_id = (
                        values[lane] if values is not None else fact[lane]
                    )
                    records.append((kind_id, 1 << state_id, req_id, mask))
                continue
            if values is None:
                values = list(fact)
            if tag == "update":
                lane, rows = op[1], op[2]
                kind_id, state_id = values[lane]
                new_kind, keep, const = rows[kind_id]
                values[lane] = (new_kind, state_id if keep else const)
            elif tag == "bindc":
                values[op[1]] = (op[2], op[3])
            elif tag == "weaken":
                lane = op[1]
                kind_id, state_id = values[lane]
                if ID_KIND[kind_id] in kinds.EXCLUSIVE_KINDS:
                    values[lane] = (KIND_ID[kinds.SHARE], state_id)
    return records


# ---------------------------------------------------------------------------
# The tier-1 driver
# ---------------------------------------------------------------------------

#: Flat KSAT for the vectorized sweep (held_id * NREQ + req_id).
_KSAT_FLAT = [KSAT[h][r] for h in range(NKIND) for r in range(NREQ)]


class TierOneOutcome:
    """Partition of a program's methods after the tier-1 sweep."""

    __slots__ = (
        "proven",
        "residue",  # list of (method_ref, reason), program order
        "tier1_sites",
        "tier2_sites",
        "residue_reasons",
        "plans_built",
        "plans_shared",
    )

    def __init__(self):
        self.proven = []
        self.residue = []
        self.tier1_sites = 0
        self.tier2_sites = 0
        self.residue_reasons = {}
        self.plans_built = 0
        self.plans_shared = 0


class BitVectorChecker:
    """Compiles methods against a :class:`PluralChecker`'s spec view."""

    def __init__(self, checker):
        if np is None:
            raise RuntimeError(
                "bit-vector tier requires numpy; use --check-tier full"
            )
        self.checker = checker
        self._machines = {}
        self._machine_sig_ids = {}

    def machine(self, class_name):
        machine = self._machines.get(class_name)
        if machine is None:
            machine = Machine(class_name, self.checker.state_space(class_name))
            self._machines[class_name] = machine
        return machine

    def machine_sig_id(self, machine):
        sig = machine.signature()
        sig_id = self._machine_sig_ids.get(sig)
        if sig_id is None:
            sig_id = len(self._machine_sig_ids)
            self._machine_sig_ids[sig] = sig_id
        return sig_id

    def partition(self, methods, failures=None):
        """Prove methods safe in bulk; everything else is residue.

        ``methods`` is an ordered iterable of method refs (program
        order); the residue list preserves that order so the caller's
        warning concatenation matches the full checker's.
        """
        from repro.java.symbols import method_key
        from repro.resilience.faults import maybe_fault

        outcome = TierOneOutcome()
        entries = []  # (ref, plan | None, reason | None, site_count)
        plan_of_sig = {}
        rep_plans = []  # unique plans, in first-seen order
        for ref in methods:
            builder = None
            try:
                maybe_fault("check", method_key(ref))
                builder = _PlanBuilder(self, ref)
                plan = builder.build()
            except Residue as residue:
                sites = builder.site_count if builder is not None else 0
                entries.append((ref, None, residue.reason, sites))
                continue
            except Exception as exc:
                if failures is not None:
                    failures.record(
                        "check", method_key(ref), exc, "tier-fallback"
                    )
                entries.append(
                    (ref, None, "fault:%s" % type(exc).__name__, 0)
                )
                continue
            rep = plan_of_sig.get(plan.signature)
            if rep is None:
                plan_of_sig[plan.signature] = plan
                rep_plans.append(plan)
                outcome.plans_built += 1
            else:
                plan = rep
                outcome.plans_shared += 1
            entries.append((ref, plan, None, plan.site_count))

        # Fixpoint each unique plan once; batch all site records.
        held_col = []
        bits_col = []
        req_col = []
        mask_col = []
        plan_col = []
        plan_ids = {}
        failed_plan = {}
        for plan in rep_plans:
            plan_ids[id(plan)] = len(plan_ids)
            try:
                in_facts, _out = run_plan(plan)
                records = collect_sites(plan, in_facts)
            except Exception as exc:
                failed_plan[id(plan)] = "fault:%s" % type(exc).__name__
                continue
            pid = plan_ids[id(plan)]
            for held, bit, req, mask in records:
                held_col.append(held)
                bits_col.append(bit)
                req_col.append(req)
                mask_col.append(mask)
                plan_col.append(pid)

        unsafe = self._sweep(
            len(rep_plans), held_col, bits_col, req_col, mask_col, plan_col
        )

        for entry in entries:
            ref, plan, reason, sites = entry
            if plan is not None:
                pid = plan_ids[id(plan)]
                if id(plan) in failed_plan:
                    reason = failed_plan[id(plan)]
                elif unsafe[pid]:
                    reason = "unproven-site"
            if reason is None:
                outcome.proven.append(ref)
                outcome.tier1_sites += sites
            else:
                outcome.residue.append((ref, reason))
                outcome.tier2_sites += sites
                outcome.residue_reasons[reason] = (
                    outcome.residue_reasons.get(reason, 0) + 1
                )
        return outcome

    @staticmethod
    def _sweep(n_plans, held_col, bits_col, req_col, mask_col, plan_col):
        """One vectorized pass over every site of every plan."""
        if not held_col:
            return [False] * n_plans
        held = np.asarray(held_col, dtype=np.int64)
        req = np.asarray(req_col, dtype=np.int64)
        bits = np.asarray(bits_col, dtype=np.uint64)
        masks = np.asarray(mask_col, dtype=np.uint64)
        plan_ids = np.asarray(plan_col, dtype=np.int64)
        ksat = np.asarray(_KSAT_FLAT, dtype=bool)
        kind_ok = np.take(ksat, held * NREQ + req)
        state_ok = np.bitwise_and(bits, masks) != np.uint64(0)
        failing = ~(kind_ok & state_ok)
        counts = np.zeros(n_plans, dtype=np.int64)
        np.add.at(counts, plan_ids[failing], 1)
        return (counts > 0).tolist()
