"""PLURAL's local fractional-permission inference (Table 3 baseline).

PLURAL does not require annotations on local variables: within a method
body it *infers* which fractions of permissions are consumed and returned
by each program point, "finding a satisfying assignment for all of the
various permission constraints imposed by all of the called methods and
returned permissions.  The underlying algorithm relies upon Gaussian
Elimination" (paper §4.2, citing Bierhoff's thesis ch. 5).

We reproduce that algorithm: the method's PFG induces a linear system
over fraction variables (one per PFG edge) with conservation equations
at splits and merges, boundary conditions at sources (parameters carry
fraction 1) and demand constraints at call preconditions.  The system is
solved exactly over rationals by Gaussian elimination — O(n³) in the
number of flow edges, which is what makes the *inlined* whole-program
variant slow compared to ANEK's modular solves (the paper's 181 s vs
22 s contrast).
"""

import time
from fractions import Fraction

from repro.core.pfg import PFGNodeKind
from repro.core.pfg_builder import build_pfg


class LinearSystem:
    """An exact linear system Ax = b over rationals."""

    def __init__(self, variable_count):
        self.variable_count = variable_count
        self.rows = []  # each row: (coeffs list, rhs)

    def add_equation(self, coeffs, rhs):
        """``coeffs`` maps variable index -> coefficient."""
        row = [Fraction(0)] * self.variable_count
        for index, value in coeffs.items():
            row[index] = Fraction(value)
        self.rows.append((row, Fraction(rhs)))

    def gaussian_eliminate(self):
        """Reduce to row echelon form; returns (solution, consistent).

        Free variables default to 0; inconsistent systems return
        ``(None, False)``.
        """
        matrix = [row[:] + [rhs] for row, rhs in self.rows]
        rows = len(matrix)
        cols = self.variable_count
        pivot_row = 0
        pivot_cols = []
        for col in range(cols):
            pivot = None
            for row_index in range(pivot_row, rows):
                if matrix[row_index][col] != 0:
                    pivot = row_index
                    break
            if pivot is None:
                continue
            matrix[pivot_row], matrix[pivot] = matrix[pivot], matrix[pivot_row]
            pivot_value = matrix[pivot_row][col]
            matrix[pivot_row] = [
                value / pivot_value for value in matrix[pivot_row]
            ]
            for row_index in range(rows):
                if row_index != pivot_row and matrix[row_index][col] != 0:
                    factor = matrix[row_index][col]
                    matrix[row_index] = [
                        value - factor * pivot_value2
                        for value, pivot_value2 in zip(
                            matrix[row_index], matrix[pivot_row]
                        )
                    ]
            pivot_cols.append(col)
            pivot_row += 1
            if pivot_row == rows:
                break
        # Consistency: no row of the form 0 = nonzero.
        for row in matrix:
            if all(value == 0 for value in row[:-1]) and row[-1] != 0:
                return None, False
        solution = [Fraction(0)] * cols
        for row_index, col in enumerate(pivot_cols):
            solution[col] = matrix[row_index][-1] - sum(
                matrix[row_index][other] * solution[other]
                for other in range(col + 1, cols)
            )
        return solution, True


class LocalInferenceResult:
    """Outcome of local fraction inference on one method."""

    def __init__(self, method_ref, satisfiable, fractions, equations,
                 variables, elapsed_seconds):
        self.method_ref = method_ref
        self.satisfiable = satisfiable
        self.fractions = fractions  # edge index -> Fraction, or None
        self.equations = equations
        self.variables = variables
        self.elapsed_seconds = elapsed_seconds


class LocalFractionInference:
    """Builds and solves the fraction system for one method."""

    #: Fraction of the incoming permission demanded by a call that needs
    #: a non-exclusive piece (the checker's split-in-half discipline).
    SHARED_DEMAND = Fraction(1, 2)

    def __init__(self, program):
        self.program = program

    def infer_method(self, method_ref, pfg=None):
        start = time.perf_counter()
        if pfg is None:
            pfg = build_pfg(self.program, method_ref)
        edge_index = {id(edge): position for position, edge in enumerate(pfg.edges)}
        system = LinearSystem(len(pfg.edges))
        # Conservation: at every interior node, incoming fraction equals
        # outgoing fraction (splits divide, merges recombine).
        for node in pfg.nodes:
            incoming = [edge_index[id(e)] for e in node.in_edges]
            outgoing = [edge_index[id(e)] for e in node.out_edges]
            if node.kind == PFGNodeKind.PARAM_PRE:
                # Parameters enter with the whole fraction.
                for position in outgoing:
                    system.add_equation({position: 1}, 1)
                continue
            if node.kind in (PFGNodeKind.NEW, PFGNodeKind.FIELD_LOAD,
                             PFGNodeKind.CALL_RESULT):
                for position in outgoing:
                    system.add_equation({position: 1}, 1)
                continue
            if node.kind == PFGNodeKind.CALL_POST:
                # The callee returns exactly what the matching pre consumed;
                # handled at the call's merge below via conservation.
                continue
            if not incoming or not outgoing:
                continue
            coeffs = {}
            for position in incoming:
                coeffs[position] = coeffs.get(position, 0) + 1
            for position in outgoing:
                coeffs[position] = coeffs.get(position, 0) - 1
            system.add_equation(coeffs, 0)
        # Demands: call preconditions consume a definite share.
        for node in pfg.nodes:
            if node.kind != PFGNodeKind.CALL_PRE:
                continue
            for edge in node.in_edges:
                system.add_equation(
                    {edge_index[id(edge)]: 1}, self.SHARED_DEMAND
                )
        solution, consistent = system.gaussian_eliminate()
        elapsed = time.perf_counter() - start
        return LocalInferenceResult(
            method_ref,
            consistent,
            solution,
            len(system.rows),
            system.variable_count,
            elapsed,
        )

    def infer_program(self, program=None):
        """Run on every concrete method; returns results + total time."""
        target = program or self.program
        results = []
        for method_ref in target.methods_with_bodies():
            results.append(self.infer_method(method_ref))
        return results
