"""Permission contexts — the flow facts of the PLURAL checker.

A context maps variables to *cells* (object identities established by the
local must-alias discipline: copies share a cell, allocations and call
results mint fresh cells) and cells to their current permission, a
``(kind, state, class_name)`` triple where ``kind`` may be ``None`` for
"no permission available".

Contexts also carry *state-test facts*: boolean variables whose value
reveals a cell's state (the result of ``hasNext()``-style methods), which
the checker consumes at branches for state refinement.
"""

import itertools

from repro.permissions import kinds
from repro.permissions.states import ALIVE

_CELL_COUNTER = itertools.count()


def fresh_cell(tag="cell"):
    return (tag, next(_CELL_COUNTER))


class Perm:
    """The permission a context holds for one cell."""

    __slots__ = ("kind", "state", "class_name")

    def __init__(self, kind, state=ALIVE, class_name=None):
        self.kind = kind  # one of kinds.ALL_KINDS or None
        self.state = state
        self.class_name = class_name

    def replace(self, kind=_CELL_COUNTER, state=_CELL_COUNTER):
        """Copy with replaced fields (sentinel default keeps current)."""
        new_kind = self.kind if kind is _CELL_COUNTER else kind
        new_state = self.state if state is _CELL_COUNTER else state
        return Perm(new_kind, new_state, self.class_name)

    def __eq__(self, other):
        return (
            isinstance(other, Perm)
            and self.kind == other.kind
            and self.state == other.state
            and self.class_name == other.class_name
        )

    def __hash__(self):
        return hash((self.kind, self.state, self.class_name))

    def __repr__(self):
        return "Perm(%s, %s, %s)" % (self.kind, self.state, self.class_name)


NO_PERM = Perm(None, ALIVE, None)


class StateTest:
    """A boolean variable that witnesses a cell's abstract state."""

    __slots__ = ("cell", "true_state", "false_state")

    def __init__(self, cell, true_state, false_state):
        self.cell = cell
        self.true_state = true_state
        self.false_state = false_state

    def negated(self):
        return StateTest(self.cell, self.false_state, self.true_state)

    def refinements(self, outcome):
        """(cell, state) refinements implied by this test's outcome."""
        state = self.true_state if outcome else self.false_state
        if state is None:
            return []
        return [(self.cell, state)]

    def __eq__(self, other):
        return (
            isinstance(other, StateTest)
            and self.cell == other.cell
            and self.true_state == other.true_state
            and self.false_state == other.false_state
        )

    def __hash__(self):
        return hash((self.cell, self.true_state, self.false_state))


class Guard:
    """Compound boolean knowledge built from state tests.

    ``true_refinements`` are the (cell, state) facts implied when the
    guard evaluates true; ``false_refinements`` when it evaluates false.
    Conjunction keeps only true-side facts (``a && b`` true implies both
    tests passed; false implies nothing about either), disjunction the
    dual, and negation swaps the sides.
    """

    __slots__ = ("true_refinements", "false_refinements")

    def __init__(self, true_refinements=(), false_refinements=()):
        self.true_refinements = tuple(true_refinements)
        self.false_refinements = tuple(false_refinements)

    @classmethod
    def of(cls, test):
        """Normalize a StateTest (or Guard) into a Guard."""
        if isinstance(test, Guard):
            return test
        return cls(test.refinements(True), test.refinements(False))

    @classmethod
    def conjunction(cls, left, right):
        left, right = cls.of(left), cls.of(right)
        return cls(left.true_refinements + right.true_refinements, ())

    @classmethod
    def disjunction(cls, left, right):
        left, right = cls.of(left), cls.of(right)
        return cls((), left.false_refinements + right.false_refinements)

    def negated(self):
        return Guard(self.false_refinements, self.true_refinements)

    def refinements(self, outcome):
        return list(
            self.true_refinements if outcome else self.false_refinements
        )

    def __eq__(self, other):
        return (
            isinstance(other, Guard)
            and self.true_refinements == other.true_refinements
            and self.false_refinements == other.false_refinements
        )

    def __hash__(self):
        return hash((self.true_refinements, self.false_refinements))


def kind_join(kind_a, kind_b):
    """Strongest kind both can stand in for (lattice join toward weak).

    ``None`` (no permission) joined with anything is ``None`` — a
    permission is only available after a join if available on all paths.
    """
    if kind_a is None or kind_b is None:
        return None
    if kind_a == kind_b:
        return kind_a
    common = kinds.satisfying_common(kind_a, kind_b)
    if not common:
        return None
    return kinds.strongest(common)


class Context:
    """An immutable-by-convention flow fact."""

    __slots__ = ("bindings", "perms", "tests")

    def __init__(self, bindings=None, perms=None, tests=None):
        self.bindings = dict(bindings or {})  # var -> cell
        self.perms = dict(perms or {})  # cell -> Perm
        self.tests = dict(tests or {})  # var -> StateTest

    def copy(self):
        return Context(self.bindings, self.perms, self.tests)

    # -- lookups ---------------------------------------------------------------

    def cell_of(self, var):
        return self.bindings.get(var)

    def perm_of_var(self, var):
        cell = self.bindings.get(var)
        if cell is None:
            return NO_PERM
        return self.perms.get(cell, NO_PERM)

    def perm_of_cell(self, cell):
        return self.perms.get(cell, NO_PERM)

    # -- updates (return new contexts) -------------------------------------------

    def bind_fresh(self, var, perm, tag="cell"):
        """Bind ``var`` to a new cell holding ``perm``."""
        new = self.copy()
        cell = fresh_cell(tag)
        new.bindings[var] = cell
        new.perms[cell] = perm
        new.tests.pop(var, None)
        return new

    def bind_alias(self, var, other_var):
        """Make ``var`` an alias of ``other_var``'s cell."""
        new = self.copy()
        cell = new.bindings.get(other_var)
        if cell is None:
            cell = fresh_cell("unknown")
            new.bindings[other_var] = cell
        new.bindings[var] = cell
        if other_var in new.tests:
            new.tests[var] = new.tests[other_var]
        else:
            new.tests.pop(var, None)
        return new

    def bind_scalar(self, var):
        """Bind ``var`` to a non-object (scalar) value: no cell."""
        new = self.copy()
        new.bindings.pop(var, None)
        new.tests.pop(var, None)
        return new

    def set_perm(self, cell, perm):
        new = self.copy()
        new.perms[cell] = perm
        return new

    def set_test(self, var, state_test):
        new = self.copy()
        new.tests[var] = state_test
        return new

    def refine_state(self, cell, state, state_space=None):
        """Strengthen the cell's known state (used on state-test branches)."""
        if state is None:
            return self
        perm = self.perms.get(cell)
        if perm is None:
            return self
        refined = state
        if state_space is not None:
            met = state_space.meet(perm.state, state)
            refined = met if met is not None else state
        new = self.copy()
        new.perms[cell] = perm.replace(state=refined)
        return new

    # -- lattice operations ----------------------------------------------------------

    def join(self, other, state_space_of=None):
        """Path join: keep only agreements; weaken kinds; join states."""
        bindings = {}
        perms = {}
        tests = {}
        # Insertion-order iteration keeps the joined context's dict order
        # (and thus any downstream iteration) hash-seed independent.
        for var in [v for v in self.bindings if v in other.bindings]:
            cell_a = self.bindings[var]
            cell_b = other.bindings[var]
            perm_a = self.perms.get(cell_a, NO_PERM)
            perm_b = other.perms.get(cell_b, NO_PERM)
            if cell_a == cell_b:
                cell = cell_a
            else:
                cell = ("join", var)
            bindings[var] = cell
            joined_kind = kind_join(perm_a.kind, perm_b.kind)
            class_name = perm_a.class_name or perm_b.class_name
            if perm_a.state == perm_b.state:
                state = perm_a.state
            else:
                state = ALIVE
                if state_space_of is not None and class_name is not None:
                    space = state_space_of(class_name)
                    if space is not None:
                        state = space.join(perm_a.state, perm_b.state)
            existing = perms.get(cell)
            candidate = Perm(joined_kind, state, class_name)
            if existing is not None and existing != candidate:
                perms[cell] = Perm(
                    kind_join(existing.kind, candidate.kind), ALIVE, class_name
                )
            else:
                perms[cell] = candidate
        for var in [v for v in self.tests if v in other.tests]:
            if self.tests[var] == other.tests[var] and var in bindings:
                tests[var] = self.tests[var]
        return Context(bindings, perms, tests)

    def __eq__(self, other):
        if not isinstance(other, Context):
            return False
        # Compare up to cell renaming: project to var -> (perm) plus the
        # must-alias partition of variables.
        return (
            self._signature() == other._signature()
        )

    def _signature(self):
        groups = {}
        for var, cell in self.bindings.items():
            groups.setdefault(cell, []).append(var)
        partition = frozenset(
            frozenset(group) for group in groups.values()
        )
        var_perms = frozenset(
            (var, self.perm_of_var(var)) for var in self.bindings
        )
        # Tests compare up to cell renaming: cells are canonicalized to
        # the variable group bound to them.
        canonical_cell = {
            cell: frozenset(group) for cell, group in groups.items()
        }

        def canonical(test):
            guard = Guard.of(test)
            return (
                tuple(
                    (canonical_cell.get(cell, frozenset()), state)
                    for cell, state in guard.true_refinements
                ),
                tuple(
                    (canonical_cell.get(cell, frozenset()), state)
                    for cell, state in guard.false_refinements
                ),
            )

        test_sig = frozenset(
            (var, canonical(test)) for var, test in self.tests.items()
        )
        return (partition, var_perms, test_sig)

    def __hash__(self):
        return hash(self._signature())

    def __repr__(self):
        parts = [
            "%s:%s" % (var, self.perm_of_var(var)) for var in sorted(self.bindings)
        ]
        return "Context(%s)" % ", ".join(parts)
