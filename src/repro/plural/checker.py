"""The PLURAL modular typestate checker.

Checks one method at a time against the access-permission specifications
attached to the methods it calls (paper §2).  The flow fact is a
:class:`repro.plural.context.Context`; the transfer function implements:

* permission creation at ``new`` (unique) and at specified call results;
* permission checking and splitting at call sites with ``requires``;
* abstract-state tracking through ``ensures`` clauses;
* branch-sensitive refinement at dynamic state tests
  (``@TrueIndicates``/``@FalseIndicates``), including negation and
  composition through ``&&``/``||`` (``it.hasNext() && go`` refines the
  iterator on the true branch);
* field-write checks (no store through read-only permissions).

Soundness posture matches PLURAL: anything unknown (calls into
unannotated code, unknown receivers) yields *no* permission, and uses of
permission-less references raise warnings.
"""

import time
from dataclasses import dataclass, field

from repro.analysis import ir
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import ForwardAnalysis
from repro.permissions import kinds
from repro.permissions.fractions import FractionalPermission
from repro.permissions.spec import spec_of_method
from repro.permissions.splitting import best_retained
from repro.permissions.states import ALIVE, state_space_of_class
from repro.plural.context import NO_PERM, Context, Guard, Perm, StateTest
from repro.plural.warnings import Warning, WarningKind, dedupe

#: Classes treated as having no protocol (scalars, strings, boxed types).
_VALUE_CLASSES = frozenset(
    ["String", "Integer", "Long", "Boolean", "Character", "Object", "Double"]
)


class _CheckerAnalysis(ForwardAnalysis):
    """The dataflow instance for one method."""

    def __init__(self, checker, method_ref, sink=None):
        self.checker = checker
        self.method_ref = method_ref
        self.sink = sink  # list collecting warnings, or None during fixpoint

    def initial(self):
        return None  # unreached

    def boundary(self):
        return self.checker.entry_context(self.method_ref)

    def join(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left.join(right, state_space_of=self.checker.state_space)

    def transfer(self, node, fact, edge_label=None):
        if fact is None:
            return None
        return self.checker.transfer(self.method_ref, node, fact, self.sink)

    def edge_transfer(self, src, dst, label, fact):
        if fact is None or src.kind != "branch" or label not in ("true", "false"):
            return fact
        test = fact.tests.get(src.cond_var)
        if test is None:
            return fact
        for cell, state in test.refinements(label == "true"):
            perm = fact.perm_of_cell(cell)
            space = self.checker.state_space(perm.class_name)
            fact = fact.refine_state(cell, state, space)
        return fact


class PluralChecker:
    """Modular checker over a resolved program."""

    def __init__(self, program, default_this_kind=kinds.FULL):
        self.program = program
        self.default_this_kind = default_this_kind
        self._spaces = {}
        self._spec_cache = {}

    # -- lookup helpers ----------------------------------------------------------

    def state_space(self, class_name):
        if class_name is None:
            return None
        if class_name not in self._spaces:
            decl = self.program.lookup_class(class_name)
            self._spaces[class_name] = (
                state_space_of_class(decl) if decl is not None else None
            )
        return self._spaces[class_name]

    def spec_of(self, method_ref):
        key = method_ref
        if key not in self._spec_cache:
            spec = spec_of_method(method_ref.method_decl)
            if spec.is_empty:
                # A supertype's spec takes precedence for overriding methods.
                for super_decl in self.program.supertypes(method_ref.class_decl):
                    for method in super_decl.find_method(
                        method_ref.method_decl.name
                    ):
                        super_spec = spec_of_method(method)
                        if not super_spec.is_empty:
                            spec = super_spec
                            break
                    if not spec.is_empty:
                        break
            self._spec_cache[key] = spec
        return self._spec_cache[key]

    def _is_protocol_class(self, class_name):
        if class_name is None or class_name in _VALUE_CLASSES:
            return False
        return self.program.lookup_class(class_name) is not None

    # -- entry context -------------------------------------------------------------

    def entry_context(self, method_ref):
        """The context assumed at method entry, from the method's spec."""
        spec = self.spec_of(method_ref)
        ctx = Context()
        method = method_ref.method_decl
        # Receiver.
        if not method.is_static:
            clauses = spec.required_for("this")
            if clauses:
                clause = clauses[0]
                perm = Perm(clause.kind, clause.state, method_ref.class_decl.name)
            else:
                perm = Perm(
                    self.default_this_kind, ALIVE, method_ref.class_decl.name
                )
            ctx = ctx.bind_fresh("this", perm, tag="param")
        # Parameters.
        for param in method.params:
            class_name = param.type.name if param.type is not None else None
            if not self._is_protocol_class(class_name) and class_name not in (
                None,
            ):
                # Scalar-ish parameter: no cell.
                if param.type is not None and param.type.is_primitive:
                    continue
            clauses = spec.required_for(param.name)
            if clauses:
                clause = clauses[0]
                perm = Perm(clause.kind, clause.state, class_name)
            else:
                perm = Perm(None, ALIVE, class_name)
            ctx = ctx.bind_fresh(param.name, perm, tag="param")
        return ctx

    # -- transfer --------------------------------------------------------------------

    def transfer(self, method_ref, node, ctx, sink):
        if node.kind != "instr":
            return ctx
        instr = node.instr
        if isinstance(instr, ir.Assign):
            return self._transfer_assign(method_ref, instr, ctx, sink)
        if isinstance(instr, ir.FieldStore):
            return self._transfer_field_store(method_ref, instr, ctx, sink)
        if isinstance(instr, ir.ReturnInstr):
            return self._transfer_return(method_ref, instr, ctx, sink)
        return ctx

    def _transfer_assign(self, method_ref, instr, ctx, sink):
        source = instr.source
        if isinstance(source, ir.UseVar):
            if ctx.cell_of(source.name) is not None:
                return ctx.bind_alias(instr.target, source.name)
            new_ctx = ctx.bind_scalar(instr.target)
            test = ctx.tests.get(source.name)
            if test is not None:
                new_ctx = new_ctx.set_test(instr.target, test)
            return new_ctx
        if isinstance(source, ir.Const):
            return ctx.bind_scalar(instr.target)
        if isinstance(source, ir.NewObj):
            # Check constructor argument requirements, if a constructor
            # with a spec is declared.
            ctor = self.program.resolve_constructor(
                source.class_name, len(source.args)
            )
            new_ctx = ctx
            if ctor is not None:
                spec = self.spec_of(ctor)
                for param, arg in zip(ctor.method_decl.params, source.args):
                    new_ctx = self._check_and_update_target(
                        method_ref,
                        new_ctx,
                        arg,
                        param.name,
                        spec,
                        ctor,
                        instr.line,
                        sink,
                    )
            perm = Perm(kinds.UNIQUE, ALIVE, source.class_name)
            return new_ctx.bind_fresh(instr.target, perm, tag="new")
        if isinstance(source, ir.Call):
            return self._transfer_call(method_ref, instr, source, ctx, sink)
        if isinstance(source, ir.FieldLoad):
            return self._transfer_field_load(method_ref, instr, source, ctx)
        if isinstance(source, ir.UnOp) and source.op == "!":
            test = ctx.tests.get(source.operand)
            new_ctx = ctx.bind_scalar(instr.target)
            if test is not None:
                new_ctx = new_ctx.set_test(instr.target, test.negated())
            return new_ctx
        if isinstance(source, ir.BinOp) and source.op in ("&&", "||"):
            # Compose state-test knowledge through boolean connectives:
            # (a && b) true implies both tests passed; (a || b) false
            # implies both failed.
            left = ctx.tests.get(source.left)
            right = ctx.tests.get(source.right)
            new_ctx = ctx.bind_scalar(instr.target)
            if left is not None or right is not None:
                neutral = Guard()
                if source.op == "&&":
                    guard = Guard.conjunction(
                        left if left is not None else neutral,
                        right if right is not None else neutral,
                    )
                else:
                    guard = Guard.disjunction(
                        left if left is not None else neutral,
                        right if right is not None else neutral,
                    )
                new_ctx = new_ctx.set_test(instr.target, guard)
            return new_ctx
        return ctx.bind_scalar(instr.target)

    def _transfer_call(self, method_ref, instr, call, ctx, sink):
        callee = None
        if call.static_class is not None:
            callee = self.program.resolve_method(
                call.static_class, call.method_name, len(call.args)
            )
        if callee is None:
            # Unknown callee: result carries no permission.
            return ctx.bind_fresh(instr.target, NO_PERM, tag="unknown-call")
        spec = self.spec_of(callee)
        new_ctx = ctx
        # Receiver requirement.
        receiver = call.receiver
        if not callee.method_decl.is_static and receiver is not None:
            new_ctx = self._check_and_update_target(
                method_ref,
                new_ctx,
                receiver,
                "this",
                spec,
                callee,
                instr.line,
                sink,
            )
        # Parameter requirements, positionally.
        for param, arg in zip(callee.method_decl.params, call.args):
            new_ctx = self._check_and_update_target(
                method_ref, new_ctx, arg, param.name, spec, callee, instr.line, sink
            )
        # Result permission.
        result_clauses = spec.ensured_for("result")
        if result_clauses:
            clause = result_clauses[0]
            class_name = self._result_class(callee)
            perm = Perm(clause.kind, clause.state, class_name)
            new_ctx = new_ctx.bind_fresh(instr.target, perm, tag="result")
        else:
            class_name = self._result_class(callee)
            if self._is_protocol_class(class_name):
                new_ctx = new_ctx.bind_fresh(
                    instr.target, Perm(None, ALIVE, class_name), tag="result"
                )
            else:
                new_ctx = new_ctx.bind_scalar(instr.target)
        # Dynamic state test: the boolean result witnesses receiver state.
        if spec.is_state_test and receiver is not None:
            cell = new_ctx.cell_of(receiver)
            if cell is not None:
                new_ctx = new_ctx.set_test(
                    instr.target,
                    StateTest(cell, spec.true_indicates, spec.false_indicates),
                )
        return new_ctx

    def _check_and_update_target(
        self, method_ref, ctx, var, spec_target, spec, callee, line, sink
    ):
        """Check requires clauses for one call target and apply ensures."""
        requires = spec.required_for(spec_target)
        ensures = spec.ensured_for(spec_target)
        cell = ctx.cell_of(var)
        perm = ctx.perm_of_var(var)
        held_kind = perm.kind
        if requires:
            clause = requires[0]
            if held_kind is None:
                self._warn(
                    sink,
                    WarningKind.MISSING_PERMISSION,
                    method_ref,
                    line,
                    "call to %s needs %s(%s) but no permission is available"
                    % (callee.qualified_name, clause.kind, spec_target),
                )
            elif not kinds.satisfies(held_kind, clause.kind):
                self._warn(
                    sink,
                    WarningKind.INSUFFICIENT_PERMISSION,
                    method_ref,
                    line,
                    "call to %s needs %s(%s) but only %s is held"
                    % (callee.qualified_name, clause.kind, spec_target, held_kind),
                )
            else:
                space = self.state_space(
                    perm.class_name or callee.class_decl.name
                ) or self.state_space(callee.class_decl.name)
                if (
                    clause.state != ALIVE
                    and space is not None
                    and not space.satisfies(perm.state, clause.state)
                ):
                    self._warn(
                        sink,
                        WarningKind.WRONG_STATE,
                        method_ref,
                        line,
                        "call to %s needs %s in state %s but state is %s"
                        % (
                            callee.qualified_name,
                            spec_target,
                            clause.state,
                            perm.state,
                        ),
                    )
        if cell is None:
            return ctx
        new_perm = self._after_call_perm(perm, requires, ensures)
        return ctx.set_perm(cell, new_perm)

    def _after_call_perm(self, perm, requires, ensures):
        """The caller's permission for an argument after the call returns.

        The lent permission comes back as the ensures clause describes; it
        merges with whatever the caller retained during the call, so a
        borrow-and-return (pure lent from unique) does not weaken the
        caller's claim.  State knowledge survives read-only calls; writing
        calls reset state to whatever the callee ensures.
        """
        held = perm.kind
        required_kind = requires[0].kind if requires else None
        ensured = ensures[0] if ensures else None
        if required_kind is not None and (
            held is None or not kinds.satisfies(held, required_kind)
        ):
            return perm  # requires failed: error recovery keeps what we had
        borrowed_readonly = (
            required_kind is None or required_kind not in kinds.WRITING_KINDS
        )
        # Kind after the call.
        if ensured is not None:
            if held is not None and kinds.satisfies(held, ensured.kind):
                new_kind = held  # retained + returned >= what we lent
            else:
                new_kind = ensured.kind
        elif required_kind is not None:
            if held is None or not kinds.satisfies(held, required_kind):
                new_kind = held  # error recovery: keep what we had
            else:
                new_kind = best_retained(held, required_kind)
        else:
            new_kind = held
        # State after the call.
        if ensured is not None and not borrowed_readonly:
            new_state = ensured.state
        elif borrowed_readonly:
            new_state = perm.state
        else:
            new_state = ALIVE
        return Perm(new_kind, new_state, perm.class_name)

    def _transfer_field_load(self, method_ref, instr, load, ctx):
        receiver_perm = ctx.perm_of_var(load.receiver) if load.receiver else NO_PERM
        class_name = None
        field_kind = None
        if receiver_perm.class_name is not None:
            found = self.program.lookup_field(
                receiver_perm.class_name, load.field_name
            )
            if found is not None:
                owner, field = found
                class_name = field.type.name if field.type is not None else None
                for annotation in field.annotations:
                    if annotation.name == "Perm":
                        field_kind = annotation.argument("value")
        if self._is_protocol_class(class_name):
            perm = Perm(field_kind, ALIVE, class_name)
            return ctx.bind_fresh(instr.target, perm, tag="field")
        return ctx.bind_scalar(instr.target)

    def _transfer_field_store(self, method_ref, instr, ctx, sink):
        receiver_perm = (
            ctx.perm_of_var(instr.receiver) if instr.receiver else NO_PERM
        )
        if (
            receiver_perm.kind is not None
            and receiver_perm.kind in kinds.READ_ONLY_KINDS
        ):
            self._warn(
                sink,
                WarningKind.READONLY_FIELD_WRITE,
                method_ref,
                instr.line,
                "field %s written through read-only %s permission"
                % (instr.field_name, receiver_perm.kind),
            )
        # The stored object becomes field-aliased; weaken exclusive claims.
        cell = ctx.cell_of(instr.value)
        if cell is not None:
            perm = ctx.perm_of_cell(cell)
            if perm.kind in kinds.EXCLUSIVE_KINDS:
                ctx = ctx.set_perm(cell, perm.replace(kind=kinds.SHARE))
        return ctx

    def _transfer_return(self, method_ref, instr, ctx, sink):
        spec = self.spec_of(method_ref)
        clauses = spec.ensured_for("result")
        if clauses and instr.value is not None:
            clause = clauses[0]
            perm = ctx.perm_of_var(instr.value)
            if perm.kind is None or not kinds.satisfies(perm.kind, clause.kind):
                self._warn(
                    sink,
                    WarningKind.RETURN_MISMATCH,
                    method_ref,
                    instr.line,
                    "return promises %s(result) but value holds %s"
                    % (clause.kind, perm.kind),
                )
            else:
                space = self.state_space(perm.class_name)
                if (
                    clause.state != ALIVE
                    and space is not None
                    and not space.satisfies(perm.state, clause.state)
                ):
                    self._warn(
                        sink,
                        WarningKind.RETURN_MISMATCH,
                        method_ref,
                        instr.line,
                        "return promises state %s but value is in %s"
                        % (clause.state, perm.state),
                    )
        return ctx

    @staticmethod
    def _warn(sink, kind, method_ref, line, message):
        if sink is not None:
            sink.append(
                Warning(kind, method_ref.qualified_name, line, message)
            )

    def _result_class(self, callee):
        return_type = callee.method_decl.return_type
        if return_type is None:
            return callee.class_decl.name  # constructor
        name = return_type.name
        if name in callee.method_decl.type_params or name in (
            callee.class_decl.type_params or []
        ):
            return None
        return name

    # -- public API -------------------------------------------------------------------

    def check_method(self, method_ref):
        """Check one method; returns its warnings (deduplicated)."""
        cfg = build_cfg(self.program, method_ref.class_decl, method_ref.method_decl)
        analysis = _CheckerAnalysis(self, method_ref, sink=None)
        result = analysis.run(cfg)
        # Final pass with a warning sink over the fixpoint facts.
        sink = []
        reporting = _CheckerAnalysis(self, method_ref, sink=sink)
        for node in cfg.reachable_nodes():
            fact = result.in_facts[node.node_id]
            if fact is None:
                continue
            reporting.transfer(node, fact)
        # Postcondition check for receiver/params at exit.
        self._check_exit(method_ref, result, cfg, sink)
        return dedupe(sink)

    def _check_exit(self, method_ref, result, cfg, sink):
        spec = self.spec_of(method_ref)
        fact = result.in_facts[cfg.exit.node_id]
        if fact is None:
            return
        targets = ["this"] + [
            param.name for param in method_ref.method_decl.params
        ]
        for target in targets:
            clauses = spec.ensured_for(target)
            if not clauses:
                continue
            clause = clauses[0]
            perm = fact.perm_of_var(target)
            if perm.kind is None or not kinds.satisfies(perm.kind, clause.kind):
                self._warn(
                    sink,
                    WarningKind.POST_MISMATCH,
                    method_ref,
                    method_ref.method_decl.line,
                    "postcondition promises %s(%s) but %s is held"
                    % (clause.kind, target, perm.kind),
                )

    def check_program(self):
        """Check every concrete method; returns all warnings."""
        warnings = []
        for method_ref in self.program.methods_with_bodies():
            warnings.extend(self.check_method(method_ref))
        return warnings


def check_program(program, default_this_kind=kinds.FULL):
    """Convenience wrapper: check the whole program."""
    return PluralChecker(program, default_this_kind).check_program()


# ---------------------------------------------------------------------------
# Tiered checking
# ---------------------------------------------------------------------------

CHECK_TIERS = ("full", "bitvector", "auto")


@dataclass
class CheckRun:
    """Outcome of a (possibly tiered) whole-program check.

    ``warnings`` is always bit-identical to the full checker's output:
    tier 1 only ever *proves* whole methods warning-free; every method it
    cannot prove is re-checked by the unmodified full checker, in program
    order.
    """

    warnings: list
    tier: str
    tier1_methods: int = 0
    tier2_methods: int = 0
    tier1_sites: int = 0
    tier2_sites: int = 0
    tier1_seconds: float = 0.0
    tier2_seconds: float = 0.0
    residue_reasons: dict = field(default_factory=dict)

    @property
    def total_seconds(self):
        return self.tier1_seconds + self.tier2_seconds

    @property
    def site_coverage(self):
        total = self.tier1_sites + self.tier2_sites
        return self.tier1_sites / total if total else 1.0

    def describe(self):
        if self.tier == "full":
            return "check: tier=full, %d method(s), %.3f s" % (
                self.tier2_methods,
                self.tier2_seconds,
            )
        reasons = ", ".join(
            "%s=%d" % (reason, count)
            for reason, count in sorted(self.residue_reasons.items())
        )
        return (
            "check: tier=%s, tier1 %d method(s)/%d site(s) in %.3f s, "
            "tier2 %d method(s)/%d site(s) in %.3f s%s"
            % (
                self.tier,
                self.tier1_methods,
                self.tier1_sites,
                self.tier1_seconds,
                self.tier2_methods,
                self.tier2_sites,
                self.tier2_seconds,
                " (%s)" % reasons if reasons else "",
            )
        )


def run_check(
    program, tier="auto", default_this_kind=kinds.FULL, failures=None
):
    """Check the program through the requested tier; returns a CheckRun.

    ``tier``:

    * ``"full"`` — the fractional-permission checker on every method;
    * ``"bitvector"`` — tier-1 bit-vector proving with full-checker
      residue routing; an error if numpy is unavailable;
    * ``"auto"`` — ``bitvector`` when numpy is available, else ``full``.

    All three produce bit-identical warning lists.  ``failures`` is an
    optional :class:`repro.resilience.report.FailureReport`; tier-1
    faults (injected or real) degrade the affected methods to the full
    checker and are recorded there with a ``tier-fallback`` disposition.
    """
    if tier not in CHECK_TIERS:
        raise ValueError(
            "unknown check tier %r (choose from %s)" % (tier, "/".join(CHECK_TIERS))
        )
    checker = PluralChecker(program, default_this_kind)
    methods = list(program.methods_with_bodies())
    use_bitvector = tier != "full"
    if use_bitvector:
        from repro.plural import bitvector

        if not bitvector.available():
            if tier == "bitvector":
                raise RuntimeError(
                    "--check-tier bitvector requires numpy; "
                    "use --check-tier full or auto"
                )
            use_bitvector = False
    if not use_bitvector:
        start = time.perf_counter()
        warnings = []
        for method_ref in methods:
            warnings.extend(checker.check_method(method_ref))
        return CheckRun(
            warnings=warnings,
            tier="full",
            tier2_methods=len(methods),
            tier2_seconds=time.perf_counter() - start,
        )

    tier1_start = time.perf_counter()
    outcome = None
    try:
        engine = bitvector.BitVectorChecker(checker)
        outcome = engine.partition(methods, failures=failures)
    except Exception as exc:
        # A whole-tier crash degrades every method to the full checker;
        # the run stays bit-identical to a full-tier run.
        if failures is not None:
            failures.record("check", "tier1", exc, "tier-fallback")
    tier1_seconds = time.perf_counter() - tier1_start

    tier2_start = time.perf_counter()
    warnings = []
    if outcome is None:
        residue_refs = methods
        run = CheckRun(
            warnings=warnings,
            tier=tier,
            tier2_methods=len(methods),
            residue_reasons={"tier1-crash": len(methods)},
            tier1_seconds=tier1_seconds,
        )
    else:
        residue_refs = [ref for ref, _reason in outcome.residue]
        run = CheckRun(
            warnings=warnings,
            tier=tier,
            tier1_methods=len(outcome.proven),
            tier2_methods=len(residue_refs),
            tier1_sites=outcome.tier1_sites,
            tier2_sites=outcome.tier2_sites,
            tier1_seconds=tier1_seconds,
            residue_reasons=dict(outcome.residue_reasons),
        )
    # Tier-1-proven methods contribute zero warnings; the residue is
    # re-checked in program order, so concatenation preserves the full
    # checker's warning order exactly.
    for method_ref in residue_refs:
        warnings.extend(checker.check_method(method_ref))
    run.tier2_seconds = time.perf_counter() - tier2_start
    return run
