"""PLURAL: a modular, flow-sensitive typestate checker (substrate).

Re-implements the checker of Bierhoff & Aldrich that the paper targets:
method-at-a-time checking of access-permission specifications, with
permission splitting at call sites, abstract-state tracking, and
branch-sensitive dynamic state tests (``@TrueIndicates``/``@FalseIndicates``).

* ``context``         — the flow fact: variables -> cells -> permissions
* ``checker``         — the modular checker producing warnings
* ``warnings``        — warning records and reporting
* ``local_inference`` — PLURAL's local fractional-permission inference
                        (Gaussian elimination), the Table 3 baseline
"""

from repro.plural.checker import PluralChecker, check_program
from repro.plural.warnings import Warning, WarningKind

__all__ = ["PluralChecker", "check_program", "Warning", "WarningKind"]
