"""Warning records produced by the PLURAL checker."""


class WarningKind:
    """Enumeration of checker warning categories."""

    MISSING_PERMISSION = "missing-permission"
    INSUFFICIENT_PERMISSION = "insufficient-permission"
    WRONG_STATE = "wrong-state"
    READONLY_FIELD_WRITE = "readonly-field-write"
    RETURN_MISMATCH = "return-mismatch"
    POST_MISMATCH = "postcondition-mismatch"

    ALL = (
        MISSING_PERMISSION,
        INSUFFICIENT_PERMISSION,
        WRONG_STATE,
        READONLY_FIELD_WRITE,
        RETURN_MISMATCH,
        POST_MISMATCH,
    )


class Warning:
    """One checker warning, anchored to a method and source line."""

    __slots__ = ("kind", "method", "line", "message")

    def __init__(self, kind, method, line, message):
        self.kind = kind
        self.method = method  # qualified name string
        self.line = line
        self.message = message

    def key(self):
        """Deduplication key: one warning per (site, kind)."""
        return (self.method, self.line, self.kind, self.message)

    def __repr__(self):
        return "Warning(%s, %s:%d, %s)" % (
            self.kind,
            self.method,
            self.line,
            self.message,
        )

    def format(self):
        return "[%s] %s (line %d): %s" % (self.kind, self.method, self.line, self.message)


def dedupe(warning_list):
    """Stable-deduplicate warnings by site key."""
    seen = set()
    result = []
    for warning in warning_list:
        key = warning.key()
        if key not in seen:
            seen.add(key)
            result.append(warning)
    return result


def summarize(warning_list):
    """Counts per warning kind."""
    counts = {}
    for warning in warning_list:
        counts[warning.kind] = counts.get(warning.kind, 0) + 1
    return counts
