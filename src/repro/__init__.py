"""Reproduction of "Probabilistic, modular and scalable inference of
typestate specifications" (Beckman & Nori, PLDI 2011)."""

#: Kept in sync with ``pyproject.toml``; baked into persistent cache keys
#: (see :mod:`repro.cache`) so artifacts written by one build are never
#: read by another.
__version__ = "0.1.0"
