"""Symbol resolution: class table, method lookup, subtyping.

A :class:`Program` is the resolved whole-program view consumed by every
analysis: it indexes classes by simple name, resolves method calls through
the superclass/interface hierarchy, and answers subtype queries.

Well-known library types (``Iterator``, ``Collection``, ``Object``...) may be
declared in the program itself (the corpus ships annotated interface
sources, mirroring how the paper's experiments annotate the Iterator API).
"""

from repro.java import ast
from repro.java.errors import ResolutionError


class MethodRef:
    """A resolved method: declaring class + declaration node."""

    __slots__ = ("class_decl", "method_decl")

    def __init__(self, class_decl, method_decl):
        self.class_decl = class_decl
        self.method_decl = method_decl

    @property
    def qualified_name(self):
        return "%s.%s" % (self.class_decl.name, self.method_decl.name)

    def __repr__(self):
        return "MethodRef(%s)" % self.qualified_name

    def __eq__(self, other):
        return (
            isinstance(other, MethodRef)
            and self.class_decl is other.class_decl
            and self.method_decl is other.method_decl
        )

    def __hash__(self):
        return hash((id(self.class_decl), id(self.method_decl)))


def method_key(method_ref):
    """A stable, process-portable identifier for a method.

    ``qualified_name`` is ambiguous under overloading, and
    :class:`MethodRef` hashes by object identity, so neither survives a
    trip through ``pickle`` into a worker process.  The key encodes the
    declaring class plus the method's position in the class body, which
    is identical in every process that parsed the same sources.
    """
    decl = method_ref.class_decl
    for index, method in enumerate(decl.methods):
        if method is method_ref.method_decl:
            return "%s.%s#%d" % (decl.name, method.name, index)
    raise ValueError(
        "method %r not declared in class %r"
        % (method_ref.method_decl.name, decl.name)
    )


class Program:
    """The resolved program: class table plus lookup helpers."""

    def __init__(self, units):
        self.units = list(units)
        self.classes = {}
        for unit in self.units:
            for decl in unit.types:
                if decl.name in self.classes:
                    raise ResolutionError(
                        "duplicate type declaration %r" % decl.name, decl.line, decl.column
                    )
                self.classes[decl.name] = decl

    # -- class hierarchy -----------------------------------------------------

    def lookup_class(self, name):
        """Return the class declaration for a (possibly generic) type name."""
        base = name.split("<", 1)[0]
        base = base.rsplit(".", 1)[-1]  # tolerate qualified names
        return self.classes.get(base)

    def supertypes(self, class_decl):
        """Yield all declared supertypes of ``class_decl`` (transitively)."""
        seen = set()
        worklist = []
        if class_decl.superclass is not None:
            worklist.append(class_decl.superclass.name)
        worklist.extend(ref.name for ref in class_decl.interfaces)
        while worklist:
            name = worklist.pop()
            if name in seen:
                continue
            seen.add(name)
            decl = self.lookup_class(name)
            if decl is None:
                continue
            yield decl
            if decl.superclass is not None:
                worklist.append(decl.superclass.name)
            worklist.extend(ref.name for ref in decl.interfaces)

    def is_subtype(self, sub_name, super_name):
        """True if the type named ``sub_name`` is a subtype of ``super_name``."""
        sub_base = sub_name.split("<", 1)[0]
        super_base = super_name.split("<", 1)[0]
        if sub_base == super_base or super_base == "Object":
            return True
        sub = self.lookup_class(sub_base)
        if sub is None:
            return False
        return any(decl.name == super_base for decl in self.supertypes(sub))

    # -- method resolution -----------------------------------------------------

    def resolve_method(self, class_name, method_name, arg_count=None):
        """Resolve a call ``class_name.method_name`` through the hierarchy.

        Returns a :class:`MethodRef` or ``None`` when the receiver type or the
        method is unknown (e.g. calls into unmodelled library code).
        """
        decl = self.lookup_class(class_name)
        if decl is None:
            return None
        candidates = self._collect_candidates(decl, method_name)
        if not candidates:
            return None
        if arg_count is not None:
            matching = [
                ref for ref in candidates if len(ref.method_decl.params) == arg_count
            ]
            if matching:
                return matching[0]
        return candidates[0]

    def _collect_candidates(self, decl, method_name):
        candidates = [
            MethodRef(decl, method) for method in decl.find_method(method_name)
        ]
        for super_decl in self.supertypes(decl):
            candidates.extend(
                MethodRef(super_decl, method)
                for method in super_decl.find_method(method_name)
            )
        return candidates

    def resolve_constructor(self, class_name, arg_count=None):
        """Resolve ``new ClassName(...)`` to its constructor, if declared."""
        decl = self.lookup_class(class_name)
        if decl is None:
            return None
        ctors = [method for method in decl.methods if method.is_constructor]
        if not ctors:
            return None
        if arg_count is not None:
            matching = [ctor for ctor in ctors if len(ctor.params) == arg_count]
            if matching:
                return MethodRef(decl, matching[0])
        return MethodRef(decl, ctors[0])

    def lookup_field(self, class_name, field_name):
        """Resolve a field through the hierarchy; returns (ClassDecl, FieldDecl)."""
        decl = self.lookup_class(class_name)
        if decl is None:
            return None
        chain = [decl] + list(self.supertypes(decl))
        for owner in chain:
            for field in owner.fields:
                if field.name == field_name:
                    return (owner, field)
        return None

    # -- iteration helpers -------------------------------------------------------

    def all_methods(self):
        """Yield MethodRefs for every method declared in the program."""
        for decl in self.classes.values():
            for method in decl.methods:
                yield MethodRef(decl, method)

    def methods_with_bodies(self):
        """Yield MethodRefs for every concrete (non-abstract) method."""
        for ref in self.all_methods():
            if ref.method_decl.body is not None:
                yield ref

    def method_key_table(self):
        """Map :func:`method_key` strings to MethodRefs for all methods."""
        return {method_key(ref): ref for ref in self.all_methods()}

    def source_lines(self):
        """Total pretty-printed source line count across all units."""
        from repro.java.pretty import pretty_print

        return sum(len(pretty_print(unit).splitlines()) for unit in self.units)


def resolve_program(units):
    """Build a :class:`Program` from parsed compilation units."""
    if isinstance(units, ast.CompilationUnit):
        units = [units]
    return Program(units)
