"""Lightweight expression typing for the Java subset.

The analyses need static types of receivers to resolve method specs (e.g.
knowing that ``iter`` in ``iter.next()`` is an ``Iterator``).  This module
implements a simple bottom-up typer over method bodies: local declarations
and parameters seed the environment; field and method lookups go through
the resolved :class:`repro.java.symbols.Program`.

Generic type arguments are resolved one level deep: if a method of
``Collection<T>`` returns ``Iterator<T>`` and the receiver is a
``Collection<Integer>``, the call types as ``Iterator<Integer>``.
"""

from repro.java import ast

_PRIMITIVE_RESULT = {
    "==": "boolean",
    "!=": "boolean",
    "<": "boolean",
    ">": "boolean",
    "<=": "boolean",
    ">=": "boolean",
    "&&": "boolean",
    "||": "boolean",
}


class TypeEnv:
    """Maps local variable names to :class:`repro.java.ast.TypeRef`."""

    def __init__(self, parent=None):
        self.parent = parent
        self.bindings = {}

    def bind(self, name, type_ref):
        self.bindings[name] = type_ref

    def lookup(self, name):
        env = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        return None

    def child(self):
        return TypeEnv(parent=self)


class ExprTyper:
    """Types expressions within one method body."""

    def __init__(self, program, class_decl, method_decl):
        self.program = program
        self.class_decl = class_decl
        self.method_decl = method_decl
        self.env = TypeEnv()
        for param in method_decl.params:
            self.env.bind(param.name, param.type)
        self._seed_locals(method_decl.body)

    def _seed_locals(self, body):
        """Bind every local declaration in the body (flow-insensitive)."""
        if body is None:
            return
        for node in body.walk():
            if isinstance(node, ast.LocalVarDecl):
                self.env.bind(node.name, node.type)
            elif isinstance(node, ast.ForEachStmt):
                self.env.bind(node.var_name, node.var_type)

    # -- public API ------------------------------------------------------------

    def type_of(self, expr):
        """Return the TypeRef of ``expr``, or None when it cannot be typed."""
        if isinstance(expr, ast.Literal):
            return self._literal_type(expr)
        if isinstance(expr, ast.VarRef):
            bound = self.env.lookup(expr.name)
            if bound is not None:
                return bound
            return self._field_type(self.class_decl.name, expr.name)
        if isinstance(expr, ast.ThisRef):
            return ast.TypeRef(name=self.class_decl.name)
        if isinstance(expr, ast.FieldAccess):
            if expr.receiver is None:
                return self._field_type(self.class_decl.name, expr.name)
            receiver_type = self.type_of(expr.receiver)
            if receiver_type is None:
                return None
            return self._field_type(receiver_type.name, expr.name, receiver_type)
        if isinstance(expr, ast.MethodCall):
            return self._call_type(expr)
        if isinstance(expr, ast.NewObject):
            return expr.type
        if isinstance(expr, ast.Assign):
            return self.type_of(expr.target)
        if isinstance(expr, ast.Binary):
            result = _PRIMITIVE_RESULT.get(expr.op)
            if result is not None:
                return ast.TypeRef(name=result)
            return self.type_of(expr.left)
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return ast.TypeRef(name="boolean")
            return self.type_of(expr.operand)
        if isinstance(expr, ast.Cast):
            return expr.type
        if isinstance(expr, ast.InstanceOf):
            return ast.TypeRef(name="boolean")
        if isinstance(expr, ast.Conditional):
            then_type = self.type_of(expr.then_expr)
            if then_type is not None:
                return then_type
            return self.type_of(expr.else_expr)
        if isinstance(expr, ast.ArrayAccess):
            array_type = self.type_of(expr.array)
            if array_type is not None and array_type.dimensions > 0:
                return ast.TypeRef(
                    name=array_type.name,
                    type_args=array_type.type_args,
                    dimensions=array_type.dimensions - 1,
                )
            return None
        return None

    def receiver_class_name(self, call):
        """Return the static class name of a call's receiver, or None."""
        if call.receiver is None:
            return self.class_decl.name
        receiver_type = self.type_of(call.receiver)
        if receiver_type is None:
            return None
        return receiver_type.name

    # -- helpers -----------------------------------------------------------------

    def _literal_type(self, literal):
        if literal.kind == "int":
            return ast.TypeRef(name="int")
        if literal.kind == "bool":
            return ast.TypeRef(name="boolean")
        if literal.kind == "string":
            return ast.TypeRef(name="String")
        if literal.kind == "char":
            return ast.TypeRef(name="char")
        return None  # null

    def _field_type(self, class_name, field_name, receiver_type=None):
        found = self.program.lookup_field(class_name, field_name)
        if found is None:
            return None
        owner, field = found
        return self._substitute(field.type, owner, receiver_type)

    def _call_type(self, call):
        class_name = self.receiver_class_name(call)
        if class_name is None:
            return None
        ref = self.program.resolve_method(class_name, call.name, len(call.arguments))
        if ref is None or ref.method_decl.return_type is None:
            return None
        receiver_type = None
        if call.receiver is not None:
            receiver_type = self.type_of(call.receiver)
        return self._substitute(ref.method_decl.return_type, ref.class_decl, receiver_type)

    def _substitute(self, declared, owner, receiver_type):
        """Substitute class type parameters using the receiver's type args."""
        if receiver_type is None or not owner.type_params or not receiver_type.type_args:
            return declared
        mapping = dict(zip(owner.type_params, receiver_type.type_args))
        return self._apply_mapping(declared, mapping)

    def _apply_mapping(self, type_ref, mapping):
        if type_ref.name in mapping and not type_ref.type_args:
            replacement = mapping[type_ref.name]
            return ast.TypeRef(
                name=replacement.name,
                type_args=list(replacement.type_args),
                dimensions=type_ref.dimensions,
            )
        if not type_ref.type_args:
            return type_ref
        return ast.TypeRef(
            name=type_ref.name,
            type_args=[self._apply_mapping(arg, mapping) for arg in type_ref.type_args],
            dimensions=type_ref.dimensions,
        )
