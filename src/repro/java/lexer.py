"""Hand-written lexer for the Java subset.

The lexer is a straightforward maximal-munch scanner producing a list of
:class:`repro.java.tokens.Token`.  Comments (line and block) and whitespace
are skipped; string and char literals support the common escape sequences.
"""

from repro.java.errors import LexError
from repro.resilience.limits import ResourceLimitError
from repro.java.tokens import (
    BOOL_LIT,
    CHAR_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    KEYWORDS,
    NULL_LIT,
    PUNCT,
    PUNCTUATION,
    STRING_LIT,
    Token,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
}


class Lexer:
    """Scans Java-subset source text into tokens.

    When ``limits`` (a :class:`repro.resilience.limits.ResourceLimits`)
    is given, the scanner enforces the source-size, token-count and
    literal-length budgets and raises a typed ``ResourceLimitError`` on
    breach — callers quarantine it like any other frontend failure.
    """

    def __init__(self, source, limits=None):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.limits = limits
        self._max_tokens = limits.cap("max_tokens") if limits else 0
        self._max_literal = limits.cap("max_literal_chars") if limits else 0
        if limits:
            limits.check(
                "max_source_chars",
                "source-chars",
                len(source),
                "lexer input",
            )

    # -- low-level cursor helpers ------------------------------------------

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _error(self, message):
        raise LexError(message, self.line, self.column)

    # -- scanning ----------------------------------------------------------

    def tokens(self):
        """Return the complete token list, ending with an EOF token."""
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind == EOF:
                return result
            if self._max_tokens and len(result) > self._max_tokens:
                raise ResourceLimitError(
                    "token-count",
                    len(result),
                    self._max_tokens,
                    "line %d" % token.line,
                )

    def next_token(self):
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(EOF, "", self.line, self.column)
        char = self._peek()
        if char.isalpha() or char == "_" or char == "$":
            return self._scan_word()
        if char.isdigit():
            return self._scan_number()
        if char == '"':
            return self._scan_string()
        if char == "'":
            return self._scan_char()
        return self._scan_punct()

    def _skip_trivia(self):
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    self._error("unterminated block comment")
            else:
                return

    def _scan_word(self):
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.source):
            char = self._peek()
            if char.isalnum() or char == "_" or char == "$":
                self._advance()
            else:
                break
        word = self.source[start : self.pos]
        if word in ("true", "false"):
            return Token(BOOL_LIT, word, line, column)
        if word == "null":
            return Token(NULL_LIT, word, line, column)
        if word in KEYWORDS:
            return Token(KEYWORD, word, line, column)
        return Token(IDENT, word, line, column)

    def _scan_number(self):
        line, column = self.line, self.column
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF_":
                self._advance()
        else:
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
        # Long suffix; floats are out of subset but digits+dot tolerated.
        if self._peek() in "lL":
            self._advance()
        text = self.source[start : self.pos]
        return Token(INT_LIT, text, line, column)

    def _scan_string(self):
        line, column = self.line, self.column
        self._advance()  # opening quote
        chars = []
        while True:
            if self.pos >= len(self.source):
                self._error("unterminated string literal")
            char = self._peek()
            if char == '"':
                self._advance()
                return Token(STRING_LIT, "".join(chars), line, column)
            if char == "\n":
                self._error("newline in string literal")
            if char == "\\":
                self._advance()
                escape = self._peek()
                if escape not in _ESCAPES:
                    self._error("unknown escape sequence \\%s" % escape)
                chars.append(_ESCAPES[escape])
                self._advance()
            else:
                chars.append(char)
                self._advance()
            if self._max_literal and len(chars) > self._max_literal:
                raise ResourceLimitError(
                    "literal-chars",
                    len(chars),
                    self._max_literal,
                    "string literal at line %d" % line,
                )

    def _scan_char(self):
        line, column = self.line, self.column
        self._advance()  # opening quote
        char = self._peek()
        if char == "\\":
            self._advance()
            escape = self._peek()
            if escape not in _ESCAPES:
                self._error("unknown escape sequence \\%s" % escape)
            value = _ESCAPES[escape]
            self._advance()
        else:
            value = char
            self._advance()
        if self._peek() != "'":
            self._error("unterminated char literal")
        self._advance()
        return Token(CHAR_LIT, value, line, column)

    def _scan_punct(self):
        line, column = self.line, self.column
        for punct in PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(PUNCT, punct, line, column)
        self._error("unexpected character %r" % self._peek())


def tokenize(source, limits=None):
    """Tokenize ``source`` and return the token list (including EOF)."""
    return Lexer(source, limits=limits).tokens()
