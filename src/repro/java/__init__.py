"""Java-subset frontend: lexer, parser, AST, symbol resolution.

This package substitutes for the Eclipse JDT frontend used by the paper's
implementation.  It handles the Java subset exercised by the paper's
programs: classes, interfaces, fields, methods, annotations (``@Perm``,
``@TrueIndicates``, ...), generics-lite type arguments, and the statement
and expression forms that appear in iterator-style client code.
"""

from repro.java.errors import JavaSyntaxError, LexError
from repro.java.lexer import Lexer, tokenize
from repro.java.parser import Parser, parse_compilation_unit, parse_program
from repro.java.pretty import pretty_print
from repro.java.symbols import Program, resolve_program

__all__ = [
    "JavaSyntaxError",
    "LexError",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_compilation_unit",
    "parse_program",
    "pretty_print",
    "Program",
    "resolve_program",
]
