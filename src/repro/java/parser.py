"""Recursive-descent parser for the Java subset.

The grammar covers what the paper's programs need: top-level classes and
interfaces, annotations, generics-lite type references, fields, methods and
constructors, and the usual statement/expression forms.  Local variable
declarations are disambiguated from expressions by speculative parsing
(try type+identifier, rewind on failure), the standard trick for grammars
where ``A<B> x`` and ``a < b`` share a prefix.
"""

from repro.java import ast
from repro.java.errors import JavaSyntaxError
from repro.java.lexer import tokenize
from repro.resilience.limits import ResourceLimitError, recursion_guard
from repro.java.tokens import (
    BOOL_LIT,
    CHAR_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    MODIFIER_KEYWORDS,
    NULL_LIT,
    PRIMITIVE_TYPES,
    PUNCT,
    STRING_LIT,
)

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])


class Parser:
    """Parses a token stream into a :class:`repro.java.ast.CompilationUnit`.

    When ``limits`` (a :class:`repro.resilience.limits.ResourceLimits`)
    is given, statement/expression nesting depth is counted explicitly
    and a breach raises a typed ``ResourceLimitError`` — deterministic
    and well before CPython's own recursion limit, so a nesting bomb is
    a quarantinable parse failure rather than a ``RecursionError``.
    """

    def __init__(self, tokens, limits=None):
        self.tokens = tokens
        self.pos = 0
        self.depth = 0
        self._max_depth = limits.cap("max_parse_depth") if limits else 0

    def _enter(self):
        self.depth += 1
        if self._max_depth and self.depth > self._max_depth:
            token = self._peek()
            raise ResourceLimitError(
                "parse-depth",
                self.depth,
                self._max_depth,
                "line %d" % token.line,
            )

    # -- token stream helpers ----------------------------------------------

    def _peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def _at_punct(self, value):
        return self._peek().is_punct(value)

    def _at_keyword(self, value):
        return self._peek().is_keyword(value)

    def _accept_punct(self, value):
        if self._at_punct(value):
            self._advance()
            return True
        return False

    def _accept_keyword(self, value):
        if self._at_keyword(value):
            self._advance()
            return True
        return False

    def _expect_punct(self, value):
        token = self._peek()
        if not token.is_punct(value):
            self._error("expected %r but found %r" % (value, token.value))
        return self._advance()

    def _expect_keyword(self, value):
        token = self._peek()
        if not token.is_keyword(value):
            self._error("expected keyword %r but found %r" % (value, token.value))
        return self._advance()

    def _expect_ident(self):
        token = self._peek()
        if token.kind != IDENT:
            self._error("expected identifier but found %r" % (token.value,))
        return self._advance()

    def _error(self, message):
        token = self._peek()
        raise JavaSyntaxError(message, token.line, token.column)

    def _pos_of(self, token):
        return {"line": token.line, "column": token.column}

    # -- compilation unit ----------------------------------------------------

    def parse_compilation_unit(self):
        unit = ast.CompilationUnit()
        if self._at_keyword("package"):
            self._advance()
            unit.package = self._parse_qualified_name()
            self._expect_punct(";")
        while self._at_keyword("import"):
            self._advance()
            name = self._parse_qualified_name()
            if self._accept_punct("."):
                self._expect_punct("*")
                name += ".*"
            self._expect_punct(";")
            unit.imports.append(name)
        while self._peek().kind != EOF:
            unit.types.append(self.parse_type_declaration())
        return unit

    def _parse_qualified_name(self):
        parts = [self._expect_ident().value]
        while self._at_punct(".") and self._peek(1).kind == IDENT:
            self._advance()
            parts.append(self._expect_ident().value)
        return ".".join(parts)

    # -- type declarations ---------------------------------------------------

    def parse_type_declaration(self):
        annotations = self._parse_annotations()
        modifiers = self._parse_modifiers()
        if self._at_keyword("class"):
            return self._parse_class_body_decl(annotations, modifiers, is_interface=False)
        if self._at_keyword("interface"):
            return self._parse_class_body_decl(annotations, modifiers, is_interface=True)
        self._error("expected class or interface declaration")

    def _parse_class_body_decl(self, annotations, modifiers, is_interface):
        start = self._advance()  # 'class' or 'interface'
        name = self._expect_ident().value
        decl = ast.ClassDecl(
            name=name,
            is_interface=is_interface,
            modifiers=modifiers,
            annotations=annotations,
            **self._pos_of(start),
        )
        decl.type_params = self._parse_type_params()
        if self._accept_keyword("extends"):
            first = self._parse_type_ref()
            if is_interface:
                decl.interfaces.append(first)
                while self._accept_punct(","):
                    decl.interfaces.append(self._parse_type_ref())
            else:
                decl.superclass = first
        if self._accept_keyword("implements"):
            decl.interfaces.append(self._parse_type_ref())
            while self._accept_punct(","):
                decl.interfaces.append(self._parse_type_ref())
        self._expect_punct("{")
        while not self._accept_punct("}"):
            self._parse_member(decl)
        return decl

    def _parse_member(self, decl):
        if self._accept_punct(";"):
            return
        annotations = self._parse_annotations()
        modifiers = self._parse_modifiers()
        if self._at_keyword("class") or self._at_keyword("interface"):
            # Nested types are parsed and flattened into the enclosing decl's
            # method-less sibling list is out of subset; treat as error.
            self._error("nested type declarations are outside the supported subset")
        type_params = self._parse_type_params()
        # Constructor: identifier matching class name followed by '('.
        token = self._peek()
        if token.kind == IDENT and token.value == decl.name and self._peek(1).is_punct("("):
            ctor = self._parse_method_rest(
                name=self._advance().value,
                return_type=None,
                annotations=annotations,
                modifiers=modifiers,
                type_params=type_params,
                is_constructor=True,
                start=token,
            )
            decl.methods.append(ctor)
            return
        member_type = self._parse_type_ref()
        name_token = self._expect_ident()
        if self._at_punct("("):
            method = self._parse_method_rest(
                name=name_token.value,
                return_type=member_type,
                annotations=annotations,
                modifiers=modifiers,
                type_params=type_params,
                is_constructor=False,
                start=name_token,
            )
            decl.methods.append(method)
        else:
            field = ast.FieldDecl(
                name=name_token.value,
                type=member_type,
                modifiers=modifiers,
                annotations=annotations,
                **self._pos_of(name_token),
            )
            if self._accept_punct("="):
                field.initializer = self.parse_expression()
            decl.fields.append(field)
            while self._accept_punct(","):
                extra_name = self._expect_ident()
                extra = ast.FieldDecl(
                    name=extra_name.value,
                    type=member_type,
                    modifiers=list(modifiers),
                    annotations=[],
                    **self._pos_of(extra_name),
                )
                if self._accept_punct("="):
                    extra.initializer = self.parse_expression()
                decl.fields.append(extra)
            self._expect_punct(";")

    def _parse_method_rest(
        self, name, return_type, annotations, modifiers, type_params, is_constructor, start
    ):
        method = ast.MethodDecl(
            name=name,
            return_type=return_type,
            annotations=annotations,
            modifiers=modifiers,
            type_params=type_params,
            is_constructor=is_constructor,
            **self._pos_of(start),
        )
        self._expect_punct("(")
        if not self._at_punct(")"):
            method.params.append(self._parse_param())
            while self._accept_punct(","):
                method.params.append(self._parse_param())
        self._expect_punct(")")
        if self._accept_keyword("throws"):
            method.throws.append(self._parse_type_ref())
            while self._accept_punct(","):
                method.throws.append(self._parse_type_ref())
        if self._accept_punct(";"):
            method.body = None
        else:
            method.body = self.parse_block()
        return method

    def _parse_param(self):
        annotations = self._parse_annotations()
        self._accept_keyword("final")
        param_type = self._parse_type_ref()
        name_token = self._expect_ident()
        return ast.Param(
            name=name_token.value,
            type=param_type,
            annotations=annotations,
            **self._pos_of(name_token),
        )

    # -- annotations, modifiers, types ---------------------------------------

    def _parse_annotations(self):
        annotations = []
        while self._at_punct("@"):
            start = self._advance()
            name = self._expect_ident().value
            arguments = {}
            if self._accept_punct("("):
                if not self._at_punct(")"):
                    arguments.update(self._parse_annotation_argument())
                    while self._accept_punct(","):
                        arguments.update(self._parse_annotation_argument())
                self._expect_punct(")")
            annotations.append(
                ast.Annotation(name=name, arguments=arguments, **self._pos_of(start))
            )
        return annotations

    def _parse_annotation_argument(self):
        if self._peek().kind == IDENT and self._peek(1).is_punct("="):
            key = self._advance().value
            self._advance()  # '='
            return {key: self._parse_annotation_value()}
        return {"value": self._parse_annotation_value()}

    def _parse_annotation_value(self):
        token = self._peek()
        if token.kind in (STRING_LIT, INT_LIT, BOOL_LIT, CHAR_LIT, IDENT):
            self._advance()
            return token.value
        self._error("unsupported annotation value %r" % (token.value,))

    def _parse_modifiers(self):
        modifiers = []
        while self._peek().kind == KEYWORD and self._peek().value in MODIFIER_KEYWORDS:
            # 'synchronized' as a modifier only when not followed by '('.
            if self._peek().value == "synchronized" and self._peek(1).is_punct("("):
                break
            modifiers.append(self._advance().value)
        return modifiers

    def _parse_type_params(self):
        params = []
        if self._accept_punct("<"):
            params.append(self._expect_ident().value)
            if self._accept_keyword("extends"):
                self._parse_type_ref()
            while self._accept_punct(","):
                params.append(self._expect_ident().value)
                if self._accept_keyword("extends"):
                    self._parse_type_ref()
            self._expect_punct(">")
        return params

    def _parse_type_ref(self):
        token = self._peek()
        if token.kind == KEYWORD and token.value in PRIMITIVE_TYPES:
            self._advance()
            ref = ast.TypeRef(name=token.value, **self._pos_of(token))
        elif token.kind == IDENT:
            name = self._parse_qualified_name()
            ref = ast.TypeRef(name=name, **self._pos_of(token))
            if self._at_punct("<"):
                ref.type_args = self._parse_type_args()
        else:
            self._error("expected a type but found %r" % (token.value,))
        while self._at_punct("[") and self._peek(1).is_punct("]"):
            self._advance()
            self._advance()
            ref.dimensions += 1
        return ref

    def _parse_type_args(self):
        self._expect_punct("<")
        args = []
        if self._accept_punct(">"):
            return args  # diamond
        args.append(self._parse_type_arg())
        while self._accept_punct(","):
            args.append(self._parse_type_arg())
        self._close_type_args()
        return args

    def _parse_type_arg(self):
        if self._accept_punct("?"):
            if self._accept_keyword("extends") or self._accept_keyword("super"):
                return self._parse_type_ref()
            return ast.TypeRef(name="?")
        return self._parse_type_ref()

    def _close_type_args(self):
        """Consume a closing '>' that may be lexed as '>>' or '>>>'."""
        token = self._peek()
        if token.is_punct(">"):
            self._advance()
            return
        if token.is_punct(">>") or token.is_punct(">>>"):
            # Split the token: consume one '>' and push back the remainder.
            rest = token.value[1:]
            self._advance()
            pushed = token._replace(value=rest, column=token.column + 1)
            self.tokens.insert(self.pos, pushed)
            return
        self._error("expected '>' to close type arguments")

    # -- statements ------------------------------------------------------------

    def parse_block(self):
        start = self._expect_punct("{")
        block = ast.Block(**self._pos_of(start))
        while not self._accept_punct("}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self):
        self._enter()
        try:
            return self._parse_statement()
        finally:
            self.depth -= 1

    def _parse_statement(self):
        token = self._peek()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_punct(";"):
            self._advance()
            return ast.EmptyStmt(**self._pos_of(token))
        if token.kind == KEYWORD:
            keyword = token.value
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "do":
                return self._parse_do_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "return":
                return self._parse_return()
            if keyword == "assert":
                return self._parse_assert()
            if keyword == "synchronized":
                return self._parse_synchronized()
            if keyword == "switch":
                return self._parse_switch()
            if keyword == "throw":
                return self._parse_throw()
            if keyword == "break":
                self._advance()
                self._expect_punct(";")
                return ast.BreakStmt(**self._pos_of(token))
            if keyword == "continue":
                self._advance()
                self._expect_punct(";")
                return ast.ContinueStmt(**self._pos_of(token))
            if keyword == "final":
                self._advance()
                return self._parse_local_var_decl_known()
            if keyword in PRIMITIVE_TYPES:
                return self._parse_local_var_decl_known()
        decl = self._try_parse_local_var_decl()
        if decl is not None:
            return decl
        expr = self.parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr=expr, line=expr.line, column=expr.column)

    def _parse_if(self):
        start = self._expect_keyword("if")
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self._accept_keyword("else"):
            else_branch = self.parse_statement()
        return ast.IfStmt(
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
            **self._pos_of(start),
        )

    def _parse_while(self):
        start = self._expect_keyword("while")
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.WhileStmt(condition=condition, body=body, **self._pos_of(start))

    def _parse_do_while(self):
        start = self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        condition = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhileStmt(body=body, condition=condition, **self._pos_of(start))

    def _parse_for(self):
        start = self._expect_keyword("for")
        self._expect_punct("(")
        # For-each: 'Type ident :' — detect by speculative type parse.
        saved = self.pos
        try:
            var_type = self._parse_type_ref()
            name_token = self._expect_ident()
            if self._accept_punct(":"):
                iterable = self.parse_expression()
                self._expect_punct(")")
                body = self.parse_statement()
                return ast.ForEachStmt(
                    var_type=var_type,
                    var_name=name_token.value,
                    iterable=iterable,
                    body=body,
                    **self._pos_of(start),
                )
        except JavaSyntaxError:
            pass
        self.pos = saved
        init = []
        if not self._at_punct(";"):
            decl = self._try_parse_local_var_decl(consume_semicolon=False)
            if decl is not None:
                init.append(decl)
            else:
                init.append(
                    ast.ExprStmt(expr=self.parse_expression())
                )
                while self._accept_punct(","):
                    init.append(ast.ExprStmt(expr=self.parse_expression()))
        self._expect_punct(";")
        condition = None
        if not self._at_punct(";"):
            condition = self.parse_expression()
        self._expect_punct(";")
        update = []
        if not self._at_punct(")"):
            update.append(self.parse_expression())
            while self._accept_punct(","):
                update.append(self.parse_expression())
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.ForStmt(
            init=init, condition=condition, update=update, body=body, **self._pos_of(start)
        )

    def _parse_return(self):
        start = self._expect_keyword("return")
        value = None
        if not self._at_punct(";"):
            value = self.parse_expression()
        self._expect_punct(";")
        return ast.ReturnStmt(value=value, **self._pos_of(start))

    def _parse_assert(self):
        start = self._expect_keyword("assert")
        condition = self.parse_expression()
        message = None
        if self._accept_punct(":"):
            message = self.parse_expression()
        self._expect_punct(";")
        return ast.AssertStmt(condition=condition, message=message, **self._pos_of(start))

    def _parse_synchronized(self):
        start = self._expect_keyword("synchronized")
        self._expect_punct("(")
        lock = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_block()
        return ast.SynchronizedStmt(lock=lock, body=body, **self._pos_of(start))

    def _parse_switch(self):
        start = self._expect_keyword("switch")
        self._expect_punct("(")
        selector = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases = []
        while not self._accept_punct("}"):
            labels = []
            while True:
                if self._accept_keyword("case"):
                    labels.append(self.parse_expression())
                    self._expect_punct(":")
                elif self._accept_keyword("default"):
                    self._expect_punct(":")
                else:
                    break
                if not (
                    self._at_keyword("case") or self._at_keyword("default")
                ):
                    break
            body = []
            while not (
                self._at_keyword("case")
                or self._at_keyword("default")
                or self._at_punct("}")
            ):
                body.append(self.parse_statement())
            cases.append(
                ast.SwitchCase(labels=labels, body=body, **self._pos_of(start))
            )
        return ast.SwitchStmt(
            selector=selector, cases=cases, **self._pos_of(start)
        )

    def _parse_throw(self):
        start = self._expect_keyword("throw")
        value = self.parse_expression()
        self._expect_punct(";")
        return ast.ThrowStmt(value=value, **self._pos_of(start))

    def _try_parse_local_var_decl(self, consume_semicolon=True):
        """Speculatively parse ``Type name [= init] ;`` — rewind on failure."""
        token = self._peek()
        if token.kind != IDENT and not (
            token.kind == KEYWORD and token.value in PRIMITIVE_TYPES
        ):
            return None
        saved = self.pos
        try:
            var_type = self._parse_type_ref()
            name_token = self._peek()
            if name_token.kind != IDENT:
                raise JavaSyntaxError("not a declaration")
            self._advance()
            if self._at_punct("=") or self._at_punct(";") or self._at_punct(","):
                decl = ast.LocalVarDecl(
                    type=var_type, name=name_token.value, **self._pos_of(name_token)
                )
                if self._accept_punct("="):
                    decl.initializer = self.parse_expression()
                if consume_semicolon:
                    self._expect_punct(";")
                return decl
            raise JavaSyntaxError("not a declaration")
        except JavaSyntaxError:
            self.pos = saved
            return None

    def _parse_local_var_decl_known(self):
        var_type = self._parse_type_ref()
        name_token = self._expect_ident()
        decl = ast.LocalVarDecl(
            type=var_type, name=name_token.value, **self._pos_of(name_token)
        )
        if self._accept_punct("="):
            decl.initializer = self.parse_expression()
        self._expect_punct(";")
        return decl

    # -- expressions -------------------------------------------------------------

    def parse_expression(self):
        self._enter()
        try:
            return self._parse_assignment()
        finally:
            self.depth -= 1

    #: The only expression forms that may appear left of an assignment
    #: operator; anything else (``a < b = c``) is a syntax error, which
    #: keeps downstream lowering total over parsed programs.
    _ASSIGN_TARGETS = (ast.VarRef, ast.FieldAccess, ast.ArrayAccess)

    def _parse_assignment(self):
        left = self._parse_conditional()
        token = self._peek()
        if token.kind == PUNCT and token.value in _ASSIGN_OPS:
            if not isinstance(left, self._ASSIGN_TARGETS):
                raise JavaSyntaxError(
                    "invalid assignment target %s"
                    % type(left).__name__,
                    left.line,
                    left.column,
                )
            op = self._advance().value
            value = self._parse_assignment()
            return ast.Assign(
                target=left, op=op, value=value, line=left.line, column=left.column
            )
        return left

    def _parse_conditional(self):
        condition = self._parse_binary(0)
        if self._accept_punct("?"):
            then_expr = self.parse_expression()
            self._expect_punct(":")
            else_expr = self._parse_conditional()
            return ast.Conditional(
                condition=condition,
                then_expr=then_expr,
                else_expr=else_expr,
                line=condition.line,
                column=condition.column,
            )
        return condition

    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">=", "instanceof"],
        ["<<", ">>", ">>>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level):
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            if "instanceof" in ops and token.is_keyword("instanceof"):
                self._advance()
                target_type = self._parse_type_ref()
                left = ast.InstanceOf(
                    expr=left, type=target_type, line=left.line, column=left.column
                )
                continue
            if token.kind == PUNCT and token.value in ops:
                op = self._advance().value
                right = self._parse_binary(level + 1)
                left = ast.Binary(
                    op=op, left=left, right=right, line=left.line, column=left.column
                )
                continue
            return left

    def _parse_unary(self):
        token = self._peek()
        if token.kind == PUNCT and token.value in ("!", "-", "+", "~", "++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(
                op=token.value, operand=operand, prefix=True, **self._pos_of(token)
            )
        # Cast: '(' Type ')' unary — speculative.
        if token.is_punct("("):
            saved = self.pos
            try:
                self._advance()
                cast_type = self._parse_type_ref()
                if self._accept_punct(")"):
                    next_token = self._peek()
                    castable = (
                        next_token.kind in (IDENT, INT_LIT, STRING_LIT, CHAR_LIT)
                        or next_token.is_punct("(")
                        or next_token.is_keyword("new")
                        or next_token.is_keyword("this")
                        or (cast_type.is_primitive and next_token.kind != EOF)
                    )
                    if castable:
                        expr = self._parse_unary()
                        return ast.Cast(
                            type=cast_type, expr=expr, **self._pos_of(token)
                        )
                raise JavaSyntaxError("not a cast")
            except JavaSyntaxError:
                self.pos = saved
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._advance()
                name_token = self._expect_ident()
                if self._at_punct("("):
                    arguments = self._parse_arguments()
                    expr = ast.MethodCall(
                        receiver=expr,
                        name=name_token.value,
                        arguments=arguments,
                        **self._pos_of(name_token),
                    )
                else:
                    expr = ast.FieldAccess(
                        receiver=expr, name=name_token.value, **self._pos_of(name_token)
                    )
            elif token.is_punct("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ast.ArrayAccess(
                    array=expr, index=index, line=expr.line, column=expr.column
                )
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expr = ast.Unary(
                    op=token.value,
                    operand=expr,
                    prefix=False,
                    line=expr.line,
                    column=expr.column,
                )
            else:
                return expr

    def _parse_arguments(self):
        self._expect_punct("(")
        arguments = []
        if not self._at_punct(")"):
            arguments.append(self.parse_expression())
            while self._accept_punct(","):
                arguments.append(self.parse_expression())
        self._expect_punct(")")
        return arguments

    def _parse_primary(self):
        token = self._peek()
        if token.kind == INT_LIT:
            self._advance()
            text = token.value.rstrip("lL").replace("_", "")
            value = int(text, 16) if text.lower().startswith("0x") else int(text)
            return ast.Literal(kind="int", value=value, **self._pos_of(token))
        if token.kind == STRING_LIT:
            self._advance()
            return ast.Literal(kind="string", value=token.value, **self._pos_of(token))
        if token.kind == CHAR_LIT:
            self._advance()
            return ast.Literal(kind="char", value=token.value, **self._pos_of(token))
        if token.kind == BOOL_LIT:
            self._advance()
            return ast.Literal(
                kind="bool", value=(token.value == "true"), **self._pos_of(token)
            )
        if token.kind == NULL_LIT:
            self._advance()
            return ast.Literal(kind="null", value=None, **self._pos_of(token))
        if token.is_keyword("this"):
            self._advance()
            if self._at_punct("("):
                arguments = self._parse_arguments()
                return ast.MethodCall(
                    receiver=None, name="this", arguments=arguments, **self._pos_of(token)
                )
            return ast.ThisRef(**self._pos_of(token))
        if token.is_keyword("super"):
            self._advance()
            if self._at_punct("("):
                arguments = self._parse_arguments()
                return ast.MethodCall(
                    receiver=None, name="super", arguments=arguments, **self._pos_of(token)
                )
            self._expect_punct(".")
            name_token = self._expect_ident()
            if self._at_punct("("):
                arguments = self._parse_arguments()
                return ast.MethodCall(
                    receiver=ast.VarRef(name="super", **self._pos_of(token)),
                    name=name_token.value,
                    arguments=arguments,
                    **self._pos_of(name_token),
                )
            return ast.FieldAccess(
                receiver=ast.VarRef(name="super", **self._pos_of(token)),
                name=name_token.value,
                **self._pos_of(name_token),
            )
        if token.is_keyword("new"):
            self._advance()
            new_type = self._parse_type_ref()
            arguments = self._parse_arguments()
            return ast.NewObject(
                type=new_type, arguments=arguments, **self._pos_of(token)
            )
        if token.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.kind == IDENT:
            self._advance()
            if self._at_punct("("):
                arguments = self._parse_arguments()
                return ast.MethodCall(
                    receiver=None,
                    name=token.value,
                    arguments=arguments,
                    **self._pos_of(token),
                )
            return ast.VarRef(name=token.value, **self._pos_of(token))
        self._error("unexpected token %r in expression" % (token.value,))


def parse_compilation_unit(source, limits=None):
    """Parse source text into a :class:`repro.java.ast.CompilationUnit`.

    With ``limits``, the lexer/parser budgets are enforced and any
    escaping ``RecursionError`` (ambient stack already deep enough that
    the explicit depth counter never fired) is converted into the same
    typed ``ResourceLimitError``.
    """
    if limits is None:
        return Parser(tokenize(source)).parse_compilation_unit()
    with recursion_guard("parse-depth", "recursive-descent parse"):
        tokens = tokenize(source, limits=limits)
        return Parser(tokens, limits=limits).parse_compilation_unit()


def parse_program(sources, limits=None):
    """Parse a list of source texts and return their compilation units."""
    return [parse_compilation_unit(source, limits=limits) for source in sources]
