"""Token definitions for the Java-subset lexer."""

from collections import namedtuple

# Token categories.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
INT_LIT = "INT_LIT"
STRING_LIT = "STRING_LIT"
CHAR_LIT = "CHAR_LIT"
BOOL_LIT = "BOOL_LIT"
NULL_LIT = "NULL_LIT"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    [
        "abstract",
        "assert",
        "boolean",
        "break",
        "byte",
        "case",
        "catch",
        "char",
        "class",
        "continue",
        "default",
        "do",
        "double",
        "else",
        "enum",
        "extends",
        "final",
        "finally",
        "float",
        "for",
        "if",
        "implements",
        "import",
        "instanceof",
        "int",
        "interface",
        "long",
        "native",
        "new",
        "package",
        "private",
        "protected",
        "public",
        "return",
        "short",
        "static",
        "strictfp",
        "super",
        "switch",
        "synchronized",
        "this",
        "throw",
        "throws",
        "transient",
        "try",
        "void",
        "volatile",
        "while",
    ]
)

PRIMITIVE_TYPES = frozenset(
    ["boolean", "byte", "char", "short", "int", "long", "float", "double", "void"]
)

MODIFIER_KEYWORDS = frozenset(
    [
        "public",
        "private",
        "protected",
        "static",
        "final",
        "abstract",
        "native",
        "synchronized",
        "transient",
        "volatile",
        "strictfp",
    ]
)

# Multi-character punctuation, longest first so the lexer can use greedy match.
PUNCTUATION = [
    ">>>=",
    ">>>",
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "->",
    "::",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "=",
    ">",
    "<",
    "!",
    "~",
    "?",
    ":",
    "+",
    "-",
    "*",
    "/",
    "&",
    "|",
    "^",
    "%",
    "@",
]


class Token(namedtuple("Token", ["kind", "value", "line", "column"])):
    """A single lexical token.

    ``kind`` is one of the category constants in this module, ``value`` the
    source text (or decoded literal), and ``line``/``column`` are 1-based
    source coordinates of the first character.
    """

    __slots__ = ()

    def is_punct(self, value):
        return self.kind == PUNCT and self.value == value

    def is_keyword(self, value):
        return self.kind == KEYWORD and self.value == value

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.kind, self.value, self.line, self.column)
