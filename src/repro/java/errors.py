"""Errors raised by the Java-subset frontend."""


class FrontendError(Exception):
    """Base class for all frontend errors."""

    def __init__(self, message, line=None, column=None):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self):
        if self.line is None:
            return self.message
        return "%s (line %d, column %d)" % (self.message, self.line, self.column)


class LexError(FrontendError):
    """Raised when the lexer encounters an invalid character sequence."""


class JavaSyntaxError(FrontendError):
    """Raised when the parser encounters an unexpected token."""


class ResolutionError(FrontendError):
    """Raised when symbol resolution fails (unknown type, duplicate method...)."""
