"""Pretty printer: AST back to Java-subset source text.

Round-tripping is used by the annotation applier (``repro.core.applier``):
parse, attach inferred ``@Perm`` annotations, and print the annotated
program.  The printer produces canonical formatting, not byte-identical
source.
"""

from repro.java import ast
from repro.resilience.limits import recursion_guard


class PrettyPrinter:
    """Renders AST nodes to indented source text."""

    def __init__(self, indent="    "):
        self.indent_unit = indent
        self.lines = []
        self.depth = 0

    def _emit(self, text):
        self.lines.append(self.indent_unit * self.depth + text)

    def render(self, node):
        self.lines = []
        self.depth = 0
        # The printer recurses over expression/statement structure; an
        # AST that survived parsing under relaxed limits (or was built
        # programmatically) must still fail typed, not with an
        # interpreter RecursionError.
        with recursion_guard("render-depth", "pretty-printer"):
            if isinstance(node, ast.CompilationUnit):
                self._unit(node)
            elif isinstance(node, ast.ClassDecl):
                self._class(node)
            else:
                raise TypeError("cannot pretty-print %r" % type(node).__name__)
        return "\n".join(self.lines) + "\n"

    # -- declarations --------------------------------------------------------

    def _unit(self, unit):
        if unit.package:
            self._emit("package %s;" % unit.package)
            self._emit("")
        for name in unit.imports:
            self._emit("import %s;" % name)
        if unit.imports:
            self._emit("")
        for index, decl in enumerate(unit.types):
            if index:
                self._emit("")
            self._class(decl)

    def _class(self, decl):
        for annotation in decl.annotations:
            self._emit(self._annotation(annotation))
        keyword = "interface" if decl.is_interface else "class"
        header = self._modifiers(decl.modifiers) + keyword + " " + decl.name
        if decl.type_params:
            header += "<%s>" % ", ".join(decl.type_params)
        if decl.superclass is not None:
            header += " extends " + str(decl.superclass)
        if decl.interfaces:
            joiner = " extends " if decl.is_interface else " implements "
            header += joiner + ", ".join(str(ref) for ref in decl.interfaces)
        self._emit(header + " {")
        self.depth += 1
        for field in decl.fields:
            self._field(field)
        for index, method in enumerate(decl.methods):
            if index or decl.fields:
                self._emit("")
            self._method(method)
        self.depth -= 1
        self._emit("}")

    def _field(self, field):
        for annotation in field.annotations:
            self._emit(self._annotation(annotation))
        text = self._modifiers(field.modifiers) + str(field.type) + " " + field.name
        if field.initializer is not None:
            text += " = " + self._expr(field.initializer)
        self._emit(text + ";")

    def _method(self, method):
        for annotation in method.annotations:
            self._emit(self._annotation(annotation))
        header = self._modifiers(method.modifiers)
        if method.type_params:
            header += "<%s> " % ", ".join(method.type_params)
        if not method.is_constructor:
            header += str(method.return_type) + " "
        header += method.name
        params = ", ".join(
            "%s%s %s"
            % (
                "".join(self._annotation(a) + " " for a in param.annotations),
                param.type,
                param.name,
            )
            for param in method.params
        )
        header += "(%s)" % params
        if method.throws:
            header += " throws " + ", ".join(str(ref) for ref in method.throws)
        if method.body is None:
            self._emit(header + ";")
            return
        self._emit(header + " {")
        self.depth += 1
        for stmt in method.body.statements:
            self._stmt(stmt)
        self.depth -= 1
        self._emit("}")

    def _annotation(self, annotation):
        if not annotation.arguments:
            return "@%s" % annotation.name
        if list(annotation.arguments.keys()) == ["value"]:
            return '@%s("%s")' % (annotation.name, annotation.arguments["value"])
        body = ", ".join(
            '%s="%s"' % (key, value) for key, value in annotation.arguments.items()
        )
        return "@%s(%s)" % (annotation.name, body)

    @staticmethod
    def _modifiers(modifiers):
        return "".join(modifier + " " for modifier in modifiers)

    # -- statements ------------------------------------------------------------

    def _stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            self._emit("{")
            self.depth += 1
            for inner in stmt.statements:
                self._stmt(inner)
            self.depth -= 1
            self._emit("}")
        elif isinstance(stmt, ast.LocalVarDecl):
            text = "%s %s" % (stmt.type, stmt.name)
            if stmt.initializer is not None:
                text += " = " + self._expr(stmt.initializer)
            self._emit(text + ";")
        elif isinstance(stmt, ast.ExprStmt):
            self._emit(self._expr(stmt.expr) + ";")
        elif isinstance(stmt, ast.IfStmt):
            self._emit("if (%s) {" % self._expr(stmt.condition))
            self._nested(stmt.then_branch)
            if stmt.else_branch is not None:
                self._emit("} else {")
                self._nested(stmt.else_branch)
            self._emit("}")
        elif isinstance(stmt, ast.WhileStmt):
            self._emit("while (%s) {" % self._expr(stmt.condition))
            self._nested(stmt.body)
            self._emit("}")
        elif isinstance(stmt, ast.DoWhileStmt):
            self._emit("do {")
            self._nested(stmt.body)
            self._emit("} while (%s);" % self._expr(stmt.condition))
        elif isinstance(stmt, ast.ForStmt):
            init = ", ".join(self._for_init(part) for part in stmt.init)
            condition = self._expr(stmt.condition) if stmt.condition else ""
            update = ", ".join(self._expr(expr) for expr in stmt.update)
            self._emit("for (%s; %s; %s) {" % (init, condition, update))
            self._nested(stmt.body)
            self._emit("}")
        elif isinstance(stmt, ast.ForEachStmt):
            self._emit(
                "for (%s %s : %s) {"
                % (stmt.var_type, stmt.var_name, self._expr(stmt.iterable))
            )
            self._nested(stmt.body)
            self._emit("}")
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self._emit("return;")
            else:
                self._emit("return %s;" % self._expr(stmt.value))
        elif isinstance(stmt, ast.AssertStmt):
            text = "assert %s" % self._expr(stmt.condition)
            if stmt.message is not None:
                text += " : " + self._expr(stmt.message)
            self._emit(text + ";")
        elif isinstance(stmt, ast.SwitchStmt):
            self._emit("switch (%s) {" % self._expr(stmt.selector))
            self.depth += 1
            for case in stmt.cases:
                if case.is_default:
                    self._emit("default:")
                else:
                    for label in case.labels:
                        self._emit("case %s:" % self._expr(label))
                self.depth += 1
                for inner in case.body:
                    self._stmt(inner)
                self.depth -= 1
            self.depth -= 1
            self._emit("}")
        elif isinstance(stmt, ast.SynchronizedStmt):
            self._emit("synchronized (%s) {" % self._expr(stmt.lock))
            self._nested(stmt.body)
            self._emit("}")
        elif isinstance(stmt, ast.ThrowStmt):
            self._emit("throw %s;" % self._expr(stmt.value))
        elif isinstance(stmt, ast.BreakStmt):
            self._emit("break;")
        elif isinstance(stmt, ast.ContinueStmt):
            self._emit("continue;")
        elif isinstance(stmt, ast.EmptyStmt):
            self._emit(";")
        else:
            raise TypeError("cannot pretty-print statement %r" % type(stmt).__name__)

    def _nested(self, stmt):
        self.depth += 1
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._stmt(inner)
        else:
            self._stmt(stmt)
        self.depth -= 1

    def _for_init(self, part):
        if isinstance(part, ast.LocalVarDecl):
            text = "%s %s" % (part.type, part.name)
            if part.initializer is not None:
                text += " = " + self._expr(part.initializer)
            return text
        if isinstance(part, ast.ExprStmt):
            return self._expr(part.expr)
        raise TypeError("unexpected for-init %r" % type(part).__name__)

    # -- expressions -------------------------------------------------------------

    def _expr(self, expr):
        if isinstance(expr, ast.Literal):
            return self._literal(expr)
        if isinstance(expr, ast.VarRef):
            return expr.name
        if isinstance(expr, ast.ThisRef):
            return "this"
        if isinstance(expr, ast.FieldAccess):
            if expr.receiver is None:
                return expr.name
            return "%s.%s" % (self._expr(expr.receiver), expr.name)
        if isinstance(expr, ast.MethodCall):
            arguments = ", ".join(self._expr(arg) for arg in expr.arguments)
            if expr.receiver is None:
                return "%s(%s)" % (expr.name, arguments)
            return "%s.%s(%s)" % (self._expr(expr.receiver), expr.name, arguments)
        if isinstance(expr, ast.NewObject):
            arguments = ", ".join(self._expr(arg) for arg in expr.arguments)
            return "new %s(%s)" % (expr.type, arguments)
        if isinstance(expr, ast.Assign):
            return "%s %s %s" % (self._expr(expr.target), expr.op, self._expr(expr.value))
        if isinstance(expr, ast.Binary):
            return "%s %s %s" % (
                self._maybe_paren(expr.left),
                expr.op,
                self._maybe_paren(expr.right),
            )
        if isinstance(expr, ast.Unary):
            rendered = self._maybe_paren(expr.operand)
            return expr.op + rendered if expr.prefix else rendered + expr.op
        if isinstance(expr, ast.Cast):
            return "(%s) %s" % (expr.type, self._maybe_paren(expr.expr))
        if isinstance(expr, ast.InstanceOf):
            return "%s instanceof %s" % (self._maybe_paren(expr.expr), expr.type)
        if isinstance(expr, ast.Conditional):
            return "%s ? %s : %s" % (
                self._maybe_paren(expr.condition),
                self._expr(expr.then_expr),
                self._expr(expr.else_expr),
            )
        if isinstance(expr, ast.ArrayAccess):
            return "%s[%s]" % (self._expr(expr.array), self._expr(expr.index))
        raise TypeError("cannot pretty-print expression %r" % type(expr).__name__)

    def _maybe_paren(self, expr):
        needs_parens = isinstance(
            expr, (ast.Binary, ast.Conditional, ast.Assign, ast.InstanceOf, ast.Cast)
        )
        rendered = self._expr(expr)
        return "(%s)" % rendered if needs_parens else rendered

    @staticmethod
    def _literal(expr):
        if expr.kind == "string":
            escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
            return '"%s"' % escaped
        if expr.kind == "char":
            return "'%s'" % expr.value
        if expr.kind == "bool":
            return "true" if expr.value else "false"
        if expr.kind == "null":
            return "null"
        return str(expr.value)


def pretty_print(node, indent="    "):
    """Render an AST node (compilation unit or class) to source text."""
    return PrettyPrinter(indent=indent).render(node)


def pretty_print_method(method, indent="    "):
    """Render one method declaration (annotations, signature, body).

    The canonical rendering doubles as the method's *content*: two
    methods print identically exactly when the parser would produce
    interchangeable declarations, which is what the persistent cache
    fingerprints (:mod:`repro.cache.fingerprints`) need.
    """
    printer = PrettyPrinter(indent=indent)
    printer._method(method)
    return "\n".join(printer.lines) + "\n"


def pretty_print_field(field, indent="    "):
    """Render one field declaration, including its initializer."""
    printer = PrettyPrinter(indent=indent)
    printer._field(field)
    return "\n".join(printer.lines) + "\n"
