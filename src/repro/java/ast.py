"""AST node definitions for the Java subset.

Nodes are plain dataclasses carrying 1-based source positions.  A generic
``children()`` iterator supports tree walks, and :class:`NodeVisitor`
implements double-dispatch visiting in the classic style.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)

    def children(self):
        """Yield direct child nodes (depth-one)."""
        for value in self.__dict__.values():
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self):
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node


# ---------------------------------------------------------------------------
# Types and annotations
# ---------------------------------------------------------------------------


@dataclass
class TypeRef(Node):
    """A (possibly generic) type reference such as ``Iterator<Integer>``."""

    name: str = ""
    type_args: List["TypeRef"] = field(default_factory=list)
    dimensions: int = 0

    def __str__(self):
        text = self.name
        if self.type_args:
            text += "<%s>" % ", ".join(str(arg) for arg in self.type_args)
        text += "[]" * self.dimensions
        return text

    @property
    def is_primitive(self):
        from repro.java.tokens import PRIMITIVE_TYPES

        return self.name in PRIMITIVE_TYPES and self.dimensions == 0


@dataclass
class Annotation(Node):
    """An annotation such as ``@Perm(requires="...", ensures="...")``.

    ``arguments`` maps element names to literal string values; a single
    unnamed argument is stored under the key ``"value"``.
    """

    name: str = ""
    arguments: dict = field(default_factory=dict)

    def argument(self, key, default=None):
        return self.arguments.get(key, default)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class CompilationUnit(Node):
    package: Optional[str] = None
    imports: List[str] = field(default_factory=list)
    types: List["ClassDecl"] = field(default_factory=list)


@dataclass
class ClassDecl(Node):
    name: str = ""
    is_interface: bool = False
    modifiers: List[str] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)
    type_params: List[str] = field(default_factory=list)
    superclass: Optional[TypeRef] = None
    interfaces: List[TypeRef] = field(default_factory=list)
    fields: List["FieldDecl"] = field(default_factory=list)
    methods: List["MethodDecl"] = field(default_factory=list)

    def find_method(self, name):
        """Return all methods declared here with the given name."""
        return [method for method in self.methods if method.name == name]


@dataclass
class FieldDecl(Node):
    name: str = ""
    type: TypeRef = None
    modifiers: List[str] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)
    initializer: Optional["Expr"] = None


@dataclass
class Param(Node):
    name: str = ""
    type: TypeRef = None
    annotations: List[Annotation] = field(default_factory=list)


@dataclass
class MethodDecl(Node):
    name: str = ""
    return_type: Optional[TypeRef] = None  # None for constructors
    params: List[Param] = field(default_factory=list)
    modifiers: List[str] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)
    type_params: List[str] = field(default_factory=list)
    throws: List[TypeRef] = field(default_factory=list)
    body: Optional["Block"] = None
    is_constructor: bool = False

    @property
    def is_static(self):
        return "static" in self.modifiers

    @property
    def is_abstract(self):
        return self.body is None

    def annotation(self, name):
        """Return the first annotation with the given simple name, or None."""
        for ann in self.annotations:
            if ann.name == name:
                return ann
        return None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class LocalVarDecl(Stmt):
    type: TypeRef = None
    name: str = ""
    initializer: Optional["Expr"] = None


@dataclass
class ExprStmt(Stmt):
    expr: "Expr" = None


@dataclass
class IfStmt(Stmt):
    condition: "Expr" = None
    then_branch: Stmt = None
    else_branch: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    condition: "Expr" = None
    body: Stmt = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None
    condition: "Expr" = None


@dataclass
class ForStmt(Stmt):
    init: List[Stmt] = field(default_factory=list)
    condition: Optional["Expr"] = None
    update: List["Expr"] = field(default_factory=list)
    body: Stmt = None


@dataclass
class ForEachStmt(Stmt):
    var_type: TypeRef = None
    var_name: str = ""
    iterable: "Expr" = None
    body: Stmt = None


@dataclass
class SwitchCase(Node):
    """One arm of a switch: ``labels`` is empty for ``default``."""

    labels: List["Expr"] = field(default_factory=list)
    body: List["Stmt"] = field(default_factory=list)

    @property
    def is_default(self):
        return not self.labels


@dataclass
class SwitchStmt(Stmt):
    selector: "Expr" = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional["Expr"] = None


@dataclass
class AssertStmt(Stmt):
    condition: "Expr" = None
    message: Optional["Expr"] = None


@dataclass
class SynchronizedStmt(Stmt):
    lock: "Expr" = None
    body: Block = None


@dataclass
class ThrowStmt(Stmt):
    value: "Expr" = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class EmptyStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class Literal(Expr):
    kind: str = ""  # "int" | "string" | "char" | "bool" | "null"
    value: object = None


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class ThisRef(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    receiver: Expr = None  # None means unqualified (implicit this or static)
    name: str = ""


@dataclass
class MethodCall(Expr):
    receiver: Optional[Expr] = None  # None means implicit this / static
    name: str = ""
    arguments: List[Expr] = field(default_factory=list)


@dataclass
class NewObject(Expr):
    type: TypeRef = None
    arguments: List[Expr] = field(default_factory=list)


@dataclass
class Assign(Expr):
    target: Expr = None
    op: str = "="
    value: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None
    prefix: bool = True


@dataclass
class Cast(Expr):
    type: TypeRef = None
    expr: Expr = None


@dataclass
class InstanceOf(Expr):
    expr: Expr = None
    type: TypeRef = None


@dataclass
class Conditional(Expr):
    condition: Expr = None
    then_expr: Expr = None
    else_expr: Expr = None


@dataclass
class ArrayAccess(Expr):
    array: Expr = None
    index: Expr = None


# ---------------------------------------------------------------------------
# Visitor
# ---------------------------------------------------------------------------


class NodeVisitor:
    """Classic double-dispatch visitor.

    ``visit`` dispatches to ``visit_<ClassName>`` if defined, otherwise to
    :meth:`generic_visit`, which recurses into children.
    """

    def visit(self, node):
        method = getattr(self, "visit_%s" % type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node):
        for child in node.children():
            self.visit(child)
        return None


def find_nodes(root, node_type):
    """Return all descendants of ``root`` (inclusive) of the given type."""
    return [node for node in root.walk() if isinstance(node, node_type)]
