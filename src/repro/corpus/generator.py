"""Synthetic PMD-scale corpus generator (Table 1 substitute).

The real PMD source is unavailable; this module generates a deterministic
Java corpus matching Table 1's statistics — 463 classes, 3,120 methods,
38,483 lines, 170 calls to ``Iterator.next()`` — and, crucially, the
iterator-usage *pattern mix* that drives the paper's Table 2 results:

======================  =====  ========================================
pattern                 count  role
======================  =====  ========================================
guarded direct loops      148  verify cleanly in every configuration
unguarded direct calls      3  the 3 false positives of Table 2
wrapper methods             8  need ``unique(result)`` annotations
wrapper-using loops         8  2 warnings each when unannotated
iterator-param loops       10  2 warnings each when unannotated
consumeFirst helper         1  the branch-sensitivity case (4th warning)
conditional callers         4  call consumeFirst under hasNext() guards
misleading setters          4  ``settle*`` read-only methods; H4 fires on
                               the name — Table 4's "more restrictive"
state-test overrides        3  oracle-annotated; ANEK never infers them
======================  =====  ========================================

Unannotated, the corpus produces 45 PLURAL warnings
(3 + 2·8 + 2·10 + 2 + 4), exactly Table 2's "Original" row.
"""

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.corpus.stream_api import STREAM_API_SOURCE


@dataclass
class CorpusSpec:
    """Knobs of the generator; defaults match Table 1."""

    classes: int = 463
    methods: int = 3120
    lines: int = 38483
    guarded_direct: int = 148
    unguarded_direct: int = 3
    wrappers: int = 8
    wrapper_users: int = 8
    param_consumers: int = 10
    conditional_callers: int = 4
    misleading_setters: int = 4
    state_test_overrides: int = 3
    consumers_per_class: int = 6
    #: Deterministic seed for the structural variation the generator
    #: introduces at scale (filler call chains).  Two specs differing
    #: only in seed produce structurally similar but distinct corpora.
    seed: int = 0
    #: Number of interleaved protocol families: 1 = iterator only,
    #: >= 2 adds the hierarchical stream protocol with its consumers.
    protocol_families: int = 1
    #: Guarded stream-drain consumers (only emitted when
    #: ``protocol_families >= 2``); they verify cleanly, so Table 2's
    #: warning counts are untouched.
    stream_consumers: int = 0
    #: Fraction of filler methods that call an earlier filler method in
    #: the same class — gives the scaled corpus a non-trivial call
    #: graph (and SCC condensation) instead of thousands of leaves.
    filler_call_density: float = 0.0

    def scaled(self, factor):
        """A proportionally scaled corpus.

        Factors below 1 shrink for tests, keeping at least one instance
        of every pattern that defines Table 2's shape.  Factors above 1
        grow classes/methods/lines (and the cleanly-verifying pattern
        populations) proportionally while *freezing* the
        warning-producing counts — the Table 2 pattern mix is the
        invariant core, so a 100k-method corpus still yields exactly the
        same PLURAL warning set as the Table 1 corpus.  Scale-out also
        interleaves the second protocol family and gives fillers a call
        graph, so the condensation stays non-trivial at size.
        """

        def scale(value, minimum=1):
            return max(minimum, int(round(value * factor)))

        if factor > 1:
            return replace(
                self,
                classes=scale(self.classes),
                methods=scale(self.methods),
                lines=scale(self.lines),
                guarded_direct=scale(self.guarded_direct),
                wrappers=scale(self.wrappers),
                protocol_families=max(self.protocol_families, 2),
                stream_consumers=max(
                    self.stream_consumers, scale(self.param_consumers)
                ),
                filler_call_density=max(self.filler_call_density, 0.12),
            )
        return CorpusSpec(
            classes=scale(self.classes, 6),
            methods=scale(self.methods, 30),
            lines=scale(self.lines, 400),
            guarded_direct=scale(self.guarded_direct, 4),
            unguarded_direct=min(self.unguarded_direct, 3),
            wrappers=scale(self.wrappers, 2),
            wrapper_users=scale(self.wrapper_users, 2),
            param_consumers=scale(self.param_consumers, 2),
            conditional_callers=scale(self.conditional_callers, 2),
            misleading_setters=scale(self.misleading_setters, 2),
            state_test_overrides=min(self.state_test_overrides, 3),
            consumers_per_class=self.consumers_per_class,
            seed=self.seed,
            protocol_families=self.protocol_families,
            stream_consumers=self.stream_consumers,
            filler_call_density=self.filler_call_density,
        )


@dataclass
class CorpusBundle:
    """The generated corpus plus its ground-truth method registry."""

    spec: CorpusSpec = None
    sources: List[str] = field(default_factory=list)  # excludes the API
    api_source: str = ITERATOR_API_SOURCE
    #: Further protocol-family APIs (e.g. the stream API) when the spec
    #: interleaves more than one family.
    extra_api_sources: List[str] = field(default_factory=list)
    #: qualified method name -> pattern tag ("wrapper", "guarded", ...)
    registry: Dict[str, str] = field(default_factory=dict)

    def all_sources(self):
        return (
            [self.api_source]
            + list(self.extra_api_sources)
            + list(self.sources)
        )

    def line_count(self):
        return sum(len(source.splitlines()) for source in self.sources)

    def methods_tagged(self, tag):
        return sorted(
            name for name, value in self.registry.items() if value == tag
        )


class _ClassWriter:
    """Accumulates one class's source text."""

    def __init__(self, name, header=None):
        self.name = name
        self.lines = [header or "class %s {" % name]

    def add_method(self, body_lines):
        self.lines.append("")
        self.lines.extend("    " + line for line in body_lines)

    def render(self):
        return "\n".join(self.lines + ["}"]) + "\n"


def _filler_method(class_name, index, extra_statements=0, call_target=None):
    """A protocol-free filler method, ~8 source lines.

    ``extra_statements`` pads the body (2 lines each) so the corpus line
    target is absorbed *across* methods instead of by one giant method —
    keeping every method's statement count bounded keeps the per-method
    analyses (alias transfer, PFG join wiring) linear in corpus size.
    ``call_target`` names an earlier method in the same class to call,
    giving fillers a real call graph.
    """
    name = "op%d" % index
    lines = [
        "int %s(int x) {" % name,
        "    int a = x + %d;" % (index % 17 + 1),
        "    int b = a * %d;" % (index % 5 + 2),
        "    if (b > %d) {" % (index % 50 + 10),
        "        b = b - a;",
        "    }",
    ]
    for pad in range(extra_statements):
        lines.append("    int p%d = b + %d;" % (pad, pad))
        lines.append("    b = b + p%d;" % pad)
    if call_target is not None:
        lines.append("    b = b + %s(b);" % call_target)
    lines.extend([
        "    return a + b;",
        "}",
    ])
    return name, lines


#: Cap on padding statements per filler method (2 lines each).  Bounds
#: the largest method the generator can emit; overflow beyond what the
#: fillers can absorb lands in the residual ``pad()`` method.
_MAX_EXTRA_STATEMENTS = 150


def generate_pmd_corpus(spec=None):
    """Generate the corpus; deterministic for a given spec."""
    spec = spec or CorpusSpec()
    bundle = CorpusBundle(spec=spec)
    writers = []
    registry = bundle.registry
    method_budget = spec.methods

    # ---- data classes: collections + wrapper methods --------------------------
    data_class_count = spec.wrappers
    for index in range(data_class_count):
        name = "Data%d" % index
        writer = _ClassWriter(name)
        writer.add_method(["%s() {" % name, "    this.items = new ArrayList<Integer>();", "}"])
        writer.add_method(
            [
                "Iterator<Integer> createItemIter() {",
                "    return items.iterator();",
                "}",
            ]
        )
        writer.add_method(
            [
                "void addItem(Integer v) {",
                "    items.add(v);",
                "}",
            ]
        )
        writer.add_method(
            [
                "Collection<Integer> getItems() {",
                "    return items;",
                "}",
            ]
        )
        writer.lines.insert(1, '    @Perm("share")')
        writer.lines.insert(2, "    Collection<Integer> items;")
        registry["%s.createItemIter" % name] = "wrapper"
        registry["%s.addItem" % name] = "data-helper"
        registry["%s.getItems" % name] = "data-helper"
        registry["%s.%s" % (name, name)] = "data-helper"
        method_budget -= 4
        writers.append(writer)

    # ---- consumer methods -----------------------------------------------------
    consumers = []  # list of (tag, body_lines_fn(index))

    def guarded_direct(index):
        return [
            "int scan%d(Collection<Integer> c) {" % index,
            "    int acc = 0;",
            "    Iterator<Integer> it = c.iterator();",
            "    while (it.hasNext()) {",
            "        acc = acc + it.next();",
            "    }",
            "    return acc;",
            "}",
        ]

    def unguarded_direct(index):
        return [
            "int first%d(Collection<Integer> c) {" % index,
            "    Iterator<Integer> it = c.iterator();",
            "    return it.next();",
            "}",
        ]

    def wrapper_user(index):
        data = "Data%d" % (index % data_class_count)
        return [
            "int total%d(%s d) {" % (index, data),
            "    int acc = 0;",
            "    Iterator<Integer> it = d.createItemIter();",
            "    while (it.hasNext()) {",
            "        acc = acc + it.next();",
            "    }",
            "    return acc;",
            "}",
        ]

    def param_consumer(index):
        return [
            "int drain%d(Iterator<Integer> it) {" % index,
            "    int acc = 0;",
            "    while (it.hasNext()) {",
            "        acc = acc + it.next();",
            "    }",
            "    return acc;",
            "}",
        ]

    def consume_first(index):
        return [
            "int consumeFirst(Iterator<Integer> it) {",
            "    int v = it.next();",
            "    if (it.hasNext()) {",
            "        v = v + 1;",
            "    }",
            "    return v;",
            "}",
        ]

    def conditional_caller(index):
        return [
            "int safeFirst%d(Collection<Integer> c) {" % index,
            "    Iterator<Integer> it = c.iterator();",
            "    if (it.hasNext()) {",
            "        return consumeFirst(it);",
            "    }",
            "    return 0;",
            "}",
        ]

    def misleading_setter(index):
        # Read-only despite the set* name: H4 will elevate a writing
        # receiver kind that the method does not actually need.
        return [
            "int settle%d(Iterator<Integer> it) {" % index,
            "    if (it.hasNext()) {",
            "        return 1;",
            "    }",
            "    return 0;",
            "}",
        ]

    for index in range(spec.guarded_direct):
        consumers.append(("guarded", guarded_direct, index))
    for index in range(spec.unguarded_direct):
        consumers.append(("unguarded", unguarded_direct, index))
    for index in range(spec.wrapper_users):
        consumers.append(("wrapper-user", wrapper_user, index))
    for index in range(spec.param_consumers):
        consumers.append(("param-consumer", param_consumer, index))
    for index in range(spec.misleading_setters):
        consumers.append(("misleading-setter", misleading_setter, index))

    per_class = spec.consumers_per_class
    consumer_writers = []
    for position, (tag, builder, index) in enumerate(consumers):
        class_index = position // per_class
        if class_index >= len(consumer_writers):
            consumer_writers.append(_ClassWriter("Consumer%d" % class_index))
        writer = consumer_writers[class_index]
        body = builder(index)
        writer.add_method(body)
        method_name = body[0].split("(", 1)[0].split()[-1]
        registry["%s.%s" % (writer.name, method_name)] = tag
        method_budget -= 1
    writers.extend(consumer_writers)

    # consumeFirst and its conditional callers share one class so the
    # implicit-this call resolves.
    helper_writer = _ClassWriter("Helper")
    for tag, builder, index in [("consume-first", consume_first, 0)] + [
        ("conditional-caller", conditional_caller, i)
        for i in range(spec.conditional_callers)
    ]:
        body = builder(index)
        helper_writer.add_method(body)
        method_name = body[0].split("(", 1)[0].split()[-1]
        registry["Helper.%s" % method_name] = tag
        method_budget -= 1
    writers.append(helper_writer)

    # ---- state-test override classes -------------------------------------------
    for index in range(spec.state_test_overrides):
        name = "CheckedIterator%d" % index
        writer = _ClassWriter(
            name,
            header='@States("HASNEXT, END")\nclass %s implements Iterator<Integer> {' % name,
        )
        writer.lines.insert(1, "    int cursor;")
        writer.lines.insert(2, "    int limit;")
        writer.add_method(
            [
                "Integer next() {",
                "    cursor = cursor + 1;",
                "    return cursor;",
                "}",
            ]
        )
        writer.add_method(
            [
                "boolean hasNext() {",
                "    return cursor < limit;",
                "}",
            ]
        )
        registry["%s.next" % name] = "state-test-class"
        registry["%s.hasNext" % name] = "state-test-override"
        method_budget -= 2
        writers.append(writer)

    # ---- stream-family consumers -------------------------------------------------
    # A second, hierarchical protocol interleaved with the iterator
    # family.  Every consumer drains under ready() guards and closes, so
    # the corpus-wide PLURAL warning count is untouched.
    if spec.protocol_families >= 2:
        bundle.extra_api_sources = [STREAM_API_SOURCE]
        stream_writers = []
        for index in range(spec.stream_consumers):
            class_index = index // per_class
            if class_index >= len(stream_writers):
                stream_writers.append(
                    _ClassWriter("StreamConsumer%d" % class_index)
                )
            writer = stream_writers[class_index]
            writer.add_method(
                [
                    "int pull%d(FileSystem fs, String path) {" % index,
                    "    Stream s = fs.open(path);",
                    "    int acc = 0;",
                    "    while (s.ready()) {",
                    "        acc = acc + s.read();",
                    "    }",
                    "    s.close();",
                    "    return acc;",
                    "}",
                ]
            )
            registry["%s.pull%d" % (writer.name, index)] = "stream-consumer"
            method_budget -= 1
        writers.extend(stream_writers)

    # ---- filler classes ----------------------------------------------------------
    method_budget -= 1  # reserved for the padding method below
    filler_class_count = spec.classes - len(writers)
    if filler_class_count < 1:
        filler_class_count = 1
    base = method_budget // filler_class_count
    remainder = method_budget - base * filler_class_count
    filler_counts = [
        base + (1 if class_index < remainder else 0)
        for class_index in range(filler_class_count)
    ]
    # Call plan: seeded, decided up-front so the measuring pass and the
    # final pass emit identical structure.  Only earlier methods of the
    # same class are called, so the filler call graph is acyclic and
    # resolves without imports.
    rng = random.Random(spec.seed)
    call_plan = {}
    if spec.filler_call_density > 0:
        for class_index, count in enumerate(filler_counts):
            for method_index in range(1, count):
                if rng.random() < spec.filler_call_density:
                    call_plan[(class_index, method_index)] = "op%d" % (
                        rng.randrange(method_index)
                    )

    def build_fillers(extras):
        built = []
        for class_index, count in enumerate(filler_counts):
            name = "Util%d" % class_index
            writer = _ClassWriter(name)
            for method_index in range(count):
                method_name, body = _filler_method(
                    name,
                    method_index,
                    extra_statements=extras.get(
                        (class_index, method_index), 0
                    ),
                    call_target=call_plan.get((class_index, method_index)),
                )
                writer.add_method(body)
            built.append(writer)
        return built

    # Measuring pass: how many lines does the corpus have before padding?
    probe = build_fillers({})
    current = sum(len(w.render().splitlines()) for w in writers + probe)
    deficit = max(spec.lines - current - 3, 0)  # pad header/footer + blank

    # Distribute the deficit across filler methods (2 lines per extra
    # statement pair), bounded per method; the residual goes to pad().
    extras = {}
    filler_methods = [
        (class_index, method_index)
        for class_index, count in enumerate(filler_counts)
        for method_index in range(count)
    ]
    if filler_methods and deficit >= 2:
        total_pairs = deficit // 2
        per_method = total_pairs // len(filler_methods)
        leftover = total_pairs - per_method * len(filler_methods)
        for position, key in enumerate(filler_methods):
            share = per_method + (1 if position < leftover else 0)
            share = min(share, _MAX_EXTRA_STATEMENTS)
            if share:
                extras[key] = share
    absorbed = 2 * sum(extras.values())
    residual = deficit - absorbed

    filler_writers = build_fillers(extras)
    for class_index, count in enumerate(filler_counts):
        for method_index in range(count):
            registry["Util%d.op%d" % (class_index, method_index)] = "filler"
    writers.extend(filler_writers)
    last_writer = filler_writers[-1]

    # ---- pad to the target line count ---------------------------------------------
    # The reserved padding method absorbs whatever small residual the
    # distributed extras could not express, so the corpus hits the
    # target line count exactly.
    pad_body = ["void pad() {"]
    for index in range(residual):
        pad_body.append("    int p%d = %d;" % (index, index))
    pad_body.append("}")
    last_writer.add_method(pad_body)
    registry["%s.pad" % last_writer.name] = "filler"

    bundle.sources = [writer.render() for writer in writers]
    return bundle


# ---------------------------------------------------------------------------
# Table 3 programs: a branchy multi-method program and its inlined twin
# ---------------------------------------------------------------------------


def _branchy_step(index, last):
    """One short branchy method operating on a collection."""
    next_call = (
        "        acc = acc + step%d(c, acc);" % (index + 1) if not last else
        "        acc = acc + 1;"
    )
    return [
        "int step%d(Collection<Integer> c, int seed) {" % index,
        "    int acc = seed;",
        "    Iterator<Integer> it = c.iterator();",
        "    while (it.hasNext()) {",
        "        int v = it.next();",
        "        if (v > %d) {" % (index % 7),
        "            acc = acc + v;",
        "        } else {",
        "            acc = acc - v;",
        "        }",
        "    }",
        "    if (acc > %d) {" % (index * 3 + 1),
        next_call,
        "    }",
        "    return acc;",
        "}",
    ]


def generate_branchy_program(methods=24):
    """The small branchy program of Table 3 (~400 lines, many short
    methods with numerous control-flow branches)."""
    lines = ["class Branchy {"]
    for index in range(methods):
        lines.append("")
        body = _branchy_step(index, last=(index == methods - 1))
        lines.extend("    " + line for line in body)
    lines.append("}")
    return "\n".join(lines) + "\n"


def generate_inlined_program(methods=24):
    """The same program with every method inlined into one large method —
    the configuration on which PLURAL's local inference must solve one
    global fraction system (Table 3's comparison)."""
    lines = [
        "class Inlined {",
        "    int run(Collection<Integer> c, int seed) {",
        "        int acc = seed;",
    ]
    for index in range(methods):
        lines.extend(
            [
                "        Iterator<Integer> it%d = c.iterator();" % index,
                "        while (it%d.hasNext()) {" % index,
                "            int v%d = it%d.next();" % (index, index),
                "            if (v%d > %d) {" % (index, index % 7),
                "                acc = acc + v%d;" % index,
                "            } else {",
                "                acc = acc - v%d;" % index,
                "            }",
                "        }",
                "        if (acc > %d) {" % (index * 3 + 1),
                "            acc = acc + %d;" % (index + 1),
                "        }",
            ]
        )
    lines.extend(["        return acc;", "    }", "}"])
    return "\n".join(lines) + "\n"
