"""A second annotated protocol: streams with a nested state hierarchy.

The iterator protocol of Figure 1 is flat (ALIVE ⊃ {HASNEXT, END}); this
API exercises the *hierarchical* typestate machinery the PLURAL
methodology supports:

    ALIVE ─┬─ OPEN ─┬─ READY      (data available)
           │        └─ DRAINED    (end of data, still open)
           └─ CLOSED

``read`` needs the stream in READY; ``ready()`` is the dynamic state
test; ``close`` consumes a unique OPEN stream and leaves it CLOSED.
Knowing READY implies knowing OPEN (substates satisfy superstates), so a
``read`` after a successful ``ready()`` check also satisfies any
OPEN-requiring operation.
"""

STREAM_API_SOURCE = '''
@States("OPEN:READY|DRAINED, CLOSED")
interface Stream {
    @Perm(requires="full(this) in READY", ensures="full(this) in OPEN")
    int read();

    @Perm(requires="pure(this) in OPEN", ensures="pure(this)")
    @TrueIndicates("READY")
    @FalseIndicates("DRAINED")
    boolean ready();

    @Perm(requires="unique(this) in OPEN", ensures="unique(this) in CLOSED")
    void close();

    @Perm(requires="pure(this) in OPEN", ensures="pure(this)")
    int position();
}

interface FileSystem {
    @Perm(ensures="unique(result) in OPEN")
    Stream open(String path);
}

@States("OPEN:READY|DRAINED, CLOSED")
class ByteStream implements Stream {
    int cursor;
    int limit;

    ByteStream() { }

    @Perm(requires="full(this) in READY", ensures="full(this) in OPEN")
    int read() { cursor = cursor + 1; return cursor; }

    @Perm(requires="pure(this) in OPEN", ensures="pure(this)")
    @TrueIndicates("READY")
    @FalseIndicates("DRAINED")
    boolean ready() { return cursor < limit; }

    @Perm(requires="unique(this) in OPEN", ensures="unique(this) in CLOSED")
    void close() { cursor = limit; }

    @Perm(requires="pure(this) in OPEN", ensures="pure(this)")
    int position() { return cursor; }
}
'''

#: A well-behaved client: open, drain under ready() guards, close.
STREAM_CLIENT_GOOD = '''
class CopyTool {
    int drainAll(FileSystem fs, String path) {
        Stream s = fs.open(path);
        int total = 0;
        while (s.ready()) {
            total = total + s.read();
        }
        s.close();
        return total;
    }
}
'''

#: Protocol violations: read without a ready() check, use after close,
#: and double close.
STREAM_CLIENT_BAD = '''
class Sloppy {
    int grab(FileSystem fs, String path) {
        Stream s = fs.open(path);
        return s.read();
    }

    int useAfterClose(FileSystem fs, String path) {
        Stream s = fs.open(path);
        s.close();
        return s.position();
    }

    void doubleClose(FileSystem fs, String path) {
        Stream s = fs.open(path);
        s.close();
        s.close();
    }
}
'''


def stream_sources(*clients):
    """The stream API plus any client sources."""
    return [STREAM_API_SOURCE] + list(clients)
