"""The hand-annotation oracle — the paper's "Bierhoff" configuration.

Bierhoff's thesis experiment annotated PMD by hand in 75 minutes (26
annotations) until PLURAL reported as few warnings as possible.  Without
his annotations, this module derives the gold specifications a careful
human would write for the generated corpus, using the generator's
ground-truth registry:

* wrapper methods         — ``ensures unique(result)`` only (the minimal
  spec that verifies every caller without burdening them)
* misleading setters      — ``pure(it)`` only; ANEK's H4 additionally
  demands a writing receiver (Table 4's "more restrictive" rows)
* iterator-param loops    — ``requires full(it), ensures full(it)``
* consumeFirst            — ``requires full(it) in HASNEXT`` — the case
  ANEK misses for lack of branch sensitivity
* state-test overrides    — ``@TrueIndicates/@FalseIndicates`` — specs
  ANEK never attempts to infer (Table 4's "removed" rows)
"""

from repro.permissions.spec import MethodSpec, PermClause

#: Simulated manual effort (minutes), as reported in Bierhoff's thesis.
MANUAL_ANNOTATION_MINUTES = 75.0


def oracle_specs(bundle):
    """Gold specs keyed by qualified method name."""
    specs = {}
    wrappers = bundle.methods_tagged("wrapper")
    for name in wrappers:
        # Result-only, the minimal spec that verifies all callers: the
        # receiver is left unconstrained so unannotated callers need no
        # receiver permission (Bierhoff annotated "until there were as
        # few remaining warnings as possible" with minimal effort).
        specs[name] = MethodSpec(
            ensures=[PermClause("unique", "result", "ALIVE")],
        )
    for name in bundle.methods_tagged("param-consumer"):
        specs[name] = MethodSpec(
            requires=[PermClause("full", "it", "ALIVE")],
            ensures=[PermClause("full", "it", "ALIVE")],
        )
    for name in bundle.methods_tagged("consume-first"):
        specs[name] = MethodSpec(
            requires=[PermClause("full", "it", "HASNEXT")],
            ensures=[PermClause("full", "it", "ALIVE")],
        )
    for name in bundle.methods_tagged("state-test-override"):
        specs[name] = MethodSpec(
            requires=[PermClause("pure", "this", "ALIVE")],
            ensures=[PermClause("pure", "this", "ALIVE")],
            true_indicates="HASNEXT",
            false_indicates="END",
        )
    for name in bundle.methods_tagged("misleading-setter"):
        # The human writes the minimal truth: a read-only borrow of the
        # iterator and nothing on the receiver.  ANEK's H4 fires on the
        # ``set*`` name and additionally demands a writing receiver —
        # Table 4's "changed, more restrictive" bucket.
        specs[name] = MethodSpec(
            requires=[PermClause("pure", "it", "ALIVE")],
            ensures=[PermClause("pure", "it", "ALIVE")],
        )
    return specs


def oracle_annotation_count(bundle):
    """Number of hand-annotated methods (paper: 26)."""
    return len(oracle_specs(bundle))


def apply_oracle(program, bundle):
    """Attach the oracle specs to a resolved program's ASTs.

    Returns the number of methods annotated.
    """
    from repro.core.applier import apply_spec_to_method

    specs = oracle_specs(bundle)
    count = 0
    for method_ref in program.all_methods():
        spec = specs.get(method_ref.qualified_name)
        if spec is None:
            continue
        if apply_spec_to_method(method_ref.method_decl, spec, replace=True):
            count += 1
    return count
