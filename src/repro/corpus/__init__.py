"""Workloads: the annotated Iterator API, the paper's example programs,
and the PMD-scale synthetic corpus with its hand-annotation oracle.

The real PMD source (38,483 lines) and Bierhoff's hand annotations are
not available; ``generator`` builds a seeded synthetic corpus matching
Table 1's statistics and the iterator-usage pattern mix that drives the
paper's Table 2/4 results, and ``oracle`` derives the gold annotations a
careful human would write (the Bierhoff configuration).
"""

from repro.corpus.examples import FIGURE3_CLIENT, figure3_sources
from repro.corpus.generator import (
    CorpusBundle,
    CorpusSpec,
    generate_branchy_program,
    generate_inlined_program,
    generate_pmd_corpus,
)
from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.corpus.oracle import apply_oracle, oracle_specs

__all__ = [
    "ITERATOR_API_SOURCE",
    "FIGURE3_CLIENT",
    "figure3_sources",
    "CorpusSpec",
    "CorpusBundle",
    "generate_pmd_corpus",
    "generate_branchy_program",
    "generate_inlined_program",
    "oracle_specs",
    "apply_oracle",
]
