"""The paper's running example programs (Figures 3 and 5)."""

from repro.corpus.iterator_api import ITERATOR_API_SOURCE

#: Figure 3: the spreadsheet application whose createColIter method gives
#: rise to conflicting constraints (guarded uses vs. testParseCSV).
FIGURE3_CLIENT = '''
class Row {
    Collection<Integer> entries;

    Iterator<Integer> createColIter() {
        return entries.iterator();
    }

    void add(int val) { }

    Row copy(Row original) {
        Iterator<Integer> iter = original.createColIter();
        Row result = new Row();
        while (iter.hasNext()) {
            result.add(iter.next());
        }
        return result;
    }

    int sumRow(Row r) {
        int total = 0;
        Iterator<Integer> iter = r.createColIter();
        while (iter.hasNext()) {
            total = total + iter.next();
        }
        return total;
    }

    int countRow(Row r) {
        int n = 0;
        Iterator<Integer> iter = r.createColIter();
        while (iter.hasNext()) {
            Integer v = iter.next();
            n = n + 1;
        }
        return n;
    }

    Row parseCSVRow(String s) {
        return new Row();
    }

    @Test
    void testParseCSV() {
        Row r1 = parseCSVRow("1,2,3,4");
        Row r2 = parseCSVRow("4,6,7,8");
        int sum = r1.createColIter().next() +
                  r2.createColIter().next();
        assert sum > 5;
    }
}
'''

#: Figure 5: just the copy method (the PFG of Figure 6 is built from it).
FIGURE5_COPY = '''
class Row {
    Collection<Integer> entries;

    Iterator<Integer> createColIter() {
        return entries.iterator();
    }

    void add(int val) { }

    Row copy(Row original) {
        Iterator<Integer> iter = original.createColIter();
        Row result = new Row();
        while (iter.hasNext()) {
            result.add(iter.next());
        }
        return result;
    }
}
'''


def figure3_sources():
    """API + Figure 3 client, ready for the pipeline."""
    return [ITERATOR_API_SOURCE, FIGURE3_CLIENT]


def figure5_sources():
    """API + Figure 5 program (for the Figure 6 PFG)."""
    return [ITERATOR_API_SOURCE, FIGURE5_COPY]
