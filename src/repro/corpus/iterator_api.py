"""The annotated Iterator/Collection API (paper Figures 1 and 2).

This is the library-side specification that, in the paper's workflow, API
developers provide once; ANEK then infers the client-side annotations.
"""

ITERATOR_API_SOURCE = '''
@States("HASNEXT, END")
interface Iterator<T> {
    @Perm(requires="full(this) in HASNEXT", ensures="full(this) in ALIVE")
    T next();

    @Perm(requires="pure(this) in ALIVE", ensures="pure(this)")
    @TrueIndicates("HASNEXT")
    @FalseIndicates("END")
    boolean hasNext();
}

interface Iterable<T> {
    @Perm(ensures="unique(result) in ALIVE")
    Iterator<T> iterator();
}

interface Collection<T> extends Iterable<T> {
    @Perm(ensures="unique(result) in ALIVE")
    Iterator<T> iterator();

    @Perm(requires="share(this)", ensures="share(this)")
    boolean add(T item);

    @Perm(requires="pure(this)", ensures="pure(this)")
    int size();
}

@States("HASNEXT, END")
class ListIterator<T> implements Iterator<T> {
    int cursor;

    ListIterator() { }

    @Perm(requires="full(this) in HASNEXT", ensures="full(this) in ALIVE")
    T next() { cursor = cursor + 1; return null; }

    @Perm(requires="pure(this) in ALIVE", ensures="pure(this)")
    @TrueIndicates("HASNEXT")
    @FalseIndicates("END")
    boolean hasNext() { return cursor < 10; }
}

class ArrayList<T> implements Collection<T> {
    int count;

    ArrayList() { }

    @Perm(ensures="unique(result) in ALIVE")
    Iterator<T> iterator() { return new ListIterator<T>(); }

    @Perm(requires="share(this)", ensures="share(this)")
    boolean add(T item) { count = count + 1; return true; }

    @Perm(requires="pure(this)", ensures="pure(this)")
    int size() { return count; }
}
'''


def iterator_protocol_dot():
    """Figure 1 as a DOT statechart."""
    from repro.permissions.states import iterator_state_space

    return iterator_state_space().to_dot()
