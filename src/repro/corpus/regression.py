"""The small-benchmark regression suite (paper §4.2).

"First, we developed a number of test benchmarks.  Each of these
benchmarks consisted of one or more classes ... Each experiment was
designed to test some particular ANEK constraint or feature. ...
our small experiment suite formed a regression suite of sorts and also
a training set to fine-tune the parameters of the inference engine."

Each :class:`RegressionCase` is a small program targeting one constraint
(L1–L3, H1–H5) or feature (conflict tolerance, modular summaries), with
the expected inference outcome.  ``run_case`` executes the pipeline and
checks the expectations; the suite runs in tests and benchmarks exactly
as the paper used it.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core import AnekPipeline, InferenceSettings
from repro.corpus.iterator_api import ITERATOR_API_SOURCE


@dataclass
class RegressionCase:
    """One targeted benchmark: source, target rule, expectations."""

    name: str
    rule: str  # the constraint/feature under test
    source: str
    #: expected (method qualified name, slot, target, kind) clauses;
    #: slot is "requires" or "ensures".
    expect_clauses: List[tuple] = field(default_factory=list)
    #: (method qualified name, slot, target) that must NOT get a clause.
    expect_absent: List[tuple] = field(default_factory=list)
    #: expected PLURAL warning count after applying inferred specs.
    expect_warnings: Optional[int] = 0
    #: optional custom assertion over the PipelineResult.
    check: Optional[Callable] = None


@dataclass
class CaseOutcome:
    case: RegressionCase = None
    passed: bool = True
    failures: List[str] = field(default_factory=list)
    result: object = None


def run_case(case, settings=None):
    """Run one case; returns a :class:`CaseOutcome`."""
    pipeline = AnekPipeline(settings=settings or InferenceSettings())
    result = pipeline.run_on_sources([ITERATOR_API_SOURCE, case.source])
    outcome = CaseOutcome(case=case, result=result)
    specs = {
        ref.qualified_name: spec for ref, spec in result.specs.items()
    }

    def clauses_of(name, slot):
        spec = specs.get(name)
        if spec is None:
            return []
        return spec.requires if slot == "requires" else spec.ensures

    for name, slot, target, kind in case.expect_clauses:
        found = [
            clause
            for clause in clauses_of(name, slot)
            if clause.target == target and clause.kind == kind
        ]
        if not found:
            outcome.failures.append(
                "expected %s %s %s(%s); got %s"
                % (name, slot, kind, target, specs.get(name))
            )
    for name, slot, target in case.expect_absent:
        found = [
            clause
            for clause in clauses_of(name, slot)
            if clause.target == target
        ]
        if found:
            outcome.failures.append(
                "expected no %s clause for %s in %s; got %s"
                % (slot, target, name, found)
            )
    if case.expect_warnings is not None:
        if len(result.warnings) != case.expect_warnings:
            outcome.failures.append(
                "expected %d warnings, got %d: %s"
                % (
                    case.expect_warnings,
                    len(result.warnings),
                    [w.format() for w in result.warnings],
                )
            )
    if case.check is not None:
        error = case.check(result)
        if error:
            outcome.failures.append(error)
    outcome.passed = not outcome.failures
    return outcome


def run_suite(cases=None, settings=None):
    """Run the full suite; returns the list of outcomes."""
    return [run_case(case, settings) for case in cases or REGRESSION_SUITE]


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------

REGRESSION_SUITE = [
    RegressionCase(
        name="l1-split-full-demand",
        rule="L1",
        source="""
        class L1Split {
            int first(Iterator<Integer> it) {
                return it.next();
            }
        }
        """,
        # next() demands full; only unique/full satisfy — the split's
        # ability constraint must propagate full to the parameter.
        expect_clauses=[("L1Split.first", "requires", "it", "full")],
        expect_warnings=None,
    ),
    RegressionCase(
        name="l1-pure-borrow",
        rule="L1",
        source="""
        class L1Borrow {
            boolean peek(Iterator<Integer> it) {
                return it.hasNext();
            }
        }
        """,
        # hasNext demands only pure; the weakest sufficient kind wins.
        expect_clauses=[("L1Borrow.peek", "requires", "it", "pure")],
    ),
    RegressionCase(
        name="l2-loop-merge",
        rule="L2",
        source="""
        class L2Loop {
            int drain(Iterator<Integer> it) {
                int acc = 0;
                while (it.hasNext()) { acc = acc + it.next(); }
                return acc;
            }
        }
        """,
        # The loop-header merge must carry the full demand back to PRE.
        expect_clauses=[
            ("L2Loop.drain", "requires", "it", "full"),
            ("L2Loop.drain", "ensures", "it", "full"),
        ],
    ),
    RegressionCase(
        name="l3-field-write",
        rule="L3",
        source="""
        class L3Store {
            int counter;
            void bump() { counter = counter + 1; }
        }
        """,
        # A field store needs a writing receiver; pure/immutable excluded.
        check=lambda result: _check_writing_this(result, "L3Store.bump"),
    ),
    RegressionCase(
        name="h1-constructor-unique",
        rule="H1",
        source="""
        class H1New {
            H1New build() { return new H1New(); }
        }
        """,
        expect_clauses=[("H1New.build", "ensures", "result", "unique")],
    ),
    RegressionCase(
        name="h2-pre-post-agree",
        rule="H2",
        source="""
        class H2Agree {
            int touch(Iterator<Integer> it) {
                return it.next();
            }
        }
        """,
        check=lambda result: _check_pre_post_same(result, "H2Agree.touch", "it"),
        expect_warnings=None,
    ),
    RegressionCase(
        name="h3-create-returns-unique",
        rule="H3",
        source="""
        class H3Factory {
            @Perm("share")
            Collection<Integer> items;
            Iterator<Integer> createIter() { return items.iterator(); }
        }
        """,
        expect_clauses=[("H3Factory.createIter", "ensures", "result", "unique")],
    ),
    RegressionCase(
        name="h4-setter-writes",
        rule="H4",
        source="""
        class H4Setter {
            int label;
            void setLabel(int v) { label = v; }
        }
        """,
        check=lambda result: _check_writing_this(result, "H4Setter.setLabel"),
    ),
    RegressionCase(
        name="h5-sync-thread-shared",
        rule="H5",
        source="""
        class H5Sync {
            int poke(Iterator<Integer> it) {
                synchronized (it) {
                    return it.next();
                }
            }
        }
        """,
        check=lambda result: _check_not_unique(result, "H5Sync.poke", "it"),
        expect_warnings=None,
    ),
    RegressionCase(
        name="conflict-tolerance",
        rule="probabilistic robustness",
        source="""
        class Conflicted {
            @Perm("share")
            Collection<Integer> items;
            Iterator<Integer> createIter() { return items.iterator(); }
            int good1() {
                int acc = 0;
                Iterator<Integer> it = createIter();
                while (it.hasNext()) { acc = acc + it.next(); }
                return acc;
            }
            int good2() {
                int acc = 0;
                Iterator<Integer> it = createIter();
                while (it.hasNext()) { acc = acc + it.next(); }
                return acc;
            }
            int bad() {
                return createIter().next();
            }
        }
        """,
        # The guarded majority wins: ALIVE, not HASNEXT; the buggy use
        # warns instead of poisoning the spec.
        expect_clauses=[("Conflicted.createIter", "ensures", "result", "unique")],
        expect_warnings=1,
        check=lambda result: _check_result_state(
            result, "Conflicted.createIter", "ALIVE"
        ),
    ),
    RegressionCase(
        name="modular-summary-flow",
        rule="summaries",
        source="""
        class Chain {
            @Perm("share")
            Collection<Integer> items;
            Iterator<Integer> inner() { return items.iterator(); }
            Iterator<Integer> outer() { return inner(); }
            int use() {
                int acc = 0;
                Iterator<Integer> it = outer();
                while (it.hasNext()) { acc = acc + it.next(); }
                return acc;
            }
        }
        """,
        # The unique(result) fact must traverse two summary hops.
        expect_clauses=[
            ("Chain.inner", "ensures", "result", "unique"),
            ("Chain.outer", "ensures", "result", "unique"),
        ],
        expect_warnings=0,
    ),
    RegressionCase(
        name="no-spurious-annotations",
        rule="extraction gate",
        source="""
        class Quiet {
            int idle(Collection<Integer> c, int x) {
                return x + 1;
            }
        }
        """,
        expect_absent=[
            ("Quiet.idle", "requires", "c"),
            ("Quiet.idle", "ensures", "c"),
        ],
        expect_warnings=0,
    ),
]


def _check_writing_this(result, qualified_name):
    from repro.permissions import kinds

    for ref, spec in result.specs.items():
        if ref.qualified_name != qualified_name:
            continue
        for clause in spec.requires:
            if clause.target == "this":
                if clause.kind in kinds.WRITING_KINDS:
                    return None
                return "receiver requires %s, not a writing kind" % clause.kind
        return "no receiver requires clause inferred"
    return "method %s not found" % qualified_name


def _check_pre_post_same(result, qualified_name, target):
    for ref, spec in result.specs.items():
        if ref.qualified_name != qualified_name:
            continue
        pre = [c.kind for c in spec.requires if c.target == target]
        post = [c.kind for c in spec.ensures if c.target == target]
        if pre and post and pre[0] == post[0]:
            return None
        return "pre/post kinds differ: %s vs %s" % (pre, post)
    return "method %s not found" % qualified_name


def _check_not_unique(result, qualified_name, target):
    for ref, spec in result.specs.items():
        if ref.qualified_name != qualified_name:
            continue
        for clause in spec.requires:
            if clause.target == target and clause.kind == "unique":
                return "H5 target inferred unique, expected thread-shared"
        return None
    return "method %s not found" % qualified_name


def _check_result_state(result, qualified_name, state):
    for ref, spec in result.specs.items():
        if ref.qualified_name != qualified_name:
            continue
        for clause in spec.ensures:
            if clause.target == "result":
                if clause.state == state:
                    return None
                return "result state %s, expected %s" % (clause.state, state)
        return "no result clause"
    return "method %s not found" % qualified_name
