"""``python -m repro`` — the ANEK command-line tool."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
