"""Command-line interface: the ANEK tool as a user would run it.

    python -m repro infer  FILE...    infer @Perm specs, print annotated source
    python -m repro check  FILE...    run the PLURAL checker, print warnings
    python -m repro serve  [--socket PATH | --port N]   analysis daemon
    python -m repro client OP [FILE...] --connect ADDR  query a daemon
    python -m repro pfg    FILE CLASS.METHOD   print a method's PFG (DOT)
    python -m repro table  {1,2,3,4}  regenerate a paper table
    python -m repro figure {1,4,6,10} regenerate a paper figure
    python -m repro fuzz --seed S --budget N   structured fuzzing campaign

``infer`` and ``check`` accept ``--api`` to prepend the annotated
Iterator API (on by default) and ``--threshold``/``--max-iters`` to tune
extraction and the worklist.  ``infer`` keeps a persistent analysis
cache in ``.anek-cache/`` (``--cache-dir`` to move it, ``--no-cache`` to
disable, ``--cache-stats`` to print hit/miss counters).

``infer --run-dir DIR`` makes the run durable (journal + checkpoints);
SIGTERM/SIGINT then stop it gracefully at the next checkpoint barrier
and ``infer --resume DIR`` continues it bit-identically.

Exit codes: 0 = clean run; 1 = ``check`` found warnings; 2 = the run
completed but quarantined/degraded some work (see ``--fail-report``);
3 = usage error; 4 = fatal internal error (one-line summary on stderr,
full traceback with ``--debug``); 5 = interrupted at a checkpoint —
resumable with ``--resume``; 6 = ``serve --supervise`` gave up on a
crash-looping daemon.
"""

import argparse
import os
import sys
from contextlib import nullcontext

#: CLI exit codes (0 = clean; ``check`` uses 1 for "warnings found",
#: ``fuzz`` uses it for "sentinel violations found").
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_DEGRADED = 2
EXIT_USAGE = 3
EXIT_FATAL = 4
EXIT_INTERRUPTED = 5
#: Mirrors :data:`repro.serve.supervisor.EXIT_CRASHLOOP`.
EXIT_CRASHLOOP = 6

from repro.cache import DEFAULT_CACHE_DIR
from repro.core import AnekPipeline, InferenceSettings
from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import MethodRef, resolve_program


def _read_sources(paths, include_api):
    sources = []
    if include_api:
        sources.append(ITERATOR_API_SOURCE)
    for path in paths:
        with open(path) as handle:
            sources.append(handle.read())
    return sources


def resolve_executor_args(executor, jobs):
    """CLI executor selection: ``--jobs N`` (N != 1) implies the process
    executor unless ``--executor`` picked one explicitly."""
    if executor is None:
        executor = "process" if jobs not in (None, 0, 1) else "worklist"
    return executor, jobs or 0


def _build_limits(args):
    """Resource budgets from the ``--max-*`` governance flags."""
    from repro.resilience.limits import ResourceLimits

    if not getattr(args, "governance", True):
        return ResourceLimits.disabled()
    overrides = {}
    for name in (
        "max_source_chars",
        "max_tokens",
        "max_literal_chars",
        "max_parse_depth",
        "max_pfg_nodes",
        "max_graph_factors",
        "max_worklist_visits",
    ):
        value = getattr(args, name, None)
        if value is not None:
            overrides[name] = value
    return ResourceLimits(**overrides)


def _build_policy(args):
    from repro.resilience.policy import ResiliencePolicy

    limits = _build_limits(args)
    if not getattr(args, "resilience", True):
        # Governance is orthogonal to the degradation ladder: budgets
        # keep protecting the process unless --no-governance too.
        return ResiliencePolicy(enabled=False, limits=limits)
    return ResiliencePolicy(
        solve_deadline=getattr(args, "solve_deadline", 0.0),
        solve_retries=getattr(args, "solve_retries", 2),
        worker_retries=getattr(args, "worker_retries", 2),
        worker_timeout=getattr(args, "worker_timeout", 0.0),
        limits=limits,
    )


def _write_fail_report(failures, args, out):
    """Print the failure ledger and honour ``--fail-report``."""
    if failures:
        print("", file=out)
        print(failures.summary_line(), file=out)
        for record in failures:
            print("  " + record.format(), file=out)
    destination = getattr(args, "fail_report", None)
    if destination:
        payload = failures.to_json()
        if destination == "-":
            print(payload, file=out)
        else:
            with open(destination, "w") as handle:
                handle.write(payload + "\n")


def _emit_fail_report(result, args, out):
    """The resilience epilogue: summary line, optional JSON report, and
    the run's exit code."""
    failures = result.failures
    _write_fail_report(failures, args, out)
    return EXIT_DEGRADED if failures.has_degradation else EXIT_OK


def cmd_infer(args, out):
    from repro.resilience.checkpoint import (
        ResumeError,
        RunInterrupted,
        graceful_shutdown,
    )

    executor, jobs = resolve_executor_args(args.executor, args.jobs)
    run_dir = args.resume or args.run_dir
    settings = InferenceSettings(
        threshold=args.threshold,
        max_worklist_iters=args.max_iters,
        executor=executor,
        jobs=jobs,
        shards=args.shards,
        engine=args.engine,
        policy=_build_policy(args),
        run_dir=run_dir,
        resume=args.resume is not None,
        checkpoint_every=args.checkpoint_every,
        max_rss_mb=args.max_rss_mb,
    )
    cache = None
    if args.use_cache:
        from repro.cache import AnalysisCache

        cache = AnalysisCache(cache_dir=args.cache_dir)
    pipeline = AnekPipeline(
        settings=settings, cache=cache, check_tier=args.check_tier
    )
    # SIGTERM/SIGINT drain-and-checkpoint only makes sense with a run
    # directory to checkpoint into; without one, default handling stays.
    shutdown = graceful_shutdown() if run_dir else nullcontext()
    try:
        with shutdown:
            result = pipeline.run_on_sources(
                _read_sources(args.files, args.api)
            )
    except RunInterrupted as exc:
        print(
            "interrupted: resumable checkpoint written to %s" % exc.run_dir,
            file=out,
        )
        print(
            "resume with: python -m repro infer --resume %s ..." % exc.run_dir,
            file=out,
        )
        if exc.failures is not None:
            _write_fail_report(exc.failures, args, out)
        return EXIT_INTERRUPTED
    except ResumeError as exc:
        print("repro: error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    print(result.describe_stages(), file=out)
    if args.cache_stats and cache is not None:
        print("", file=out)
        print(cache.stats.describe(), file=out)
    if args.cache_stats and result.inference_stats is not None:
        stats = result.inference_stats
        print("", file=out)
        print(
            "memory: %d shed(s), %d pfg shed(s), %d pfg rehydration(s), "
            "peak rss %.0f MiB"
            % (
                stats.sheds,
                stats.pfg_sheds,
                stats.pfg_rehydrations,
                stats.rss_peak_mb,
            ),
            file=out,
        )
        if stats.check_tier:
            print(
                "check: tier=%s %.3f s (tier1 %d method(s)/%d site(s) "
                "%.3f s, tier2 %d method(s)/%d site(s) %.3f s)"
                % (
                    stats.check_tier,
                    stats.check_seconds,
                    stats.check_tier1_methods,
                    stats.check_tier1_sites,
                    stats.check_tier1_seconds,
                    stats.check_tier2_methods,
                    stats.check_tier2_sites,
                    stats.check_tier2_seconds,
                ),
                file=out,
            )
    print("", file=out)
    print("Inferred specifications:", file=out)
    for ref, spec in sorted(
        result.specs.items(), key=lambda kv: kv[0].qualified_name
    ):
        if spec.is_empty:
            continue
        print("  %-32s %s" % (ref.qualified_name, spec), file=out)
    print("", file=out)
    print("PLURAL warnings: %d" % len(result.warnings), file=out)
    for warning in result.warnings:
        print("  " + warning.format(), file=out)
    if args.emit_source:
        for source in result.annotated_sources:
            print("", file=out)
            print(source, file=out)
    return _emit_fail_report(result, args, out)


def cmd_serve(args, out):
    from repro.serve import AnekServer, ServeAddressInUse

    if args.socket is not None and args.port is not None:
        print(
            "repro serve: error: --socket and --port are mutually exclusive",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.supervise:
        return _cmd_serve_supervised(args, out)
    port = args.port
    if args.socket is None and port is None:
        port = 0  # loopback TCP on an ephemeral port, printed at boot
    server = AnekServer(
        socket_path=args.socket,
        port=port,
        cache_dir=args.cache_dir,
        use_cache=args.use_cache,
        workers=args.workers,
        queue_limit=args.queue_limit,
        batch_window=args.batch_window,
        batch_max=args.batch_max,
        policy=_build_policy(args),
        max_rss_mb=args.max_rss_mb,
        heartbeat_path=args.heartbeat,
        max_frame_bytes=args.max_frame_mb * 1024 * 1024,
        max_source_bytes=args.max_source_mb * 1024 * 1024,
    )
    try:
        return server.run_forever(out=out)
    except ServeAddressInUse as exc:
        print("repro serve: error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE


def _cmd_serve_supervised(args, out):
    """``repro serve --supervise``: run the restart loop around a child
    daemon that is this exact command line minus the supervision flags."""
    from repro.serve import ServeSupervisor, build_child_argv

    if args.socket is None and not args.port:
        # A supervised daemon must come back at the *same* address or
        # restarts would strand every reconnecting client.
        print(
            "repro serve: error: --supervise requires a fixed address "
            "(--socket PATH or --port N, N > 0)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    import tempfile

    heartbeat = args.heartbeat
    if heartbeat is None:
        heartbeat = (
            args.socket + ".heartbeat"
            if args.socket is not None
            else "%s/anek-serve-%d.heartbeat"
            % (tempfile.gettempdir(), args.port)
        )
    supervisor = ServeSupervisor(
        build_child_argv(),
        heartbeat_path=heartbeat,
        max_restarts=args.max_restarts,
        restart_window=args.restart_window,
        backoff=args.restart_backoff,
        backoff_max=args.restart_backoff_max,
        ledger_path=args.supervisor_ledger,
        out=out,
    )
    return supervisor.run()


def _print_served_infer(response, out):
    """The served twin of ``cmd_infer``'s result block: identical
    spec/warning formatting, so eyeballs and diffs agree across modes."""
    serve = response.get("serve", {})
    stats = response.get("stats", {})
    print(
        "served: request %s, batch %s (%s coalesced), %.3f s%s"
        % (
            serve.get("request_id", "?"),
            serve.get("batch_size", "?"),
            serve.get("coalesced_with", 0),
            stats.get("elapsed_seconds", 0.0),
            ", warm start" if stats.get("warm_start") else "",
        ),
        file=out,
    )
    result = response["result"]
    print("", file=out)
    print("Inferred specifications:", file=out)
    for entry in result["specs"]:
        print("  %-32s %s" % (entry["name"], entry["spec"]), file=out)
    print("", file=out)
    print("PLURAL warnings: %d" % len(result["warnings"]), file=out)
    for warning in result["warnings"]:
        print("  " + warning, file=out)


def cmd_client(args, out):
    import json

    from repro.serve import ServeClient, ServeError

    request = {"op": args.op}
    if args.op in ("infer", "check"):
        if not args.files:
            print(
                "repro client: error: op %r requires files" % args.op,
                file=sys.stderr,
            )
            return EXIT_USAGE
        # Raw file contents only: the daemon prepends the annotated
        # Iterator API itself when the request's ``api`` flag is set.
        request["sources"] = _read_sources(args.files, False)
        request["api"] = args.api
        request["no_cache"] = not args.use_cache
        request["check_tier"] = args.check_tier
        if args.deadline:
            request["deadline"] = args.deadline
        if args.op == "infer":
            executor, jobs = resolve_executor_args(args.executor, args.jobs)
            request.update(
                threshold=args.threshold,
                max_iters=args.max_iters,
                engine=args.engine,
                executor=executor,
                jobs=jobs,
                include_marginals=args.marginals,
            )
    try:
        with ServeClient(
            args.connect,
            timeout=args.timeout or None,
            retries=args.retries,
            call_deadline=args.call_deadline,
        ) as client:
            response = client.call(request)
    except ServeError as exc:
        print("repro: error: %s" % exc, file=sys.stderr)
        return EXIT_FATAL
    status = response.get("status")
    if args.json:
        print(json.dumps(response, sort_keys=True, indent=2), file=out)
    elif status in ("ok", "degraded") and args.op == "infer":
        _print_served_infer(response, out)
    elif status == "ok" and args.op == "check":
        result = response["result"]
        for warning in result["warnings"]:
            print(warning, file=out)
        print("%d warning(s)" % result["count"], file=out)
    elif status == "ok":
        print(json.dumps(response, sort_keys=True, indent=2), file=out)
    else:
        print(
            "repro: %s: %s" % (status, response.get("error", "")),
            file=sys.stderr,
        )
    if args.op == "check" and status == "ok":
        return EXIT_OK if response["result"]["count"] == 0 else 1
    if status == "ok":
        return EXIT_OK
    if status == "degraded":
        return EXIT_DEGRADED
    if status == "invalid":
        return EXIT_USAGE
    return EXIT_FATAL


def _apply_cached_specs(program, run_dir, threshold):
    """Reuse a completed ``infer --run-dir`` run's final marginals:
    re-extract specs at ``threshold`` and apply them to ``program``
    without re-running inference.  Returns an error string, or None."""
    import json
    import os

    from repro.cache.fingerprints import program_digest
    from repro.core.applier import apply_specs
    from repro.core.extract import extract_program_specs
    from repro.core.priors import SpecEnvironment
    from repro.core.summaries import TargetMarginal
    from repro.resilience.checkpoint import META_NAME, latest_valid_snapshot

    meta_path = os.path.join(run_dir, META_NAME)
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError:
        return "%s is not a run directory (no %s)" % (run_dir, META_NAME)
    except (OSError, ValueError) as exc:
        return "unreadable run metadata %s (%s: %s)" % (
            meta_path,
            type(exc).__name__,
            exc,
        )
    if meta.get("program") != program_digest(program):
        return (
            "run directory %s was recorded for a different program; pass "
            "the same sources (and --api setting) the infer run used"
            % run_dir
        )
    name, state = latest_valid_snapshot(run_dir)
    if state is None:
        return "run directory %s has no valid snapshot" % run_dir
    if not state.get("complete"):
        return (
            "run directory %s holds an interrupted run (snapshot %s); "
            "finish it first with: repro infer --resume %s"
            % (run_dir, name, run_dir)
        )
    table = program.method_key_table()
    results = {}
    for key, boundary in state["results"]:
        ref = table.get(key)
        if ref is None:
            continue
        results[ref] = {
            tuple(slot_target): TargetMarginal.from_payload(payload)
            for slot_target, payload in boundary
        }
    # Methods inference never produced marginals for (quarantined, or
    # outside the inference set) get an empty boundary: empty spec.
    for ref in program.methods_with_bodies():
        results.setdefault(ref, {})
    specs = extract_program_specs(
        program, results, SpecEnvironment(program), threshold=threshold
    )
    apply_specs(program, specs)
    return None


def cmd_check(args, out):
    from repro.plural.checker import run_check

    limits = _build_limits(args)
    program = resolve_program(
        [
            parse_compilation_unit(source, limits=limits)
            for source in _read_sources(args.files, args.api)
        ]
    )
    if args.run_dir is not None:
        error = _apply_cached_specs(program, args.run_dir, args.threshold)
        if error is not None:
            print("repro check: error: %s" % error, file=sys.stderr)
            return EXIT_USAGE
    try:
        run = run_check(program, tier=args.check_tier)
    except RuntimeError as exc:
        print("repro check: error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    for warning in run.warnings:
        print(warning.format(), file=out)
    print("%d warning(s)" % len(run.warnings), file=out)
    if args.check_stats:
        print(run.describe(), file=out)
    return 0 if not run.warnings else 1


def cmd_pfg(args, out):
    from repro.core.pfg_builder import build_pfg

    program = resolve_program(
        [
            parse_compilation_unit(source)
            for source in _read_sources(args.files, args.api)
        ]
    )
    class_name, _, method_name = args.method.partition(".")
    decl = program.lookup_class(class_name)
    if decl is None:
        print("error: unknown class %r" % class_name, file=sys.stderr)
        return EXIT_USAGE
    methods = decl.find_method(method_name)
    if not methods:
        print(
            "error: no method %r in %s" % (method_name, class_name),
            file=sys.stderr,
        )
        return EXIT_USAGE
    pfg = build_pfg(program, MethodRef(decl, methods[0]))
    if args.dot:
        print(pfg.to_dot(), file=out)
    else:
        print(pfg.describe(), file=out)
    return 0


def cmd_explain(args, out):
    from repro.core.diagnostics import explain_method

    program = resolve_program(
        [
            parse_compilation_unit(source)
            for source in _read_sources(args.files, args.api)
        ]
    )
    class_name, _, method_name = args.method.partition(".")
    decl = program.lookup_class(class_name)
    if decl is None:
        print("error: unknown class %r" % class_name, file=sys.stderr)
        return EXIT_USAGE
    methods = decl.find_method(method_name)
    if not methods:
        print(
            "error: no method %r in %s" % (method_name, class_name),
            file=sys.stderr,
        )
        return EXIT_USAGE
    diagnostics = explain_method(
        program, MethodRef(decl, methods[0]), threshold=args.threshold
    )
    print(diagnostics.render(), file=out)
    return 0


def cmd_corpus(args, out):
    import hashlib
    import json
    import os
    from dataclasses import asdict, replace

    from repro.corpus import CorpusSpec, generate_pmd_corpus

    base = CorpusSpec()
    if args.methods:
        spec = base.scaled(args.methods / float(base.methods))
        spec = replace(spec, methods=args.methods)
    else:
        spec = base.scaled(args.scale)
    spec = replace(spec, seed=args.seed)
    if args.families:
        spec = replace(spec, protocol_families=args.families)
    bundle = generate_pmd_corpus(spec)
    os.makedirs(args.out, exist_ok=True)
    files = []
    api_sources = [bundle.api_source] + list(bundle.extra_api_sources)
    for index, source in enumerate(api_sources):
        files.append(("Api%d.java" % index, source))
    for index, source in enumerate(bundle.sources):
        files.append(("Source%05d.java" % index, source))
    digest = hashlib.sha256()
    for name, source in files:
        digest.update(source.encode("utf-8"))
        with open(os.path.join(args.out, name), "w") as handle:
            handle.write(source)
    manifest = {
        "spec": asdict(spec),
        "files": [name for name, _ in files],
        "api_files": len(api_sources),
        "classes": len(bundle.sources),
        "methods": spec.methods,
        "lines": bundle.line_count(),
        "sha256": digest.hexdigest(),
    }
    with open(os.path.join(args.out, "MANIFEST.json"), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        "corpus: %d classes, %d methods, %d lines, %d protocol family(ies)"
        % (
            len(bundle.sources),
            spec.methods,
            bundle.line_count(),
            spec.protocol_families,
        ),
        file=out,
    )
    print("wrote %d files to %s" % (len(files) + 1, args.out), file=out)
    print("sha256: %s" % manifest["sha256"], file=out)
    return 0


def cmd_table(args, out):
    from repro.corpus import CorpusSpec
    from repro.reporting.experiments import (
        PmdExperiment,
        table3_experiment,
        table5_parallel,
    )

    if args.number == 3:
        result = table3_experiment(methods=args.methods)
        print(result.table.render(), file=out)
        return 0
    if args.number == 5:
        spec = CorpusSpec() if args.full else CorpusSpec().scaled(args.scale)
        result = table5_parallel(corpus_spec=spec, jobs=args.jobs)
        print(result.table.render(), file=out)
        return 0
    spec = CorpusSpec() if args.full else CorpusSpec().scaled(args.scale)
    experiment = PmdExperiment(corpus_spec=spec)
    if args.number == 1:
        _, table = experiment.table1()
    elif args.number == 2:
        _, table = experiment.table2()
    else:
        _, table = experiment.table4()
    print(table.render(), file=out)
    return 0


def cmd_figure(args, out):
    from repro.reporting.experiments import (
        figure1_protocol,
        figure4_kinds,
        figure6_pfg,
        figure10_pipeline_trace,
    )

    if args.number == 1:
        print(figure1_protocol(), file=out)
    elif args.number == 4:
        print(figure4_kinds().render(), file=out)
    elif args.number == 6:
        pfg = figure6_pfg()
        print(pfg.describe(), file=out)
        print("", file=out)
        print(pfg.to_dot(), file=out)
    else:
        print(figure10_pipeline_trace(), file=out)
    return 0


def cmd_fuzz(args, out):
    from repro.fuzz import replay_regressions, run_campaign

    if args.replay:
        replays = replay_regressions(
            directory=args.regressions_dir, deadline=args.case_deadline or 60.0
        )
        bad = 0
        for path, report in replays:
            status = "ok" if report.ok else "VIOLATES"
            print("replay %s: %s" % (path, status), file=out)
            for violation in report.violations:
                print("    " + violation, file=out)
                bad += 1
        print(
            "fuzz: replayed %d regression(s), %d violation(s)"
            % (len(replays), bad),
            file=out,
        )
        return EXIT_FINDINGS if bad else EXIT_OK

    result = run_campaign(
        args.seed,
        args.budget,
        regressions_dir=args.regressions_dir,
        deadline=args.case_deadline,
        minimize=args.minimize,
        log=lambda line: print(line, file=out),
    )
    print(result.summary_line(), file=out)
    for entry in result.violations:
        print(
            "violation %s [%s]: %s (minimized %d -> %d chars)"
            % (
                entry["label"],
                entry["family"],
                "; ".join(entry["violations"]),
                entry["original_chars"],
                entry["minimized_chars"],
            ),
            file=out,
        )
    for path in result.regressions_written:
        print("wrote %s" % path, file=out)
    return EXIT_OK if result.ok else EXIT_FINDINGS


def _job_count(text):
    """Explicit ``--jobs`` values must be >= 1; the unset default stays
    the sentinel 0 (= CPU count), which argparse never routes through
    this type function."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got %r" % text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            "--jobs must be >= 1 (omit the flag for the CPU count)"
        )
    return value


def _threshold(text):
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected a float, got %r" % text)
    if not 0.5 <= value < 1.0:
        raise argparse.ArgumentTypeError(
            "--threshold must be in [0.5, 1), got %s" % text
        )
    return value


def _max_iters(text):
    """Explicit ``--max-iters`` must be >= 1; the unset default stays the
    sentinel 0 (= 3 passes over all methods)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("expected an integer, got %r" % text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            "--max-iters must be >= 1 (omit the flag for the default "
            "3-pass budget)"
        )
    return value


def _nonnegative_seconds(flag):
    def parse(text):
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                "expected a number of seconds, got %r" % text
            )
        if value < 0:
            raise argparse.ArgumentTypeError(
                "%s must be >= 0 (0 disables it)" % flag
            )
        return value

    return parse


def _nonnegative_count(flag):
    def parse(text):
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                "expected an integer, got %r" % text
            )
        if value < 0:
            raise argparse.ArgumentTypeError("%s must be >= 0" % flag)
        return value

    return parse


def _positive_count(flag):
    def parse(text):
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                "expected an integer, got %r" % text
            )
        if value < 1:
            raise argparse.ArgumentTypeError("%s must be >= 1" % flag)
        return value

    return parse


def _add_governance_flags(command):
    """The resource-governance knobs, shared by ``infer`` and ``check``.

    Defaults come from :class:`repro.resilience.limits.ResourceLimits`;
    every flag accepts 0 for "unlimited".  A breached budget quarantines
    the offending unit/method with the ``resource-limit`` disposition.
    """
    command.add_argument("--no-governance", dest="governance",
                         action="store_false",
                         help="disable all resource budgets (recursion, "
                              "token, graph-size and worklist ceilings)")
    for flag, name, what in (
        ("--max-source-chars", "max_source_chars",
         "source characters per compilation unit"),
        ("--max-tokens", "max_tokens", "tokens per compilation unit"),
        ("--max-literal-chars", "max_literal_chars",
         "characters in one string literal"),
        ("--max-parse-depth", "max_parse_depth",
         "statement/expression nesting depth"),
        ("--max-pfg-nodes", "max_pfg_nodes",
         "permission-flow-graph nodes per method"),
        ("--max-graph-factors", "max_graph_factors",
         "factor-graph nodes (factors + variables) per method"),
        ("--max-worklist-visits", "max_worklist_visits",
         "total worklist method visits"),
    ):
        command.add_argument(flag, metavar="N", dest=name,
                             type=_nonnegative_count(flag), default=None,
                             help="cap on %s (0 = unlimited)" % what)


class _Parser(argparse.ArgumentParser):
    """argparse with the repo's exit-code convention: usage errors exit
    with :data:`EXIT_USAGE` instead of argparse's default 2 (which here
    means completed-with-quarantines)."""

    def error(self, message):
        self.print_usage(sys.stderr)
        self.exit(EXIT_USAGE, "%s: error: %s\n" % (self.prog, message))


def build_parser():
    parser = _Parser(
        prog="repro",
        description="ANEK: probabilistic inference of typestate specifications",
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="print full tracebacks instead of one-line error summaries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    infer = sub.add_parser("infer", help="infer @Perm specs for Java sources")
    infer.add_argument("files", nargs="+")
    infer.add_argument("--no-api", dest="api", action="store_false",
                       help="do not prepend the annotated Iterator API")
    infer.add_argument("--threshold", type=_threshold, default=0.5,
                       help="extraction threshold t in [0.5, 1)")
    infer.add_argument("--max-iters", type=_max_iters, default=0,
                       help="worklist iteration cap (default: 3 passes)")
    infer.add_argument("--jobs", type=_job_count, default=0,
                       help="parallel workers (implies --executor process; "
                            "0 = CPU count when an executor is selected)")
    infer.add_argument("--executor", default=None,
                       choices=("worklist", "serial", "thread", "process"),
                       help="inference engine: the sequential worklist "
                            "(default) or the level-synchronous scheduler")
    infer.add_argument("--shards", metavar="K",
                       type=_nonnegative_count("--shards"), default=0,
                       help="partition each scheduler level into K shards "
                            "solved by independent worker groups "
                            "(0 = auto from --jobs; results are "
                            "bit-identical for every K)")
    infer.add_argument("--engine", default="compiled",
                       choices=("loopy", "compiled"),
                       help="BP engine: the compiled flat-array kernel "
                            "(default) or the per-message loopy reference")
    infer.add_argument("--check-tier", default="auto",
                       choices=("full", "bitvector", "auto"),
                       help="checker dispatch for the final PLURAL pass: "
                            "bit-vector fast path with residue routing "
                            "(auto, default) or the full checker (full); "
                            "warnings are bit-identical across tiers")
    infer.add_argument("--emit-source", action="store_true",
                       help="print the annotated sources")
    infer.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help="persistent analysis cache directory "
                            "(default: %(default)s)")
    infer.add_argument("--no-cache", dest="use_cache", action="store_false",
                       help="disable the persistent analysis cache")
    infer.add_argument("--cache-stats", action="store_true",
                       help="print cache hit/miss/invalidation counters")
    infer.add_argument("--fail-report", metavar="PATH", default=None,
                       help="write the structured failure report as JSON "
                            "('-' = stdout)")
    infer.add_argument("--no-resilience", dest="resilience",
                       action="store_false",
                       help="disable fault tolerance: any failure aborts "
                            "the whole run (legacy behaviour)")
    infer.add_argument("--solve-deadline", metavar="SECONDS",
                       type=_nonnegative_seconds("--solve-deadline"),
                       default=0.0,
                       help="per-method solve deadline (0 = none)")
    infer.add_argument("--solve-retries", metavar="N",
                       type=_nonnegative_count("--solve-retries"), default=2,
                       help="solve retries before the engine fallback "
                            "(default: %(default)s)")
    infer.add_argument("--worker-timeout", metavar="SECONDS",
                       type=_nonnegative_seconds("--worker-timeout"),
                       default=0.0,
                       help="per-chunk worker deadline for the process "
                            "executor (0 = none)")
    infer.add_argument("--worker-retries", metavar="N",
                       type=_nonnegative_count("--worker-retries"), default=2,
                       help="pool rebuilds before degrading to in-parent "
                            "execution (default: %(default)s)")
    infer.add_argument("--run-dir", metavar="DIR", default=None,
                       help="durable run directory (journal + checkpoints); "
                            "SIGTERM/SIGINT then stop at a checkpoint with "
                            "exit code 5 and the run resumes via --resume")
    infer.add_argument("--resume", metavar="DIR", default=None,
                       help="resume an interrupted run from its run "
                            "directory (same sources and flags required; "
                            "implies --run-dir DIR)")
    infer.add_argument("--checkpoint-every", metavar="N",
                       type=_positive_count("--checkpoint-every"), default=1,
                       help="checkpoint barriers between compacted snapshots "
                            "(default: %(default)s = every barrier)")
    infer.add_argument("--max-rss-mb", metavar="MB",
                       type=_nonnegative_count("--max-rss-mb"), default=0,
                       help="soft RSS budget: checkpoint, then shed cached "
                            "models when exceeded (0 = no budget)")
    _add_governance_flags(infer)
    infer.set_defaults(run=cmd_infer)

    serve = sub.add_parser(
        "serve",
        help="run the persistent analysis daemon (analysis as a service)",
    )
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="listen on a Unix socket at PATH")
    serve.add_argument("--port", metavar="N", default=None,
                       type=_nonnegative_count("--port"),
                       help="listen on loopback TCP port N (0 = ephemeral; "
                            "the default when --socket is not given)")
    serve.add_argument("--workers", metavar="N",
                       type=_positive_count("--workers"), default=4,
                       help="concurrent request workers (default: "
                            "%(default)s)")
    serve.add_argument("--queue-limit", metavar="N",
                       type=_positive_count("--queue-limit"), default=64,
                       help="bounded request queue depth; requests beyond "
                            "it are rejected (default: %(default)s)")
    serve.add_argument("--batch-window", metavar="SECONDS",
                       type=_nonnegative_seconds("--batch-window"),
                       default=0.01,
                       help="how long a dispatch wave waits to collect "
                            "coalescable requests (default: %(default)s)")
    serve.add_argument("--batch-max", metavar="N",
                       type=_positive_count("--batch-max"), default=16,
                       help="max requests per dispatch wave "
                            "(default: %(default)s)")
    serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help="shared persistent analysis cache directory "
                            "(default: %(default)s)")
    serve.add_argument("--no-cache", dest="use_cache", action="store_false",
                       help="serve without the persistent analysis cache")
    serve.add_argument("--max-rss-mb", metavar="MB",
                       type=_nonnegative_count("--max-rss-mb"), default=0,
                       help="soft RSS budget: shed new requests with a "
                            "retryable 'overloaded' status while exceeded "
                            "(0 = no budget)")
    serve.add_argument("--max-frame-mb", metavar="MB",
                       type=_nonnegative_count("--max-frame-mb"), default=0,
                       help="per-connection frame cap: a request frame "
                            "announcing more is answered 'invalid' from "
                            "its header alone, its body drained unbuffered "
                            "(0 = the 64 MiB protocol ceiling)")
    serve.add_argument("--max-source-mb", metavar="MB",
                       type=_nonnegative_count("--max-source-mb"), default=32,
                       help="total source bytes one request may carry "
                            "(0 = unlimited; default: %(default)s)")
    serve.add_argument("--heartbeat", metavar="PATH", default=None,
                       help="touch PATH every second as a liveness signal "
                            "(set automatically under --supervise)")
    serve.add_argument("--supervise", action="store_true",
                       help="run under the self-healing supervisor: fork "
                            "the daemon, restart it when it crashes or its "
                            "heartbeat goes stale, give up (exit 6) on a "
                            "crash loop; requires a fixed address")
    serve.add_argument("--max-restarts", metavar="N",
                       type=_positive_count("--max-restarts"), default=5,
                       help="crash-loop bar: restarts tolerated inside "
                            "--restart-window before the supervisor gives "
                            "up (default: %(default)s)")
    serve.add_argument("--restart-window", metavar="SECONDS",
                       type=_nonnegative_seconds("--restart-window"),
                       default=30.0,
                       help="crash-loop window (default: %(default)s)")
    serve.add_argument("--restart-backoff", metavar="SECONDS",
                       type=_nonnegative_seconds("--restart-backoff"),
                       default=0.2,
                       help="initial restart backoff, doubled per restart "
                            "(default: %(default)s)")
    serve.add_argument("--restart-backoff-max", metavar="SECONDS",
                       type=_nonnegative_seconds("--restart-backoff-max"),
                       default=5.0,
                       help="restart backoff cap (default: %(default)s)")
    serve.add_argument("--supervisor-ledger", metavar="PATH", default=None,
                       help="mirror the supervisor's lifecycle event "
                            "ledger to PATH as JSON after every event")
    serve.set_defaults(run=cmd_serve)

    client = sub.add_parser(
        "client", help="send one request to a running repro serve daemon"
    )
    client.add_argument("op",
                        choices=("infer", "check", "ping", "health",
                                 "stats", "shutdown"))
    client.add_argument("files", nargs="*")
    client.add_argument("--connect", metavar="ADDRESS", required=True,
                        help="daemon address: a Unix socket path or "
                             "tcp:HOST:PORT (as printed by repro serve)")
    client.add_argument("--no-api", dest="api", action="store_false",
                        help="do not prepend the annotated Iterator API")
    client.add_argument("--threshold", type=_threshold, default=0.5)
    client.add_argument("--max-iters", type=_max_iters, default=0)
    client.add_argument("--engine", default="compiled",
                        choices=("loopy", "compiled"))
    client.add_argument("--executor", default=None,
                        choices=("worklist", "serial", "thread", "process"))
    client.add_argument("--jobs", type=_job_count, default=0)
    client.add_argument("--no-cache", dest="use_cache", action="store_false",
                        help="ask the daemon to bypass the persistent cache")
    client.add_argument("--deadline", metavar="SECONDS",
                        type=_nonnegative_seconds("--deadline"), default=0.0,
                        help="per-request deadline (0 = none)")
    client.add_argument("--timeout", metavar="SECONDS",
                        type=_nonnegative_seconds("--timeout"), default=0.0,
                        help="client socket timeout (0 = wait forever)")
    client.add_argument("--retries", metavar="N",
                        type=_nonnegative_count("--retries"), default=0,
                        help="reconnect-and-retry attempts after a "
                            "connection drop or retryable refusal, with "
                            "an idempotency key so completed work is "
                            "replayed, never re-executed (default: "
                            "%(default)s = single attempt)")
    client.add_argument("--call-deadline", metavar="SECONDS",
                        type=_nonnegative_seconds("--call-deadline"),
                        default=0.0,
                        help="overall budget for one call across all "
                            "retries (0 = none)")
    client.add_argument("--check-tier", default="auto",
                        choices=("full", "bitvector", "auto"),
                        help="checker dispatch for the served check/infer")
    client.add_argument("--marginals", action="store_true",
                        help="include raw boundary marginals in the result")
    client.add_argument("--json", action="store_true",
                        help="print the raw JSON response")
    client.set_defaults(run=cmd_client)

    check = sub.add_parser("check", help="run the PLURAL checker")
    check.add_argument("files", nargs="+")
    check.add_argument("--no-api", dest="api", action="store_false")
    check.add_argument("--check-tier", default="auto",
                       choices=("full", "bitvector", "auto"),
                       help="checker dispatch: the bit-vector fast path "
                            "with full-checker residue routing (auto, "
                            "default), tier 1 required (bitvector), or "
                            "the full checker only (full); warnings are "
                            "bit-identical across tiers")
    check.add_argument("--run-dir", metavar="DIR", default=None,
                       help="reuse a completed 'infer --run-dir DIR' run: "
                            "re-extract its inferred specs from the final "
                            "snapshot and check them without re-running "
                            "inference (sources must match that run)")
    check.add_argument("--threshold", type=_threshold, default=0.5,
                       help="extraction threshold for --run-dir spec "
                            "re-extraction; must match the infer run "
                            "(default: %(default)s)")
    check.add_argument("--check-stats", action="store_true",
                       help="print the per-tier method/site/timing split")
    _add_governance_flags(check)
    check.set_defaults(run=cmd_check)

    pfg = sub.add_parser("pfg", help="print a method's permission flow graph")
    pfg.add_argument("files", nargs="+")
    pfg.add_argument("method", help="Class.method")
    pfg.add_argument("--no-api", dest="api", action="store_false")
    pfg.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    pfg.set_defaults(run=cmd_pfg)

    explain = sub.add_parser(
        "explain", help="explain why a method's spec was inferred"
    )
    explain.add_argument("files", nargs="+")
    explain.add_argument("method", help="Class.method")
    explain.add_argument("--no-api", dest="api", action="store_false")
    explain.add_argument("--threshold", type=_threshold, default=0.5)
    explain.set_defaults(run=cmd_explain)

    corpus = sub.add_parser(
        "corpus",
        help="generate a deterministic synthetic corpus on disk",
    )
    corpus.add_argument("--methods", metavar="N",
                        type=_positive_count("--methods"), default=0,
                        help="target method count (scales the Table 1 "
                             "corpus proportionally; overrides --scale)")
    corpus.add_argument("--scale", type=float, default=1.0,
                        help="scale factor relative to the Table 1 corpus "
                             "(default: %(default)s)")
    corpus.add_argument("--seed", metavar="S",
                        type=_nonnegative_count("--seed"), default=0,
                        help="generator seed for the structural variation "
                             "(default: %(default)s)")
    corpus.add_argument("--families", metavar="K",
                        type=_nonnegative_count("--families"), default=0,
                        help="protocol families to interleave (0 = what "
                             "the scale implies; 2 adds the stream API)")
    corpus.add_argument("--out", metavar="DIR", required=True,
                        help="output directory (created if missing)")
    corpus.set_defaults(run=cmd_corpus)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5),
                       help="1-4 = paper tables; 5 = executor speedups")
    table.add_argument("--full", action="store_true",
                       help="paper-scale corpus (tables 1/2/4)")
    table.add_argument("--scale", type=float, default=0.1)
    table.add_argument("--methods", type=int, default=24,
                       help="branchy-program size (table 3)")
    table.add_argument("--jobs", type=_job_count, default=0,
                       help="parallel workers for table 5 (0 = CPU count)")
    table.set_defaults(run=cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(1, 4, 6, 10))
    figure.set_defaults(run=cmd_figure)

    fuzz = sub.add_parser(
        "fuzz",
        help="run the deterministic structured fuzzing campaign",
        description="Run `budget` seeded cases through the pipeline under "
                    "the invariant sentinels; violations are delta-debugged "
                    "to minimal reproducers and written into the regression "
                    "corpus.  Exit 0 = no violations, 1 = violations found.",
    )
    fuzz.add_argument("--seed", type=_nonnegative_count("--seed"), default=0,
                      help="campaign seed: picks the deterministic case "
                           "stream (default 0)")
    fuzz.add_argument("--budget", metavar="N",
                      type=_positive_count("--budget"), default=100,
                      help="number of cases to run (default 100)")
    fuzz.add_argument("--regressions-dir", metavar="DIR",
                      default=os.path.join("tests", "fuzz_regressions"),
                      help="where minimized reproducers are written "
                           "(default tests/fuzz_regressions)")
    fuzz.add_argument("--case-deadline", metavar="SECONDS",
                      type=_nonnegative_seconds("--case-deadline"),
                      default=30.0,
                      help="per-case wall budget for the deadline sentinel "
                           "(0 disables it; default 30)")
    fuzz.add_argument("--no-minimize", dest="minimize", action="store_false",
                      help="skip delta-debugging of violating cases")
    fuzz.add_argument("--replay", action="store_true",
                      help="re-run the stored regression corpus instead of "
                           "generating new cases")
    fuzz.set_defaults(run=cmd_fuzz)

    return parser


def main(argv=None, out=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args, out or sys.stdout)
    except Exception as exc:
        if args.debug:
            raise
        print(
            "repro: fatal: %s: %s (re-run with --debug for the traceback)"
            % (type(exc).__name__, exc),
            file=sys.stderr,
        )
        return EXIT_FATAL


if __name__ == "__main__":
    sys.exit(main())
