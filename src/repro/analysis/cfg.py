"""Control-flow graph construction over the lowered IR.

Each :class:`CFGNode` carries at most one IR instruction; synthetic nodes
mark method entry/exit, joins, and branches.  Branch nodes record the
condition variable so downstream analyses (PLURAL's state-test refinement,
ANEK's PFG builder) can trace it back to e.g. a ``hasNext()`` call.
"""

from repro.analysis import ir


class CFGNode:
    """One node of a control-flow graph.

    ``kind`` is one of ``"entry"``, ``"exit"``, ``"instr"``, ``"branch"``,
    ``"join"``.  For ``"instr"`` nodes, ``instr`` holds the IR instruction;
    for ``"branch"`` nodes, ``cond_var`` names the condition variable.
    Edges are stored on the node: ``succs``/``preds`` are lists of
    ``(node, label)`` where label is ``None``, ``"true"`` or ``"false"``.
    """

    __slots__ = ("node_id", "kind", "instr", "cond_var", "succs", "preds")

    def __init__(self, node_id, kind, instr=None, cond_var=None):
        self.node_id = node_id
        self.kind = kind
        self.instr = instr
        self.cond_var = cond_var
        self.succs = []
        self.preds = []

    def __repr__(self):
        if self.kind == "instr":
            return "CFGNode(%d, %s)" % (self.node_id, self.instr)
        if self.kind == "branch":
            return "CFGNode(%d, branch %s)" % (self.node_id, self.cond_var)
        return "CFGNode(%d, %s)" % (self.node_id, self.kind)


class CFG:
    """A per-method control-flow graph."""

    def __init__(self, method_ref=None):
        self.method_ref = method_ref
        self.nodes = []
        self.entry = self._new_node("entry")
        self.exit = self._new_node("exit")

    def _new_node(self, kind, instr=None, cond_var=None):
        node = CFGNode(len(self.nodes), kind, instr=instr, cond_var=cond_var)
        self.nodes.append(node)
        return node

    def add_edge(self, src, dst, label=None):
        src.succs.append((dst, label))
        dst.preds.append((src, label))

    # -- queries ---------------------------------------------------------------

    def instr_nodes(self):
        return [node for node in self.nodes if node.kind == "instr"]

    def reachable_nodes(self):
        """Nodes reachable from entry, in discovery order."""
        seen = {self.entry.node_id}
        order = [self.entry]
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for succ, _ in node.succs:
                if succ.node_id not in seen:
                    seen.add(succ.node_id)
                    order.append(succ)
                    stack.append(succ)
        return order

    def reverse_postorder(self):
        """Reverse postorder over reachable nodes (good worklist order)."""
        seen = set()
        postorder = []

        def dfs(start):
            stack = [(start, iter([succ for succ, _ in start.succs]))]
            seen.add(start.node_id)
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ.node_id not in seen:
                        seen.add(succ.node_id)
                        stack.append(
                            (succ, iter([nxt for nxt, _ in succ.succs]))
                        )
                        advanced = True
                        break
                if not advanced:
                    postorder.append(node)
                    stack.pop()

        dfs(self.entry)
        return list(reversed(postorder))

    def to_dot(self, name="cfg"):
        """Render the graph in Graphviz DOT format."""
        lines = ["digraph %s {" % name]
        for node in self.nodes:
            if node.kind == "instr":
                label = str(node.instr).replace('"', "'")
            elif node.kind == "branch":
                label = "branch %s" % node.cond_var
            else:
                label = node.kind
            lines.append('  n%d [label="%s"];' % (node.node_id, label))
        for node in self.nodes:
            for succ, label in node.succs:
                attr = ' [label="%s"]' % label if label else ""
                lines.append("  n%d -> n%d%s;" % (node.node_id, succ.node_id, attr))
        lines.append("}")
        return "\n".join(lines)


class _Builder:
    """Builds a CFG by walking the lowered block structure."""

    def __init__(self, lowered):
        self.lowered = lowered
        self.cfg = CFG(method_ref=lowered.method_ref)
        self.break_targets = []
        self.continue_targets = []

    def build(self):
        tail = self._lower_block(self.lowered.body, self.cfg.entry)
        if tail is not None:
            self.cfg.add_edge(tail, self.cfg.exit)
        return self.cfg

    def _lower_block(self, block, head):
        """Wire a lowered block after ``head``; return the new tail node
        (or None when control never falls through)."""
        current = head
        for item in block.items:
            if current is None:
                # Unreachable code after return/break; stop wiring.
                return None
            if isinstance(item, ir.Instr):
                node = self.cfg._new_node("instr", instr=item)
                self.cfg.add_edge(current, node)
                if isinstance(item, ir.ReturnInstr):
                    self.cfg.add_edge(node, self.cfg.exit)
                    current = None
                else:
                    current = node
            elif isinstance(item, ir.LoweredIf):
                current = self._lower_if(item, current)
            elif isinstance(item, ir.LoweredLoop):
                current = self._lower_loop(item, current)
            elif isinstance(item, ir.LoweredBreak):
                if self.break_targets:
                    self.cfg.add_edge(current, self.break_targets[-1])
                current = None
            elif isinstance(item, ir.LoweredContinue):
                if self.continue_targets:
                    self.cfg.add_edge(current, self.continue_targets[-1])
                current = None
            else:
                raise TypeError("unexpected lowered item %r" % type(item).__name__)
        return current

    def _lower_if(self, item, head):
        branch = self.cfg._new_node("branch", cond_var=item.cond_var)
        self.cfg.add_edge(head, branch)
        join = self.cfg._new_node("join")
        then_entry = self.cfg._new_node("join")  # landing pad for labeling
        self.cfg.add_edge(branch, then_entry, label="true")
        then_tail = self._lower_block(item.then_block, then_entry)
        if then_tail is not None:
            self.cfg.add_edge(then_tail, join)
        else_entry = self.cfg._new_node("join")
        self.cfg.add_edge(branch, else_entry, label="false")
        else_tail = self._lower_block(item.else_block, else_entry)
        if else_tail is not None:
            self.cfg.add_edge(else_tail, join)
        if not join.preds:
            return None
        return join

    def _lower_loop(self, item, head):
        header = self.cfg._new_node("join")
        after = self.cfg._new_node("join")
        update_entry = self.cfg._new_node("join")
        if item.post_test:
            body_entry = self.cfg._new_node("join")
            self.cfg.add_edge(head, body_entry)
            self.break_targets.append(after)
            self.continue_targets.append(header)
            body_tail = self._lower_block(item.body, body_entry)
            self.break_targets.pop()
            self.continue_targets.pop()
            if body_tail is not None:
                self.cfg.add_edge(body_tail, header)
            header_tail = self._lower_block(item.header, header)
            if header_tail is not None:
                branch = self.cfg._new_node("branch", cond_var=item.cond_var)
                self.cfg.add_edge(header_tail, branch)
                self.cfg.add_edge(branch, body_entry, label="true")
                self.cfg.add_edge(branch, after, label="false")
        else:
            self.cfg.add_edge(head, header)
            header_tail = self._lower_block(item.header, header)
            branch = self.cfg._new_node("branch", cond_var=item.cond_var)
            if header_tail is not None:
                self.cfg.add_edge(header_tail, branch)
            body_entry = self.cfg._new_node("join")
            self.cfg.add_edge(branch, body_entry, label="true")
            self.cfg.add_edge(branch, after, label="false")
            self.break_targets.append(after)
            self.continue_targets.append(update_entry)
            body_tail = self._lower_block(item.body, body_entry)
            self.break_targets.pop()
            self.continue_targets.pop()
            if body_tail is not None:
                self.cfg.add_edge(body_tail, update_entry)
            update_tail = self._lower_block(item.update, update_entry)
            if update_tail is not None:
                self.cfg.add_edge(update_tail, header)
        if not after.preds:
            return None
        return after


def build_cfg(program, class_decl, method_decl):
    """Lower a method and build its CFG."""
    lowered = ir.lower_method(program, class_decl, method_decl)
    return _Builder(lowered).build()


def build_cfg_from_lowered(lowered):
    """Build a CFG from an already-lowered method."""
    return _Builder(lowered).build()
