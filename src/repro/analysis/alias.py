"""Local must-alias analysis (paper §3.1).

The PFG builder tracks *permissions to objects*, but source programs
reassign object references between local variables.  This analysis
computes, at every CFG node, a partition of local variables into
must-alias classes: variables in the same class definitely refer to the
same object along every path reaching that point.

The lattice element is a mapping ``var -> witness`` where a *witness* is a
token identifying the object's defining occurrence (an allocation, a call
result, a field load, a parameter, or an unknown).  Two variables
must-alias iff they map to the same witness.  Join intersects: variables
whose witnesses disagree between branches are demoted to fresh unknown
witnesses.
"""

from repro.analysis import ir
from repro.analysis.dataflow import ForwardAnalysis


def _leaf_witnesses(witness):
    """The flattened set of base witnesses a (possibly join) witness
    covers; keeps join witnesses depth-bounded."""
    if isinstance(witness, tuple) and witness and witness[0] == "join":
        return witness[3]
    return frozenset([witness])


class MustAliasAnalysis(ForwardAnalysis):
    """Forward must-alias over one method's CFG."""

    def __init__(self, params):
        self.params = list(params)

    def initial(self):
        return None  # bottom: no information (unreached)

    def boundary(self):
        fact = {}
        for name in self.params:
            fact[name] = ("param", name)
        fact["this"] = ("param", "this")
        return fact

    def join(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        join_point = getattr(self, "_join_node", None)
        join_id = join_point.node_id if join_point is not None else -1
        joined = {}
        # Iterate in insertion order (left first, then right-only names)
        # rather than over a set union: set iteration order depends on the
        # per-process string hash seed, and the resulting dict order flows
        # into PFG front construction and from there into factor order.
        for name in list(left) + [n for n in right if n not in left]:
            left_witness = left.get(name)
            right_witness = right.get(name)
            if left_witness is None or right_witness is None:
                continue
            if left_witness == right_witness:
                joined[name] = left_witness
            else:
                # Disagreement: the variable still refers to *some* single
                # object on each path, but not provably the same one.  The
                # witness is keyed by the join point plus the *flattened*
                # set of contributing base witnesses, so repeated joins
                # around loops converge instead of nesting unboundedly.
                joined[name] = (
                    "join",
                    name,
                    join_id,
                    _leaf_witnesses(left_witness) | _leaf_witnesses(right_witness),
                )
        return joined

    def transfer(self, node, fact, edge_label=None):
        if fact is None:
            return None
        if node.kind != "instr":
            return fact
        instr = node.instr
        if isinstance(instr, ir.Assign):
            new_fact = dict(fact)
            source = instr.source
            if isinstance(source, ir.UseVar):
                witness = fact.get(source.name)
                if witness is None:
                    witness = ("def", id(instr))
                new_fact[instr.target] = witness
            elif isinstance(source, (ir.NewObj, ir.Call, ir.FieldLoad)):
                new_fact[instr.target] = ("def", id(instr))
            else:
                new_fact[instr.target] = ("scalar", id(instr))
            return new_fact
        return fact

    def equals(self, left, right):
        return left == right


class AliasResult:
    """Queryable wrapper over the dataflow result."""

    def __init__(self, dataflow_result):
        self._result = dataflow_result

    def must_alias(self, node, var_a, var_b):
        """True if ``var_a`` and ``var_b`` must alias before ``node``."""
        fact = self._result.in_facts[node.node_id]
        if fact is None:
            return False
        witness_a = fact.get(var_a)
        witness_b = fact.get(var_b)
        return witness_a is not None and witness_a == witness_b

    def witness_before(self, node, var):
        fact = self._result.in_facts[node.node_id]
        if fact is None:
            return None
        return fact.get(var)

    def witness_after(self, node, var):
        fact = self._result.out_facts[node.node_id]
        if fact is None:
            return None
        return fact.get(var)

    def alias_class(self, node, var):
        """All variables that must-alias ``var`` before ``node``."""
        fact = self._result.in_facts[node.node_id]
        if fact is None:
            return {var}
        witness = fact.get(var)
        if witness is None:
            return {var}
        return {name for name, value in fact.items() if value == witness}


def analyze_aliases(cfg, params):
    """Run must-alias analysis on a CFG; returns an :class:`AliasResult`."""
    analysis = MustAliasAnalysis(params)
    return AliasResult(analysis.run(cfg))
