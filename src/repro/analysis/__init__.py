"""Program analyses over the Java subset.

* ``ir``        — three-address intermediate representation + AST lowering
* ``cfg``       — control-flow graphs over the IR
* ``dataflow``  — generic worklist dataflow framework
* ``alias``     — local must-alias analysis (paper §3.1)
* ``liveness``  — backward live-variable analysis
* ``callgraph`` — whole-program call graph
"""

from repro.analysis.cfg import CFG, CFGNode, build_cfg
from repro.analysis.ir import (
    AssertInstr,
    Assign,
    BinOp,
    Call,
    Const,
    FieldLoad,
    FieldStore,
    Instr,
    NewObj,
    ReturnInstr,
    SyncEnter,
    SyncExit,
    UnOp,
    UseVar,
    lower_method,
)

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "Instr",
    "Assign",
    "FieldStore",
    "ReturnInstr",
    "AssertInstr",
    "SyncEnter",
    "SyncExit",
    "UseVar",
    "Const",
    "NewObj",
    "Call",
    "FieldLoad",
    "BinOp",
    "UnOp",
    "lower_method",
]
