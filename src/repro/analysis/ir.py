"""Three-address intermediate representation and AST lowering.

Method bodies are lowered into a flat list of instructions over named
variables (parameters, locals, and ``t$N`` temporaries).  Nested
expressions such as ``r1.createColIter().next()`` become explicit
instruction sequences, giving every analysis a single evaluation order.

``for``/``foreach`` loops are desugared during lowering; notably a
foreach over a collection becomes the explicit
``iterator()/hasNext()/next()`` protocol, so it exercises the same
permission machinery as hand-written loops.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.java import ast


# ---------------------------------------------------------------------------
# Right-hand sides (sources)
# ---------------------------------------------------------------------------


@dataclass
class Source:
    """Base class for instruction right-hand sides."""

    def variables(self):
        """Variable names read by this source."""
        return []


@dataclass
class UseVar(Source):
    name: str = ""

    def variables(self):
        return [self.name]

    def __str__(self):
        return self.name


@dataclass
class Const(Source):
    kind: str = ""  # int | string | char | bool | null
    value: object = None

    def __str__(self):
        return repr(self.value)


@dataclass
class NewObj(Source):
    class_name: str = ""
    args: List[str] = field(default_factory=list)

    def variables(self):
        return list(self.args)

    def __str__(self):
        return "new %s(%s)" % (self.class_name, ", ".join(self.args))


@dataclass
class Call(Source):
    """A method call. ``receiver`` is a variable name or None (static or
    implicit-this calls store the synthesized ``this`` receiver instead)."""

    receiver: Optional[str] = None
    method_name: str = ""
    args: List[str] = field(default_factory=list)
    static_class: Optional[str] = None  # receiver's static class, if known
    ast_node: object = field(default=None, compare=False, repr=False)

    def variables(self):
        names = list(self.args)
        if self.receiver is not None:
            names.append(self.receiver)
        return names

    def __str__(self):
        prefix = "%s." % self.receiver if self.receiver else ""
        return "%s%s(%s)" % (prefix, self.method_name, ", ".join(self.args))


@dataclass
class FieldLoad(Source):
    receiver: Optional[str] = None  # None for unqualified static-ish reads
    field_name: str = ""

    def variables(self):
        return [self.receiver] if self.receiver is not None else []

    def __str__(self):
        return "%s.%s" % (self.receiver or "<implicit>", self.field_name)


@dataclass
class BinOp(Source):
    op: str = ""
    left: str = ""
    right: str = ""

    def variables(self):
        return [self.left, self.right]

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


@dataclass
class UnOp(Source):
    op: str = ""
    operand: str = ""

    def variables(self):
        return [self.operand]

    def __str__(self):
        return "%s%s" % (self.op, self.operand)


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


@dataclass
class Instr:
    line: int = 0

    def defined(self):
        """The variable defined by this instruction, if any."""
        return None

    def used(self):
        """Variable names read by this instruction."""
        return []


@dataclass
class Assign(Instr):
    target: str = ""
    source: Source = None

    def defined(self):
        return self.target

    def used(self):
        return self.source.variables()

    def __str__(self):
        return "%s = %s" % (self.target, self.source)


@dataclass
class FieldStore(Instr):
    receiver: Optional[str] = None
    field_name: str = ""
    value: str = ""

    def used(self):
        names = [self.value]
        if self.receiver is not None:
            names.append(self.receiver)
        return names

    def __str__(self):
        return "%s.%s = %s" % (self.receiver or "<implicit>", self.field_name, self.value)


@dataclass
class ReturnInstr(Instr):
    value: Optional[str] = None

    def used(self):
        return [self.value] if self.value is not None else []

    def __str__(self):
        return "return %s" % (self.value or "")


@dataclass
class AssertInstr(Instr):
    condition: str = ""

    def used(self):
        return [self.condition]

    def __str__(self):
        return "assert %s" % self.condition


@dataclass
class SyncEnter(Instr):
    lock: str = ""

    def used(self):
        return [self.lock]

    def __str__(self):
        return "syncenter %s" % self.lock


@dataclass
class SyncExit(Instr):
    lock: str = ""

    def used(self):
        return [self.lock]

    def __str__(self):
        return "syncexit %s" % self.lock


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


class LoweredMethod:
    """The result of lowering: a structured tree of basic lowering events.

    Lowering produces a small structured program (:class:`LoweredBlock`)
    rather than a flat instruction list so that the CFG builder can insert
    joins precisely.  Leaf elements are :class:`Instr`; control elements are
    ``("if", cond_var, then_block, else_block)``-style tuples created via
    the classes below.
    """

    def __init__(self, method_ref, body, temps):
        self.method_ref = method_ref
        self.body = body
        self.temp_count = temps


class LoweredBlock:
    def __init__(self, items=None):
        self.items = items if items is not None else []

    def append(self, item):
        self.items.append(item)


class LoweredIf:
    def __init__(self, cond_var, then_block, else_block):
        self.cond_var = cond_var
        self.then_block = then_block
        self.else_block = else_block


class LoweredLoop:
    """A loop with a pre-lowered header.

    ``header`` re-evaluates the condition (instructions), ``cond_var`` holds
    its result, ``body`` is the loop body, ``update`` the for-update block.
    ``post_test`` marks do-while loops (body runs before the first test).
    """

    def __init__(self, header, cond_var, body, update=None, post_test=False):
        self.header = header
        self.cond_var = cond_var
        self.body = body
        self.update = update if update is not None else LoweredBlock()
        self.post_test = post_test


class LoweredBreak:
    pass


class LoweredContinue:
    pass


class Lowerer(ast.NodeVisitor):
    """Lowers one method body into a :class:`LoweredMethod`."""

    def __init__(self, program, class_decl, method_decl, typer=None):
        from repro.java.types import ExprTyper

        self.program = program
        self.class_decl = class_decl
        self.method_decl = method_decl
        self.typer = typer or ExprTyper(program, class_decl, method_decl)
        self.temp_count = 0
        self.block_stack = []
        # Innermost break-able construct: "loop" or "switch".  A break
        # inside a (desugared) switch ends the case arm, which the
        # if-chain encoding already does — so it lowers to nothing.
        self.break_stack = []

    # -- helpers --------------------------------------------------------------

    def _fresh_temp(self):
        name = "t$%d" % self.temp_count
        self.temp_count += 1
        return name

    def _emit(self, instr):
        self.block_stack[-1].append(instr)

    def _lower_into(self, block, fn):
        self.block_stack.append(block)
        try:
            fn()
        finally:
            self.block_stack.pop()
        return block

    def _lower_body_in(self, block, fn, kind="loop"):
        """Lower a loop/switch body, tracking what ``break`` targets."""
        self.break_stack.append(kind)
        try:
            self._lower_into(block, fn)
        finally:
            self.break_stack.pop()
        return block

    # -- entry point ------------------------------------------------------------

    def lower(self):
        body = LoweredBlock()
        self.block_stack.append(body)
        try:
            if self.method_decl.body is not None:
                for stmt in self.method_decl.body.statements:
                    self.lower_stmt(stmt)
        finally:
            self.block_stack.pop()
        return LoweredMethod(
            method_ref=(self.class_decl, self.method_decl),
            body=body,
            temps=self.temp_count,
        )

    # -- statements ------------------------------------------------------------

    def lower_stmt(self, stmt):
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.lower_stmt(inner)
        elif isinstance(stmt, ast.LocalVarDecl):
            if stmt.initializer is not None:
                value = self.lower_expr(stmt.initializer)
                self._emit(Assign(target=stmt.name, source=value, line=stmt.line))
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr_for_effect(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            cond_var = self._as_var(self.lower_expr(stmt.condition), stmt.line)
            then_block = LoweredBlock()
            self._lower_into(then_block, lambda: self.lower_stmt(stmt.then_branch))
            else_block = LoweredBlock()
            if stmt.else_branch is not None:
                self._lower_into(else_block, lambda: self.lower_stmt(stmt.else_branch))
            self._emit(LoweredIf(cond_var, then_block, else_block))
        elif isinstance(stmt, ast.WhileStmt):
            header = LoweredBlock()
            cond_var_box = []

            def lower_header():
                cond_var_box.append(
                    self._as_var(self.lower_expr(stmt.condition), stmt.line)
                )

            self._lower_into(header, lower_header)
            body = LoweredBlock()
            self._lower_body_in(body, lambda: self.lower_stmt(stmt.body))
            self._emit(LoweredLoop(header, cond_var_box[0], body))
        elif isinstance(stmt, ast.DoWhileStmt):
            header = LoweredBlock()
            cond_var_box = []

            def lower_header():
                cond_var_box.append(
                    self._as_var(self.lower_expr(stmt.condition), stmt.line)
                )

            self._lower_into(header, lower_header)
            body = LoweredBlock()
            self._lower_body_in(body, lambda: self.lower_stmt(stmt.body))
            self._emit(LoweredLoop(header, cond_var_box[0], body, post_test=True))
        elif isinstance(stmt, ast.ForStmt):
            for init in stmt.init:
                self.lower_stmt(init)
            header = LoweredBlock()
            cond_var_box = []

            def lower_header():
                if stmt.condition is not None:
                    cond_var_box.append(
                        self._as_var(self.lower_expr(stmt.condition), stmt.line)
                    )
                else:
                    temp = self._fresh_temp()
                    self._emit(
                        Assign(
                            target=temp,
                            source=Const(kind="bool", value=True),
                            line=stmt.line,
                        )
                    )
                    cond_var_box.append(temp)

            self._lower_into(header, lower_header)
            body = LoweredBlock()
            self._lower_body_in(body, lambda: self.lower_stmt(stmt.body))
            update = LoweredBlock()

            def lower_update():
                for expr in stmt.update:
                    self.lower_expr_for_effect(expr)

            self._lower_into(update, lower_update)
            self._emit(LoweredLoop(header, cond_var_box[0], body, update=update))
        elif isinstance(stmt, ast.ForEachStmt):
            self._lower_foreach(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = None
            if stmt.value is not None:
                value = self._as_var(self.lower_expr(stmt.value), stmt.line)
            self._emit(ReturnInstr(value=value, line=stmt.line))
        elif isinstance(stmt, ast.AssertStmt):
            cond = self._as_var(self.lower_expr(stmt.condition), stmt.line)
            self._emit(AssertInstr(condition=cond, line=stmt.line))
        elif isinstance(stmt, ast.SynchronizedStmt):
            lock = self._as_var(self.lower_expr(stmt.lock), stmt.line)
            self._emit(SyncEnter(lock=lock, line=stmt.line))
            self.lower_stmt(stmt.body)
            self._emit(SyncExit(lock=lock, line=stmt.line))
        elif isinstance(stmt, ast.ThrowStmt):
            self._as_var(self.lower_expr(stmt.value), stmt.line)
            self._emit(ReturnInstr(value=None, line=stmt.line))  # abrupt exit
        elif isinstance(stmt, ast.SwitchStmt):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.break_stack or self.break_stack[-1] == "loop":
                self._emit(LoweredBreak())
            # break out of a switch arm: the if-chain desugar needs nothing.
        elif isinstance(stmt, ast.ContinueStmt):
            self._emit(LoweredContinue())
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            raise TypeError("cannot lower statement %r" % type(stmt).__name__)

    def _lower_foreach(self, stmt):
        """Desugar foreach into the iterator()/hasNext()/next() protocol."""
        iterable_var = self._as_var(self.lower_expr(stmt.iterable), stmt.line)
        iter_var = self._fresh_temp()
        iterable_class = None
        iterable_type = self.typer.type_of(stmt.iterable)
        if iterable_type is not None:
            iterable_class = iterable_type.name
        self._emit(
            Assign(
                target=iter_var,
                source=Call(
                    receiver=iterable_var,
                    method_name="iterator",
                    args=[],
                    static_class=iterable_class,
                ),
                line=stmt.line,
            )
        )
        header = LoweredBlock()
        cond_var_box = []

        def lower_header():
            cond = self._fresh_temp()
            self._emit(
                Assign(
                    target=cond,
                    source=Call(
                        receiver=iter_var,
                        method_name="hasNext",
                        args=[],
                        static_class="Iterator",
                    ),
                    line=stmt.line,
                )
            )
            cond_var_box.append(cond)

        self._lower_into(header, lower_header)
        body = LoweredBlock()

        def lower_body():
            self._emit(
                Assign(
                    target=stmt.var_name,
                    source=Call(
                        receiver=iter_var,
                        method_name="next",
                        args=[],
                        static_class="Iterator",
                    ),
                    line=stmt.line,
                )
            )
            self.lower_stmt(stmt.body)

        self._lower_body_in(body, lower_body)
        self._emit(LoweredLoop(header, cond_var_box[0], body))

    def _lower_switch(self, stmt):
        """Desugar switch into an equality-guarded if-else chain.

        ``break`` ends a case arm (the chain encoding needs nothing for
        it); fallthrough between arms is not modeled — each arm is
        treated as self-contained, the overwhelmingly common idiom.
        """
        selector = self._as_var(self.lower_expr(stmt.selector), stmt.line)
        self._lower_switch_cases(stmt, selector, list(stmt.cases))

    def _lower_switch_cases(self, stmt, selector, cases):
        if not cases:
            return
        case = cases[0]
        if case.is_default:
            self.break_stack.append("switch")
            try:
                for inner in case.body:
                    self.lower_stmt(inner)
            finally:
                self.break_stack.pop()
            return
        cond = None
        for label in case.labels:
            label_var = self._as_var(self.lower_expr(label), stmt.line)
            test = self._fresh_temp()
            self._emit(
                Assign(
                    target=test,
                    source=BinOp(op="==", left=selector, right=label_var),
                    line=stmt.line,
                )
            )
            if cond is None:
                cond = test
            else:
                combined = self._fresh_temp()
                self._emit(
                    Assign(
                        target=combined,
                        source=BinOp(op="||", left=cond, right=test),
                        line=stmt.line,
                    )
                )
                cond = combined
        then_block = LoweredBlock()

        def lower_arm():
            for inner in case.body:
                self.lower_stmt(inner)

        self._lower_body_in(then_block, lower_arm, kind="switch")
        else_block = LoweredBlock()
        self._lower_into(
            else_block,
            lambda: self._lower_switch_cases(stmt, selector, cases[1:]),
        )
        self._emit(LoweredIf(cond, then_block, else_block))

    # -- expressions -------------------------------------------------------------

    def lower_expr_for_effect(self, expr):
        """Lower an expression evaluated for side effects only."""
        if isinstance(expr, ast.Assign):
            self._lower_assign(expr)
            return
        result = self.lower_expr(expr)
        if isinstance(result, (Call, NewObj, FieldLoad)):
            self._emit(Assign(target=self._fresh_temp(), source=result, line=expr.line))

    def lower_expr(self, expr):
        """Lower an expression; returns a :class:`Source` for its value."""
        if isinstance(expr, ast.Literal):
            return Const(kind=expr.kind, value=expr.value)
        if isinstance(expr, ast.VarRef):
            if self.typer.env.lookup(expr.name) is not None or any(
                param.name == expr.name for param in self.method_decl.params
            ):
                return UseVar(name=expr.name)
            # Unqualified field read (implicit this).
            return self._emit_load(
                FieldLoad(receiver="this", field_name=expr.name), expr.line
            )
        if isinstance(expr, ast.ThisRef):
            return UseVar(name="this")
        if isinstance(expr, ast.FieldAccess):
            receiver = None
            if expr.receiver is not None:
                receiver = self._as_var(self.lower_expr(expr.receiver), expr.line)
            else:
                receiver = "this"
            return self._emit_load(
                FieldLoad(receiver=receiver, field_name=expr.name), expr.line
            )
        if isinstance(expr, ast.MethodCall):
            return self._lower_call(expr)
        if isinstance(expr, ast.NewObject):
            args = [
                self._as_var(self.lower_expr(arg), expr.line) for arg in expr.arguments
            ]
            temp = self._fresh_temp()
            self._emit(
                Assign(
                    target=temp,
                    source=NewObj(class_name=expr.type.name, args=args),
                    line=expr.line,
                )
            )
            return UseVar(name=temp)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Binary):
            left = self._as_var(self.lower_expr(expr.left), expr.line)
            right = self._as_var(self.lower_expr(expr.right), expr.line)
            temp = self._fresh_temp()
            self._emit(
                Assign(
                    target=temp,
                    source=BinOp(op=expr.op, left=left, right=right),
                    line=expr.line,
                )
            )
            return UseVar(name=temp)
        if isinstance(expr, ast.Unary):
            if expr.op in ("++", "--"):
                return self._lower_increment(expr)
            operand = self._as_var(self.lower_expr(expr.operand), expr.line)
            temp = self._fresh_temp()
            self._emit(
                Assign(
                    target=temp,
                    source=UnOp(op=expr.op, operand=operand),
                    line=expr.line,
                )
            )
            return UseVar(name=temp)
        if isinstance(expr, ast.Cast):
            return self.lower_expr(expr.expr)
        if isinstance(expr, ast.InstanceOf):
            operand = self._as_var(self.lower_expr(expr.expr), expr.line)
            temp = self._fresh_temp()
            self._emit(
                Assign(
                    target=temp,
                    source=UnOp(op="instanceof", operand=operand),
                    line=expr.line,
                )
            )
            return UseVar(name=temp)
        if isinstance(expr, ast.Conditional):
            # Desugar to if/else over a fresh temp.
            cond = self._as_var(self.lower_expr(expr.condition), expr.line)
            temp = self._fresh_temp()
            then_block = LoweredBlock()

            def lower_then():
                value = self._as_var(self.lower_expr(expr.then_expr), expr.line)
                self._emit(
                    Assign(target=temp, source=UseVar(name=value), line=expr.line)
                )

            self._lower_into(then_block, lower_then)
            else_block = LoweredBlock()

            def lower_else():
                value = self._as_var(self.lower_expr(expr.else_expr), expr.line)
                self._emit(
                    Assign(target=temp, source=UseVar(name=value), line=expr.line)
                )

            self._lower_into(else_block, lower_else)
            self._emit(LoweredIf(cond, then_block, else_block))
            return UseVar(name=temp)
        if isinstance(expr, ast.ArrayAccess):
            array = self._as_var(self.lower_expr(expr.array), expr.line)
            self._as_var(self.lower_expr(expr.index), expr.line)
            temp = self._fresh_temp()
            self._emit(
                Assign(
                    target=temp,
                    source=UnOp(op="[]", operand=array),
                    line=expr.line,
                )
            )
            return UseVar(name=temp)
        raise TypeError("cannot lower expression %r" % type(expr).__name__)

    def _lower_increment(self, expr):
        """Desugar ``x++``/``--x`` into an explicit read-modify-write.

        Returns the old value for postfix uses and the new value for
        prefix uses, matching Java semantics.
        """
        op = expr.op[0]  # "+" or "-"
        one = self._fresh_temp()
        self._emit(
            Assign(
                target=one, source=Const(kind="int", value=1), line=expr.line
            )
        )
        current = self._as_var(self.lower_expr(expr.operand), expr.line)
        # Snapshot the old value: for locals `current` is the variable
        # itself, which the write-back below would otherwise clobber.
        old_value = self._fresh_temp()
        self._emit(
            Assign(
                target=old_value, source=UseVar(name=current), line=expr.line
            )
        )
        new_value = self._fresh_temp()
        self._emit(
            Assign(
                target=new_value,
                source=BinOp(op=op, left=old_value, right=one),
                line=expr.line,
            )
        )
        # Write back to the target (local or field).
        target = expr.operand
        if isinstance(target, ast.VarRef) and (
            self.typer.env.lookup(target.name) is not None
            or any(p.name == target.name for p in self.method_decl.params)
        ):
            self._emit(
                Assign(
                    target=target.name,
                    source=UseVar(name=new_value),
                    line=expr.line,
                )
            )
        elif isinstance(target, (ast.VarRef, ast.FieldAccess)):
            if isinstance(target, ast.FieldAccess) and target.receiver is not None:
                receiver = self._as_var(
                    self.lower_expr(target.receiver), expr.line
                )
            else:
                receiver = "this"
            self._emit(
                FieldStore(
                    receiver=receiver,
                    field_name=target.name,
                    value=new_value,
                    line=expr.line,
                )
            )
        return UseVar(name=new_value if expr.prefix else old_value)

    def _lower_call(self, call):
        receiver_var = None
        if call.receiver is not None:
            receiver_var = self._as_var(self.lower_expr(call.receiver), call.line)
        else:
            receiver_var = "this"
        args = [self._as_var(self.lower_expr(arg), call.line) for arg in call.arguments]
        static_class = self.typer.receiver_class_name(call)
        temp = self._fresh_temp()
        self._emit(
            Assign(
                target=temp,
                source=Call(
                    receiver=receiver_var,
                    method_name=call.name,
                    args=args,
                    static_class=static_class,
                    ast_node=call,
                ),
                line=call.line,
            )
        )
        return UseVar(name=temp)

    def _lower_assign(self, expr):
        if isinstance(expr.target, ast.VarRef) and self.typer.env.lookup(
            expr.target.name
        ) is not None:
            value = self.lower_expr(expr.value)
            if expr.op != "=":
                value_var = self._as_var(value, expr.line)
                value = BinOp(
                    op=expr.op.rstrip("="), left=expr.target.name, right=value_var
                )
            self._emit(Assign(target=expr.target.name, source=value, line=expr.line))
            return UseVar(name=expr.target.name)
        # Field store (qualified, or unqualified name that is a field).
        if isinstance(expr.target, ast.FieldAccess) or isinstance(
            expr.target, ast.VarRef
        ):
            if isinstance(expr.target, ast.FieldAccess):
                if expr.target.receiver is not None:
                    receiver = self._as_var(
                        self.lower_expr(expr.target.receiver), expr.line
                    )
                else:
                    receiver = "this"
                field_name = expr.target.name
            else:
                receiver = "this"
                field_name = expr.target.name
            value_var = self._as_var(self.lower_expr(expr.value), expr.line)
            if expr.op != "=":
                # Compound store: load the field, apply the operator.
                loaded = self._fresh_temp()
                self._emit(
                    Assign(
                        target=loaded,
                        source=FieldLoad(
                            receiver=receiver, field_name=field_name
                        ),
                        line=expr.line,
                    )
                )
                combined = self._fresh_temp()
                self._emit(
                    Assign(
                        target=combined,
                        source=BinOp(
                            op=expr.op.rstrip("="),
                            left=loaded,
                            right=value_var,
                        ),
                        line=expr.line,
                    )
                )
                value_var = combined
            self._emit(
                FieldStore(
                    receiver=receiver,
                    field_name=field_name,
                    value=value_var,
                    line=expr.line,
                )
            )
            return UseVar(name=value_var)
        if isinstance(expr.target, ast.ArrayAccess):
            self._as_var(self.lower_expr(expr.target.array), expr.line)
            self._as_var(self.lower_expr(expr.target.index), expr.line)
            value_var = self._as_var(self.lower_expr(expr.value), expr.line)
            return UseVar(name=value_var)
        raise TypeError(
            "cannot lower assignment target %r" % type(expr.target).__name__
        )

    def _emit_load(self, load, line):
        temp = self._fresh_temp()
        self._emit(Assign(target=temp, source=load, line=line))
        return UseVar(name=temp)

    def _as_var(self, source, line):
        """Materialize a source into a variable name."""
        if isinstance(source, UseVar):
            return source.name
        temp = self._fresh_temp()
        self._emit(Assign(target=temp, source=source, line=line))
        return temp


def lower_method(program, class_decl, method_decl):
    """Lower one method; returns a :class:`LoweredMethod`."""
    return Lowerer(program, class_decl, method_decl).lower()
