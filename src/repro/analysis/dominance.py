"""Dominator analysis and natural-loop detection.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm over
CFGs, plus derived structure: dominator tree children, dominance
queries, back-edge identification (a proper definition to replace
RPO-order approximations) and natural loops with their bodies.

Used by the protocol miner's path enumeration and available to any
client analysis that needs loop structure.
"""

from repro.analysis.cfg import CFG


class DominatorTree:
    """Immediate dominators and derived queries for one CFG."""

    def __init__(self, cfg):
        self.cfg = cfg
        self._rpo = cfg.reverse_postorder()
        self._order = {
            node.node_id: index for index, node in enumerate(self._rpo)
        }
        self._nodes = {node.node_id: node for node in cfg.nodes}
        self.idom = self._compute()
        self._depth = self._compute_depths()

    def _compute_depths(self):
        """Depth of each node in the dominator tree (entry = 0)."""
        depths = {self.cfg.entry.node_id: 0}

        def depth_of(node_id):
            if node_id in depths:
                return depths[node_id]
            chain = []
            current = node_id
            while current not in depths:
                chain.append(current)
                parent = self.idom.get(current)
                if parent is None or parent == current:
                    depths[current] = 0
                    break
                current = parent
            base = depths.get(current, 0)
            for offset, item in enumerate(reversed(chain)):
                depths[item] = base + offset + 1
            return depths[node_id]

        for node_id in self.idom:
            depth_of(node_id)
        return depths

    # -- construction (Cooper-Harvey-Kennedy) ------------------------------------

    def _compute(self):
        entry = self.cfg.entry
        idom = {entry.node_id: entry.node_id}
        changed = True
        while changed:
            changed = False
            for node in self._rpo:
                if node is entry:
                    continue
                candidates = [
                    pred
                    for pred, _ in node.preds
                    if pred.node_id in idom
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = self._intersect(pred, new_idom, idom)
                if idom.get(node.node_id) != new_idom.node_id:
                    idom[node.node_id] = new_idom.node_id
                    changed = True
        return idom

    def _intersect(self, a, b, idom):
        nodes = self._nodes
        finger_a, finger_b = a, b
        while finger_a.node_id != finger_b.node_id:
            while self._order.get(finger_a.node_id, 0) > self._order.get(
                finger_b.node_id, 0
            ):
                finger_a = nodes[idom[finger_a.node_id]]
            while self._order.get(finger_b.node_id, 0) > self._order.get(
                finger_a.node_id, 0
            ):
                finger_b = nodes[idom[finger_b.node_id]]
        return finger_a

    # -- queries ----------------------------------------------------------------

    def immediate_dominator(self, node):
        """The unique immediate dominator (entry dominates itself)."""
        dominator_id = self.idom.get(node.node_id)
        if dominator_id is None:
            return None
        return self._nodes.get(dominator_id)

    def dominates(self, dominator, node):
        """Reflexive dominance: does ``dominator`` dominate ``node``?

        Walks the dominator-tree ancestor chain from ``node`` up to the
        depth of ``dominator`` — O(tree height), dictionary lookups only.
        """
        if node.node_id not in self.idom:
            return False
        target_depth = self._depth.get(dominator.node_id)
        if target_depth is None:
            return False
        current = node.node_id
        depth = self._depth.get(current, 0)
        while depth > target_depth:
            parent = self.idom.get(current)
            if parent is None or parent == current:
                break
            current = parent
            depth -= 1
        return current == dominator.node_id

    def back_edges(self):
        """Edges (tail, head) whose head dominates their tail."""
        edges = []
        for node in self.cfg.nodes:
            if node.node_id not in self.idom:
                continue  # unreachable
            for succ, _ in node.succs:
                if succ.node_id in self.idom and self.dominates(succ, node):
                    edges.append((node, succ))
        return edges

    def natural_loops(self):
        """{header node_id: set of body node_ids} for each natural loop."""
        loops = {}
        for tail, header in self.back_edges():
            body = loops.setdefault(header.node_id, {header.node_id})
            stack = [tail]
            while stack:
                node = stack.pop()
                if node.node_id in body:
                    continue
                body.add(node.node_id)
                stack.extend(pred for pred, _ in node.preds)
        return loops

    def loop_depth(self, node):
        """How many natural loops contain ``node``."""
        return sum(
            1
            for body in self.natural_loops().values()
            if node.node_id in body
        )


def build_dominator_tree(cfg):
    """Compute the dominator tree of a CFG."""
    return DominatorTree(cfg)
