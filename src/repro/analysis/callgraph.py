"""Whole-program call graph over resolved methods.

ANEK-INFER's worklist needs to know, when a method summary changes, which
callers depend on it.  The call graph maps each method to its call sites
and supports reverse (callee -> callers) queries.  Resolution is static:
calls dispatch on the receiver's static type, matching the paper's
analysis (PLURAL specs attach to static types and supertype specs apply
to subtypes).
"""

from repro.analysis import ir
from repro.analysis.ir import lower_method


class CallSite:
    """One call site: caller method, callee method, and the IR call."""

    __slots__ = ("caller", "callee", "call", "line")

    def __init__(self, caller, callee, call, line):
        self.caller = caller
        self.callee = callee
        self.call = call
        self.line = line

    def __repr__(self):
        return "CallSite(%s -> %s @%d)" % (
            self.caller.qualified_name,
            self.callee.qualified_name if self.callee else "?",
            self.line,
        )


class CallGraph:
    """Caller/callee indexes over the whole program."""

    def __init__(self):
        self.sites = []
        self._by_caller = {}
        self._by_callee = {}

    def add(self, site):
        self.sites.append(site)
        self._by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self._by_callee.setdefault(site.callee, []).append(site)

    def callees_of(self, method_ref):
        """Call sites inside ``method_ref``."""
        return self._by_caller.get(method_ref, [])

    def callers_of(self, method_ref):
        """Call sites that invoke ``method_ref``."""
        return self._by_callee.get(method_ref, [])

    def caller_methods_of(self, method_ref):
        """Distinct methods that call ``method_ref``."""
        seen = []
        for site in self.callers_of(method_ref):
            if site.caller not in seen:
                seen.append(site.caller)
        return seen


def dependency_edges(graph, members):
    """Caller -> callee edges of ``graph`` restricted to ``members``.

    Returns ``{method_ref: [callee_ref, ...]}`` with every member present
    as a key and callee lists deduplicated in first-call order, so the
    result is deterministic given the members' order.
    """
    member_set = set(members)
    edges = {ref: [] for ref in members}
    for site in graph.sites:
        if site.callee is None:
            continue
        if site.caller not in member_set or site.callee not in member_set:
            continue
        bucket = edges[site.caller]
        if site.callee not in bucket:
            bucket.append(site.callee)
    return edges


def strongly_connected_components(edges):
    """Tarjan's SCC algorithm (iterative) over ``{node: [successor]}``.

    Components are emitted in reverse topological order of the
    condensation: every component appears after all components it can
    reach.  Both the component order and the member order within each
    component are deterministic functions of ``edges``'s iteration order.
    """
    index_of = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []
    counter = [0]

    for root in edges:
        if root in index_of:
            continue
        # Explicit DFS stack of (node, iterator position).
        work = [(root, 0)]
        while work:
            node, pos = work.pop()
            if pos == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = edges.get(node, [])
            for next_pos in range(pos, len(successors)):
                succ = successors[next_pos]
                if succ not in index_of:
                    work.append((node, next_pos + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member is node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def condensation_levels(graph, members, sort_key=None):
    """Partition ``members`` into SCC-condensation levels.

    Level ``i`` holds every method whose SCC only depends (through
    caller -> callee edges) on SCCs in levels ``< i``; level 0 methods
    call no other member method.  Two methods in the same level never
    exchange summaries directly *across* SCCs, so a level-synchronous
    scheduler may solve a whole level concurrently against a snapshot of
    the summary store (intra-SCC edges — recursion — resolve across
    rounds, Jacobi style).

    Returns ``(levels, scc_count)`` where ``levels`` is a list of lists
    of MethodRefs; each level is sorted by ``sort_key`` (default:
    qualified method name) so the merge order downstream is
    deterministic.
    """
    members = list(members)
    edges = dependency_edges(graph, members)
    components = strongly_connected_components(edges)
    component_of = {}
    for component in components:
        marker = id(component)
        for member in component:
            component_of[member] = marker
    depth_of = {}
    component_members = {id(c): c for c in components}
    # Tarjan emits callees before callers, so every component's callee
    # components already have a depth when it is visited.
    for component in components:
        marker = id(component)
        depth = 0
        for member in component:
            for callee in edges[member]:
                callee_marker = component_of[callee]
                if callee_marker == marker:
                    continue
                depth = max(depth, depth_of[callee_marker] + 1)
        depth_of[marker] = depth
    if sort_key is None:
        sort_key = lambda ref: ref.qualified_name  # noqa: E731
    max_depth = max(depth_of.values(), default=-1)
    levels = [[] for _ in range(max_depth + 1)]
    for marker, component in component_members.items():
        levels[depth_of[marker]].extend(component)
    for level in levels:
        level.sort(key=sort_key)
    return levels, len(components)


def method_call_sites(program, caller_ref, lowered=None):
    """Yield the :class:`CallSite`\\ s inside one method, in source order.

    ``lowered`` optionally reuses existing lowering work.  Method calls
    yield a site even when unresolved (``callee is None``); constructor
    calls yield only when resolved — matching what
    :func:`build_call_graph` has always recorded.
    """
    if lowered is None:
        lowered = lower_method(
            program, caller_ref.class_decl, caller_ref.method_decl
        )
    for instr in iter_instrs(lowered.body):
        if isinstance(instr, ir.Assign) and isinstance(instr.source, ir.Call):
            call = instr.source
            callee = None
            if call.static_class is not None:
                callee = program.resolve_method(
                    call.static_class, call.method_name, len(call.args)
                )
            yield CallSite(caller_ref, callee, call, instr.line)
        elif isinstance(instr, ir.Assign) and isinstance(
            instr.source, ir.NewObj
        ):
            callee = program.resolve_constructor(
                instr.source.class_name, len(instr.source.args)
            )
            if callee is not None:
                yield CallSite(caller_ref, callee, instr.source, instr.line)


def method_call_targets(program, caller_ref, lowered=None):
    """The resolved ``(callee_ref, line)`` pairs inside one method.

    This is the picklable slice of :func:`method_call_sites` the
    persistent cache stores per method: unresolved sites are dropped
    (nothing downstream of the graph consumes them), refs later travel
    as stable method keys.
    """
    return [
        (site.callee, site.line)
        for site in method_call_sites(program, caller_ref, lowered=lowered)
        if site.callee is not None
    ]


def call_graph_from_targets(targets_by_method):
    """Rebuild a :class:`CallGraph` from per-method resolved targets.

    ``targets_by_method`` maps caller ref -> ``[(callee_ref, line), ...]``
    in source order (the shape :func:`method_call_targets` produces and
    the cache round-trips).  The reconstructed graph carries no IR call
    objects, but caller/callee identities — all that inference and the
    scheduler consume — match :func:`build_call_graph` exactly.
    """
    graph = CallGraph()
    for caller_ref, targets in targets_by_method.items():
        for callee_ref, line in targets:
            graph.add(CallSite(caller_ref, callee_ref, None, line))
    return graph


def build_call_graph(program, lowered_methods=None, skip=None, on_error=None):
    """Build the call graph.

    ``lowered_methods`` optionally maps MethodRef -> LoweredMethod to reuse
    existing lowering work; otherwise methods are lowered on demand.
    ``skip`` is a container of caller refs to leave out entirely (already
    quarantined methods — the cached-callee reconstruction omits them, so
    the from-scratch build must too).  ``on_error`` receives
    ``(caller_ref, exc)`` when lowering one caller fails and that caller
    is then skipped; without it the exception propagates.
    """
    graph = CallGraph()
    for caller_ref in program.methods_with_bodies():
        if skip is not None and caller_ref in skip:
            continue
        lowered = None
        if lowered_methods is not None and caller_ref in lowered_methods:
            lowered = lowered_methods[caller_ref]
        try:
            sites = list(
                method_call_sites(program, caller_ref, lowered=lowered)
            )
        except Exception as exc:
            if on_error is None:
                raise
            on_error(caller_ref, exc)
            continue
        for site in sites:
            graph.add(site)
    return graph


def iter_instrs(block):
    """Yield every IR instruction in a lowered block tree."""
    for item in block.items:
        if isinstance(item, ir.Instr):
            yield item
        elif isinstance(item, ir.LoweredIf):
            for instr in iter_instrs(item.then_block):
                yield instr
            for instr in iter_instrs(item.else_block):
                yield instr
        elif isinstance(item, ir.LoweredLoop):
            for instr in iter_instrs(item.header):
                yield instr
            for instr in iter_instrs(item.body):
                yield instr
            for instr in iter_instrs(item.update):
                yield instr
