"""Whole-program call graph over resolved methods.

ANEK-INFER's worklist needs to know, when a method summary changes, which
callers depend on it.  The call graph maps each method to its call sites
and supports reverse (callee -> callers) queries.  Resolution is static:
calls dispatch on the receiver's static type, matching the paper's
analysis (PLURAL specs attach to static types and supertype specs apply
to subtypes).
"""

from repro.analysis import ir
from repro.analysis.ir import lower_method


class CallSite:
    """One call site: caller method, callee method, and the IR call."""

    __slots__ = ("caller", "callee", "call", "line")

    def __init__(self, caller, callee, call, line):
        self.caller = caller
        self.callee = callee
        self.call = call
        self.line = line

    def __repr__(self):
        return "CallSite(%s -> %s @%d)" % (
            self.caller.qualified_name,
            self.callee.qualified_name if self.callee else "?",
            self.line,
        )


class CallGraph:
    """Caller/callee indexes over the whole program."""

    def __init__(self):
        self.sites = []
        self._by_caller = {}
        self._by_callee = {}

    def add(self, site):
        self.sites.append(site)
        self._by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self._by_callee.setdefault(site.callee, []).append(site)

    def callees_of(self, method_ref):
        """Call sites inside ``method_ref``."""
        return self._by_caller.get(method_ref, [])

    def callers_of(self, method_ref):
        """Call sites that invoke ``method_ref``."""
        return self._by_callee.get(method_ref, [])

    def caller_methods_of(self, method_ref):
        """Distinct methods that call ``method_ref``."""
        seen = []
        for site in self.callers_of(method_ref):
            if site.caller not in seen:
                seen.append(site.caller)
        return seen


def build_call_graph(program, lowered_methods=None):
    """Build the call graph.

    ``lowered_methods`` optionally maps MethodRef -> LoweredMethod to reuse
    existing lowering work; otherwise methods are lowered on demand.
    """
    graph = CallGraph()
    for caller_ref in program.methods_with_bodies():
        if lowered_methods is not None and caller_ref in lowered_methods:
            lowered = lowered_methods[caller_ref]
        else:
            lowered = lower_method(
                program, caller_ref.class_decl, caller_ref.method_decl
            )
        for instr in iter_instrs(lowered.body):
            if isinstance(instr, ir.Assign) and isinstance(instr.source, ir.Call):
                call = instr.source
                callee = None
                if call.static_class is not None:
                    callee = program.resolve_method(
                        call.static_class, call.method_name, len(call.args)
                    )
                graph.add(CallSite(caller_ref, callee, call, instr.line))
            elif isinstance(instr, ir.Assign) and isinstance(instr.source, ir.NewObj):
                callee = program.resolve_constructor(
                    instr.source.class_name, len(instr.source.args)
                )
                if callee is not None:
                    graph.add(CallSite(caller_ref, callee, instr.source, instr.line))
    return graph


def iter_instrs(block):
    """Yield every IR instruction in a lowered block tree."""
    for item in block.items:
        if isinstance(item, ir.Instr):
            yield item
        elif isinstance(item, ir.LoweredIf):
            for instr in iter_instrs(item.then_block):
                yield instr
            for instr in iter_instrs(item.else_block):
                yield instr
        elif isinstance(item, ir.LoweredLoop):
            for instr in iter_instrs(item.header):
                yield instr
            for instr in iter_instrs(item.body):
                yield instr
            for instr in iter_instrs(item.update):
                yield instr
