"""Backward live-variable analysis over the IR CFG.

Used by the PFG builder to know where a permission-carrying variable dies
(its permission flows to the owner's postcondition at that point) and by
tests as a second client of the generic dataflow framework.
"""

from repro.analysis import ir
from repro.analysis.dataflow import BackwardAnalysis


class LivenessAnalysis(BackwardAnalysis):
    """Classic live-variable analysis; facts are frozensets of names."""

    def initial(self):
        return frozenset()

    def boundary(self):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, node, fact):
        if node.kind == "branch":
            return fact | {node.cond_var}
        if node.kind != "instr":
            return fact
        instr = node.instr
        defined = instr.defined()
        live = set(fact)
        if defined is not None:
            live.discard(defined)
        live.update(instr.used())
        return frozenset(live)


def analyze_liveness(cfg):
    """Run liveness; returns the raw :class:`DataflowResult`."""
    return LivenessAnalysis().run(cfg)


def live_before(result, node):
    return result.in_facts[node.node_id]


def live_after(result, node):
    return result.out_facts[node.node_id]
