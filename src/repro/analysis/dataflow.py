"""A generic worklist dataflow framework over CFGs.

Analyses subclass :class:`ForwardAnalysis` or :class:`BackwardAnalysis`,
providing the lattice operations (``initial``, ``boundary``, ``join``,
``equals``) and the ``transfer`` function.  ``run`` returns per-node
IN/OUT maps keyed by ``node_id``.
"""

from collections import deque


class DataflowResult:
    """IN/OUT facts for every node of a CFG."""

    def __init__(self, in_facts, out_facts):
        self.in_facts = in_facts
        self.out_facts = out_facts

    def entry_fact(self, node):
        return self.in_facts[node.node_id]

    def exit_fact(self, node):
        return self.out_facts[node.node_id]


class ForwardAnalysis:
    """Forward may/must dataflow via a worklist fixpoint."""

    def initial(self):
        """Fact for unvisited nodes (the lattice identity for join)."""
        raise NotImplementedError

    def boundary(self):
        """Fact at the CFG entry."""
        raise NotImplementedError

    def join(self, left, right):
        raise NotImplementedError

    def equals(self, left, right):
        return left == right

    def transfer(self, node, fact, edge_label=None):
        """Fact after executing ``node`` given ``fact`` before it."""
        raise NotImplementedError

    def edge_transfer(self, src, dst, label, fact):
        """Optional per-edge refinement (e.g. branch conditions)."""
        return fact

    def run(self, cfg, max_steps=None):
        in_facts = {}
        out_facts = {}
        order = cfg.reverse_postorder()
        priorities = {node.node_id: index for index, node in enumerate(order)}
        for node in cfg.nodes:
            in_facts[node.node_id] = self.initial()
            out_facts[node.node_id] = self.initial()
        in_facts[cfg.entry.node_id] = self.boundary()
        worklist = deque(order)
        queued = {node.node_id for node in order}
        steps = 0
        while worklist:
            if max_steps is not None and steps > max_steps:
                raise RuntimeError("dataflow did not converge in %d steps" % max_steps)
            steps += 1
            node = worklist.popleft()
            queued.discard(node.node_id)
            if node.node_id != cfg.entry.node_id:
                incoming = self.initial()
                first = True
                # Expose the join point to analyses whose join needs a
                # stable identity for merge artifacts (e.g. must-alias
                # join witnesses).
                self._join_node = node
                for pred, label in node.preds:
                    fact = self.edge_transfer(
                        pred, node, label, out_facts[pred.node_id]
                    )
                    incoming = fact if first else self.join(incoming, fact)
                    first = False
                in_facts[node.node_id] = incoming
            new_out = self.transfer(node, in_facts[node.node_id])
            if not self.equals(new_out, out_facts[node.node_id]):
                out_facts[node.node_id] = new_out
                for succ, _ in node.succs:
                    if succ.node_id not in queued:
                        queued.add(succ.node_id)
                        worklist.append(succ)
        return DataflowResult(in_facts, out_facts)


class BackwardAnalysis:
    """Backward dataflow (e.g. liveness)."""

    def initial(self):
        raise NotImplementedError

    def boundary(self):
        raise NotImplementedError

    def join(self, left, right):
        raise NotImplementedError

    def equals(self, left, right):
        return left == right

    def transfer(self, node, fact):
        """Fact before executing ``node`` given ``fact`` after it."""
        raise NotImplementedError

    def run(self, cfg, max_steps=None):
        in_facts = {}
        out_facts = {}
        for node in cfg.nodes:
            in_facts[node.node_id] = self.initial()
            out_facts[node.node_id] = self.initial()
        out_facts[cfg.exit.node_id] = self.boundary()
        worklist = deque(reversed(cfg.reverse_postorder()))
        queued = {node.node_id for node in worklist}
        steps = 0
        while worklist:
            if max_steps is not None and steps > max_steps:
                raise RuntimeError("dataflow did not converge in %d steps" % max_steps)
            steps += 1
            node = worklist.popleft()
            queued.discard(node.node_id)
            if node.node_id != cfg.exit.node_id:
                outgoing = self.initial()
                first = True
                for succ, _ in node.succs:
                    fact = in_facts[succ.node_id]
                    outgoing = fact if first else self.join(outgoing, fact)
                    first = False
                out_facts[node.node_id] = outgoing
            new_in = self.transfer(node, out_facts[node.node_id])
            if not self.equals(new_in, in_facts[node.node_id]):
                in_facts[node.node_id] = new_in
                for pred, _ in node.preds:
                    if pred.node_id not in queued:
                        queued.add(pred.node_id)
                        worklist.append(pred)
        return DataflowResult(in_facts, out_facts)
