#!/usr/bin/env python
"""Walkthrough of the Permission Flow Graph for Figure 5's copy method.

Builds the PFG of the paper's Figure 6 and prints both a node/edge
listing and Graphviz DOT.  Then assembles the probabilistic model and
shows the per-node kind marginals, so you can watch the iterator's
``unique`` permission flow from ``iterator()`` through the loop's
``hasNext``/``next`` calls.

    python examples/pfg_walkthrough.py
"""

from repro.core.heuristics import HeuristicConfig
from repro.core.model import MethodModel
from repro.core.pfg_builder import build_pfg
from repro.corpus.examples import figure5_sources
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import MethodRef, resolve_program


def main():
    program = resolve_program(
        [parse_compilation_unit(source) for source in figure5_sources()]
    )
    row = program.lookup_class("Row")
    copy_ref = MethodRef(row, row.find_method("copy")[0])

    pfg = build_pfg(program, copy_ref)
    print(pfg.describe())
    print()
    print("Graphviz DOT (paper Figure 6):")
    print(pfg.to_dot())
    print()

    model = MethodModel(program, pfg, HeuristicConfig()).build()
    result = model.solve()
    print(
        "Model: %d variables, %d factors; BP %s after %d sweeps"
        % (
            model.graph.variable_count,
            model.graph.factor_count,
            "converged" if result.converged else "stopped",
            result.iterations,
        )
    )
    print()
    print("Most likely permission kind per PFG node:")
    for node in pfg.nodes:
        variable = model.vars.kind(node)
        value, prob = result.most_likely(variable)
        state_text = ""
        state_var = model.vars.state(node)
        if state_var is not None:
            state, state_prob = result.most_likely(state_var)
            state_text = "  in %s (%.2f)" % (state, state_prob)
        print(
            "  [%2d] %-28s %-9s (%.2f)%s"
            % (node.node_id, node.label, value, prob, state_text)
        )


if __name__ == "__main__":
    main()
