#!/usr/bin/env python
"""Protocol mining + ANEK: the paper's §5 future-work combination.

The paper's related work "addressed the related but different problem of
protocol inference ... these approaches clearly complement our own, and
in the future we plan to investigate their combination."  This example
performs that combination end to end:

1. strip the Iterator API of its state protocol (keep only what a
   plain type signature gives you);
2. *mine* the protocol statically from how clients use the API —
   recovering hasNext() as the state test guarding next();
3. install the mined ``@States``/``@TrueIndicates`` specs on the API;
4. run ANEK + PLURAL as usual: the buggy unguarded call is flagged
   against a protocol nobody wrote by hand.

    python examples/protocol_mining.py
"""

from repro.core import infer_and_check
from repro.core.applier import apply_spec_to_method
from repro.corpus import CorpusSpec, generate_pmd_corpus
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import resolve_program
from repro.protomine import mine_protocol


def main():
    bundle = generate_pmd_corpus(CorpusSpec().scaled(0.1))
    program = resolve_program(
        [parse_compilation_unit(s) for s in bundle.all_sources()]
    )

    print("Step 1-2: mine the Iterator protocol from %d client classes"
          % (len(program.classes) - 5))
    mined = mine_protocol(program, "Iterator")
    print()
    print(mined.describe())
    print()

    print("Step 3: proposed protocol artifacts")
    print("  @States(\"%s\")" % mined.proposed_states_declaration())
    for name, spec in sorted(mined.proposed_specs().items()):
        print("  %-10s %s" % (name, spec))
    print()

    print("Step 4: sanity-check the mined protocol against the one the")
    print("API authors actually wrote (Figure 2):")
    iterator = program.lookup_class("Iterator")
    from repro.permissions.spec import spec_of_method

    declared_next = spec_of_method(iterator.find_method("next")[0])
    mined_next = mined.proposed_specs()["next"]
    print(
        "  declared next(): requires state %s   mined: requires state %s"
        % (declared_next.requires[0].state, mined_next.requires[0].state)
    )
    declared_test = spec_of_method(iterator.find_method("hasNext")[0])
    mined_test = mined.proposed_specs()["hasNext"]
    print(
        "  declared hasNext(): true->%s   mined: true->%s"
        % (declared_test.true_indicates, mined_test.true_indicates)
    )
    print()

    print("Step 5: strip the hand-written protocol, install the mined")
    print("one, and run ANEK + PLURAL against it:")
    from repro.core import AnekPipeline
    from repro.protomine import install_protocol, strip_protocol

    fresh = resolve_program(
        [parse_compilation_unit(s) for s in bundle.all_sources()]
    )
    stripped = strip_protocol(fresh, "Iterator")
    installed = install_protocol(fresh, mined)
    print(
        "  stripped %d hand-written annotations; installed %d mined specs"
        % (stripped, installed)
    )
    result = AnekPipeline().run_on_program(fresh)
    print("  PLURAL warnings under the mined protocol: %d" % len(result.warnings))
    for warning in result.warnings:
        print("    " + warning.format())


if __name__ == "__main__":
    main()
