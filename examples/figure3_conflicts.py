#!/usr/bin/env python
"""The paper's running example: inference under conflicting constraints.

Reproduces §1's scenario: the spreadsheet application of Figure 3 uses
``createColIter`` correctly in guarded loops, but ``testParseCSV`` calls
``next()`` on fresh iterators without checking ``hasNext()`` — producing
*conflicting* constraints on the wrapper's returned state (ALIVE vs
HASNEXT).  ANEK's probabilistic constraints let the evidence vote:
ALIVE wins, the wrapper gets ``unique(result) in ALIVE`` (unique thanks
to heuristic H3 on ``create*`` names), and PLURAL subsequently flags
exactly the unguarded calls.

    python examples/figure3_conflicts.py
"""

from repro.core import infer_and_check
from repro.corpus.examples import figure3_sources


def main():
    result = infer_and_check(figure3_sources())

    print("Specs inferred for the Figure 3 client:")
    for ref, spec in sorted(
        result.specs.items(), key=lambda kv: kv[0].qualified_name
    ):
        if spec.is_empty or ref.class_decl.name != "Row":
            continue
        print("  %-22s %s" % (ref.qualified_name, spec))
    print()

    wrapper = [
        spec
        for ref, spec in result.specs.items()
        if ref.qualified_name == "Row.createColIter"
    ][0]
    result_clause = [c for c in wrapper.ensures if c.target == "result"][0]
    print(
        "createColIter returns: %s(result) in %s"
        % (result_clause.kind, result_clause.state)
    )
    print(
        "-> the 'many guarded uses' evidence outweighed testParseCSV's"
        " HASNEXT demand, exactly as §1 describes; H3 chose unique."
    )
    print()

    print("PLURAL warnings on the inferred specs:")
    for warning in result.warnings:
        print("  " + warning.format())
    print(
        "\nAll warnings fall in testParseCSV: %s"
        % all(w.method == "Row.testParseCSV" for w in result.warnings)
    )


if __name__ == "__main__":
    main()
