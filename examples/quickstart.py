#!/usr/bin/env python
"""Quickstart: infer typestate specifications for an iterator client.

Runs the full ANEK pipeline (paper Figure 10) on a small program: parse,
build permission flow graphs, solve the probabilistic constraints, write
``@Perm`` annotations back, and verify the result with the PLURAL
checker.

    python examples/quickstart.py
"""

from repro.core import infer_and_check
from repro.corpus.iterator_api import ITERATOR_API_SOURCE, iterator_protocol_dot

CLIENT = """
class Ledger {
    @Perm("share")
    Collection<Integer> amounts;

    Ledger() {
        this.amounts = new ArrayList<Integer>();
    }

    Iterator<Integer> createAmountIter() {
        return amounts.iterator();
    }

    int total() {
        int sum = 0;
        Iterator<Integer> it = createAmountIter();
        while (it.hasNext()) {
            sum = sum + it.next();
        }
        return sum;
    }
}
"""


def main():
    print("The iterator protocol (paper Figure 1):")
    print(iterator_protocol_dot())
    print()

    result = infer_and_check([ITERATOR_API_SOURCE, CLIENT])

    print(result.describe_stages())
    print()
    print("Inferred specifications:")
    for ref, spec in sorted(
        result.specs.items(), key=lambda kv: kv[0].qualified_name
    ):
        if spec.is_empty or ref.class_decl.name != "Ledger":
            continue
        print("  %-28s %s" % (ref.qualified_name, spec))
    print()

    print("PLURAL warnings after inference: %d" % len(result.warnings))
    for warning in result.warnings:
        print("  " + warning.format())
    print()

    print("Annotated source (excerpt):")
    ledger_source = [
        source for source in result.annotated_sources if "class Ledger" in source
    ][0]
    for line in ledger_source.splitlines():
        print("  " + line)


if __name__ == "__main__":
    main()
