#!/usr/bin/env python
"""The PMD-scale experiment (paper §4.2, Tables 1, 2 and 4).

Generates the synthetic PMD corpus, runs all four Table 2 configurations
(Original, Bierhoff oracle, Anek, Anek Logical), and compares the
inferred specs with the hand-annotation oracle (Table 4).

By default a 1/10-scale corpus keeps the run under a minute; pass
``--full`` for the paper-scale corpus (463 classes, 3,120 methods,
38,483 lines; a few minutes) and ``--diff`` for the per-method spec
comparison behind Table 4.

    python examples/pmd_inference.py [--full] [--diff]
"""

import sys

from repro.corpus import CorpusSpec
from repro.reporting.experiments import PmdExperiment


def main():
    full = "--full" in sys.argv
    spec = CorpusSpec() if full else CorpusSpec().scaled(0.1)
    print(
        "Corpus: %d classes, %d methods, %d lines%s"
        % (
            spec.classes,
            spec.methods,
            spec.lines,
            " (paper scale)" if full else " (1/10 scale; --full for paper scale)",
        )
    )
    print()

    experiment = PmdExperiment(corpus_spec=spec)

    _, table1 = experiment.table1()
    print(table1.render())
    print()

    _, table2 = experiment.table2()
    print(table2.render())
    print()

    _, table4 = experiment.table4()
    print(table4.render())
    print()

    # The paper's closing observation: the remaining next() calls verify.
    from repro.reporting.coverage import coverage_report

    report = coverage_report(
        experiment._anek_result.program, experiment._anek_result.warnings
    )
    print(report.render())

    if "--diff" in sys.argv:
        from repro.corpus.oracle import oracle_specs
        from repro.reporting.specdiff import render_spec_diff

        inferred = {
            ref.qualified_name: spec
            for ref, spec in experiment._anek_result.specs.items()
            if not spec.is_empty
        }
        print()
        print(
            render_spec_diff(
                inferred, oracle_specs(experiment.bundle), include_same=False
            )
        )


if __name__ == "__main__":
    main()
