#!/usr/bin/env python
"""A second protocol: streams with a nested state hierarchy.

The iterator protocol of Figure 1 is flat; PLURAL's methodology supports
hierarchies.  This example checks and infers specs against:

    ALIVE ── OPEN ── READY | DRAINED
          └─ CLOSED

showing (a) the checker catching use-after-close / double-close /
unguarded reads, and (b) ANEK inferring ``unique(result)`` in OPEN for a
stream factory on a protocol it has never seen.

    python examples/stream_protocol.py
"""

from repro.core import infer_and_check
from repro.corpus.stream_api import (
    STREAM_CLIENT_BAD,
    STREAM_CLIENT_GOOD,
    stream_sources,
)
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import resolve_program
from repro.permissions.states import state_space_of_class
from repro.plural.checker import check_program


def main():
    program = resolve_program(
        [parse_compilation_unit(s) for s in stream_sources()]
    )
    space = state_space_of_class(program.lookup_class("Stream"))
    print("Stream protocol state hierarchy:")
    print(space.to_dot())
    print()

    print("Checking the well-behaved client:")
    good = resolve_program(
        [
            parse_compilation_unit(s)
            for s in stream_sources(STREAM_CLIENT_GOOD)
        ]
    )
    print("  warnings: %d" % len(check_program(good)))
    print()

    print("Checking the sloppy client:")
    bad = resolve_program(
        [parse_compilation_unit(s) for s in stream_sources(STREAM_CLIENT_BAD)]
    )
    for warning in check_program(bad):
        print("  " + warning.format())
    print()

    print("Inferring specs for a stream factory:")
    result = infer_and_check(
        stream_sources(
            """
            class LogManager {
                @Perm("share")
                FileSystem fs;
                Stream createLogStream() {
                    return fs.open("app.log");
                }
                int tail() {
                    int total = 0;
                    Stream s = createLogStream();
                    while (s.ready()) { total = total + s.read(); }
                    s.close();
                    return total;
                }
            }
            """
        )
    )
    for ref, spec in sorted(
        result.specs.items(), key=lambda kv: kv[0].qualified_name
    ):
        if spec.is_empty or ref.class_decl.name != "LogManager":
            continue
        print("  %-30s %s" % (ref.qualified_name, spec))
    print("  warnings after inference: %d" % len(result.warnings))


if __name__ == "__main__":
    main()
