"""Tests for verification-coverage reporting (the 167-of-170 view)."""

import pytest

from repro.core import AnekPipeline
from repro.corpus import CorpusSpec, generate_pmd_corpus
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import resolve_program
from repro.reporting.coverage import coverage_report


@pytest.fixture(scope="module")
def anek_run():
    bundle = generate_pmd_corpus(CorpusSpec().scaled(0.1))
    program = resolve_program(
        [parse_compilation_unit(s) for s in bundle.all_sources()]
    )
    result = AnekPipeline().run_on_program(program)
    return bundle, program, result


class TestCoverageReport:
    def test_next_call_accounting(self, anek_run):
        bundle, program, result = anek_run
        report = coverage_report(program, result.warnings)
        next_cov = report.method("Iterator.next")
        spec = bundle.spec
        expected_sites = (
            spec.guarded_direct
            + spec.wrapper_users
            + spec.param_consumers
            + spec.unguarded_direct
            + 1  # consumeFirst
        )
        assert next_cov.call_sites == expected_sites

    def test_unverified_sites_are_the_warned_ones(self, anek_run):
        bundle, program, result = anek_run
        report = coverage_report(program, result.warnings)
        next_cov = report.method("Iterator.next")
        # The 3 unguarded sites plus the consumeFirst miss.
        assert next_cov.warned_sites == bundle.spec.unguarded_direct + 1
        assert next_cov.verified_sites == (
            next_cov.call_sites - bundle.spec.unguarded_direct - 1
        )

    def test_verified_fraction_is_high(self, anek_run):
        _, program, result = anek_run
        report = coverage_report(program, result.warnings)
        # The paper: 167/170 ≈ 98% of next() calls verified.
        assert report.method("Iterator.next").verified_fraction > 0.8

    def test_overall_totals(self, anek_run):
        _, program, result = anek_run
        report = coverage_report(program, result.warnings)
        overall = report.overall()
        assert overall.call_sites >= report.method("Iterator.next").call_sites
        assert overall.warned_sites <= overall.call_sites

    def test_render_mentions_total(self, anek_run):
        _, program, result = anek_run
        report = coverage_report(program, result.warnings)
        text = report.render()
        assert "TOTAL" in text
        assert "Iterator.next" in text

    def test_explicit_method_filter(self, anek_run):
        _, program, result = anek_run
        report = coverage_report(
            program, result.warnings, protocol_methods={"Iterator.next"}
        )
        assert list(report.methods) == ["Iterator.next"]

    def test_empty_coverage_is_fully_verified(self):
        program = resolve_program(
            [parse_compilation_unit("class Empty { }")]
        )
        report = coverage_report(program, [])
        assert report.overall().verified_fraction == 1.0
