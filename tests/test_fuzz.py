"""Unit tests for the structured fuzzing subsystem.

Covers generator determinism and family shapes, the ddmin minimizer
(including the demonstrable-shrink contract on an injected failure), the
sentinel runner, a small end-to-end campaign, regression corpus
write/load round-trips, and the ``repro fuzz`` CLI.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.fuzz import (
    FAMILIES,
    CampaignResult,
    FuzzCase,
    ddmin,
    generate_case,
    minimize_source,
    replay_regressions,
    run_campaign,
    run_case,
)
from repro.fuzz.campaign import load_regression, write_regression
from repro.fuzz.sentinels import CaseReport


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_deterministic(self):
        for index in range(len(FAMILIES)):
            first = generate_case(3, index)
            second = generate_case(3, index)
            assert first == second

    def test_seed_changes_stream(self):
        assert generate_case(0, 0).sources != generate_case(1, 0).sources

    def test_family_rotation(self):
        labels = [generate_case(0, index).family for index in range(14)]
        assert tuple(labels[: len(FAMILIES)]) == FAMILIES
        assert labels[len(FAMILIES) :] == labels[: len(FAMILIES)]

    def test_family_shapes(self):
        by_family = {
            generate_case(5, index).family: generate_case(5, index)
            for index in range(len(FAMILIES))
        }
        assert "class" in by_family["valid"].sources[0]
        deep = by_family["deep-nesting"].sources[0]
        assert deep.count("(") > 50 or deep.count("{") > 50
        assert by_family["giant-method"].sources[0].count(";") > 250
        assert by_family["dense-callgraph"].sources[0].count("this.m") >= 10
        widget = by_family["many-states"].sources[0]
        assert "@States" in widget and widget.count("S6") >= 1
        assert len(by_family["many-states"].sources) == 2

    def test_payload_round_trip(self):
        case = generate_case(2, 4)
        assert FuzzCase.from_payload(case.to_payload()) == case

    def test_pipeline_sources_prepend_api(self):
        case = generate_case(0, 0)
        assert case.include_api
        assert len(case.pipeline_sources()) == len(case.sources) + 1


# ---------------------------------------------------------------------------
# Minimizer
# ---------------------------------------------------------------------------


class TestMinimizer:
    def test_ddmin_finds_single_culprit(self):
        items = list(range(50))
        result = ddmin(items, lambda kept: 37 in kept)
        assert result == [37]

    def test_ddmin_multi_culprit(self):
        items = list(range(40))
        result = ddmin(items, lambda kept: 7 in kept and 31 in kept)
        assert sorted(result) == [7, 31]

    def test_ddmin_budget_bounds_calls(self):
        calls = [0]

        def test(kept):
            calls[0] += 1
            return 5 in kept

        ddmin(list(range(1000)), test, budget=30)
        assert calls[0] <= 30

    def test_minimize_source_shrinks_injected_failure(self):
        # The demonstrable-shrink contract: a "failure" that needs only
        # one marker token must shrink to (nearly) just that marker.
        lines = ["int a%d = %d;\n" % (i, i) for i in range(40)]
        lines[23] = "BOOM();\n"
        source = "".join(lines)
        minimized = minimize_source(source, lambda text: "BOOM" in text)
        assert "BOOM" in minimized
        assert len(minimized) < len(source) // 10
        assert minimized.strip() == "BOOM"

    def test_minimize_source_intra_line(self):
        # A one-line program still shrinks via the char-chunk passes.
        source = "x" * 300 + "NEEDLE" + "y" * 300
        minimized = minimize_source(source, lambda text: "NEEDLE" in text)
        assert minimized == "NEEDLE"

    def test_minimize_source_requires_reproducing_input(self):
        source = "hello world"
        assert minimize_source(source, lambda text: False) == source


# ---------------------------------------------------------------------------
# Sentinels
# ---------------------------------------------------------------------------


class TestSentinels:
    def test_valid_case_survives(self):
        report = run_case(generate_case(0, 0), differential=False)
        assert report.ok
        assert report.survivor

    def test_deep_nesting_is_quarantined_clean(self):
        report = run_case(generate_case(0, 1), differential=False)
        assert report.ok
        assert not report.survivor
        assert "resource-limit" in report.dispositions

    def test_differentials_run_on_small_survivors(self):
        report = run_case(generate_case(0, 0), differential=True)
        assert report.ok

    def test_report_shape(self):
        report = run_case(generate_case(0, 6), differential=False)
        assert isinstance(report, CaseReport)
        assert report.seconds >= 0.0
        assert isinstance(report.violations, list)


# ---------------------------------------------------------------------------
# Campaign + regression corpus
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_small_campaign_clean(self, tmp_path):
        result = run_campaign(
            0, len(FAMILIES), regressions_dir=str(tmp_path / "regressions")
        )
        assert isinstance(result, CampaignResult)
        assert result.ok, result.violations
        assert result.cases_run == len(FAMILIES)
        assert set(result.by_family) == set(FAMILIES)
        assert result.survivors >= 1
        assert not result.regressions_written
        assert "seed=0" in result.summary_line()

    def test_regression_write_load_round_trip(self, tmp_path):
        case = generate_case(1, 5)
        report = CaseReport(case=case, violations=["no-crash: injected"])
        paths = write_regression(str(tmp_path), case, report, 1234)
        assert sorted(path.rsplit(".", 1)[1] for path in paths) == [
            "java",
            "json",
        ]
        loaded = load_regression(paths[0])
        assert loaded == case
        payload = json.loads(open(paths[0]).read())
        assert payload["violations"] == ["no-crash: injected"]
        assert payload["original_chars"] == 1234

    def test_replay_empty_corpus(self, tmp_path):
        assert replay_regressions(str(tmp_path / "missing")) == []
        empty = tmp_path / "empty"
        empty.mkdir()
        assert replay_regressions(str(empty)) == []

    def test_replay_runs_stored_case(self, tmp_path):
        case = generate_case(0, 0)
        write_regression(
            str(tmp_path), case, CaseReport(case=case, violations=["x: y"]), 1
        )
        replays = replay_regressions(str(tmp_path))
        assert len(replays) == 1
        path, report = replays[0]
        assert path.endswith(".json")
        assert report.ok  # the stored case no longer violates


class TestFuzzCli:
    def test_campaign_exit_zero(self, tmp_path, capsys):
        code = cli_main(
            [
                "fuzz",
                "--seed",
                "0",
                "--budget",
                "2",
                "--regressions-dir",
                str(tmp_path / "regressions"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz: seed=0 budget=2 ran=2" in out

    def test_replay_exit_zero_when_empty(self, tmp_path, capsys):
        code = cli_main(
            ["fuzz", "--replay", "--regressions-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed 0 regression(s)" in out

    def test_budget_validation(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fuzz", "--budget", "0"])
        assert excinfo.value.code == 3
        capsys.readouterr()
