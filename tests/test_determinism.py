"""Determinism guarantees of the pipeline — satellite of the parallel PR.

Three layers of protection:

* two runs in the same process produce byte-identical annotated sources
  and identical solve counts (no hidden dict/set iteration order in the
  hot path);
* two *subprocesses* with different ``PYTHONHASHSEED`` values agree —
  this is the test that caught the ``set``-iteration joins in
  ``repro.analysis.alias`` and ``repro.plural.context``, which are now
  insertion-ordered;
* a lint-style guard keeps wall-clock code on ``time.perf_counter()``
  (the monotonic high-resolution clock) — ``time.time()`` is banned from
  the timing-critical modules.
"""

import os
import subprocess
import sys

import pytest

from repro.core import AnekPipeline, InferenceSettings
from repro.corpus.examples import figure3_sources
from repro.corpus.iterator_api import ITERATOR_API_SOURCE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CLIENT = """
class Tally {
    @Perm("share")
    Collection<Integer> values;

    Iterator<Integer> freshIter() {
        return values.iterator();
    }

    int count() {
        int n = 0;
        Iterator<Integer> it = freshIter();
        while (it.hasNext()) {
            it.next();
            n = n + 1;
        }
        return n;
    }
}
"""


def run_pipeline(executor="worklist"):
    pipeline = AnekPipeline(settings=InferenceSettings(executor=executor))
    return pipeline.run_on_sources([ITERATOR_API_SOURCE, CLIENT])


@pytest.mark.parametrize("executor", ["worklist", "serial", "process"])
def test_repeated_runs_are_byte_identical(executor):
    first = run_pipeline(executor)
    second = run_pipeline(executor)
    assert first.annotated_sources == second.annotated_sources
    assert first.inference_stats.solves == second.inference_stats.solves
    assert (
        first.inference_stats.constraint_counts
        == second.inference_stats.constraint_counts
    )


def test_figure3_runs_are_byte_identical():
    pipeline_a = AnekPipeline()
    pipeline_b = AnekPipeline()
    first = pipeline_a.run_on_sources(figure3_sources())
    second = pipeline_b.run_on_sources(figure3_sources())
    assert first.annotated_sources == second.annotated_sources
    assert first.inference_stats.solves == second.inference_stats.solves


_SUBPROCESS_SCRIPT = """
import sys
from repro.core import AnekPipeline, InferenceSettings
from repro.corpus.examples import figure3_sources

pipeline = AnekPipeline(settings=InferenceSettings(executor=%r))
result = pipeline.run_on_sources(figure3_sources())
for source in result.annotated_sources:
    sys.stdout.write(source)
    sys.stdout.write("\\n=== file boundary ===\\n")
sys.stdout.write("solves=%%d\\n" %% result.inference_stats.solves)
"""


def _run_with_hash_seed(seed, executor):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    completed = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT % executor],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
        check=True,
    )
    return completed.stdout


@pytest.mark.parametrize("executor", ["worklist", "serial"])
def test_output_is_hash_seed_independent(executor):
    """Different string-hash seeds (fresh interpreters) must not change
    the annotated output — set/dict iteration cannot leak into results."""
    first = _run_with_hash_seed(1, executor)
    second = _run_with_hash_seed(2, executor)
    assert first == second
    assert "solves=" in first


TIMING_CRITICAL_SOURCES = [
    "src/repro/core/infer.py",
    "src/repro/core/parallel.py",
    "src/repro/core/pipeline.py",
    "src/repro/reporting/experiments.py",
    "benchmarks/conftest.py",
]


@pytest.mark.parametrize("relative_path", TIMING_CRITICAL_SOURCES)
def test_no_wall_clock_time_in_timing_code(relative_path):
    """Elapsed-time measurement must use time.perf_counter(), which is
    monotonic and high-resolution; time.time() can go backwards under
    NTP adjustment and has platform-dependent granularity."""
    path = os.path.join(REPO_ROOT, relative_path)
    with open(path) as handle:
        text = handle.read()
    assert "time.time(" not in text, (
        "%s uses time.time(); use time.perf_counter() for durations"
        % relative_path
    )
