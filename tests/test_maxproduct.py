"""Tests for max-product BP (MAP view of the spec space)."""

import numpy as np
import pytest

from repro.factorgraph import FactorGraph, soft_equality
from repro.factorgraph.exact import map_assignment
from repro.factorgraph.sumproduct import run_max_product, run_sum_product
from repro.factorgraph.variables import make_prior

DOMAIN = ("u", "f", "p")


def chain_graph(head_weights):
    graph = FactorGraph()
    head = graph.add_variable(
        "x0", DOMAIN, prior=make_prior(DOMAIN, head_weights)
    )
    mid = graph.add_variable("x1", DOMAIN)
    tail = graph.add_variable("x2", DOMAIN)
    graph.add_factor(soft_equality("a", head, mid, 0.9))
    graph.add_factor(soft_equality("b", mid, tail, 0.9))
    return graph


class TestMaxProduct:
    def test_argmax_matches_exact_map_on_tree(self):
        graph = chain_graph({"u": 6, "f": 3, "p": 1})
        result = run_max_product(graph, max_iters=100)
        exact_map, _ = map_assignment(graph)
        for name, variable in graph.variables.items():
            assert result.most_likely(variable)[0] == exact_map[name]

    def test_max_marginals_are_distributions(self):
        graph = chain_graph({"u": 2, "f": 2, "p": 1})
        result = run_max_product(graph)
        for vector in result.marginals.values():
            assert np.isclose(vector.sum(), 1.0)
            assert (vector >= 0).all()

    def test_differs_from_sum_product_where_it_should(self):
        # A case where marginal argmax and MAP can diverge: two heads
        # pulling a shared tail in different directions.
        graph = FactorGraph()
        a = graph.add_variable("a", DOMAIN, prior=make_prior(DOMAIN, {"u": 9, "f": 1}))
        b = graph.add_variable("b", DOMAIN, prior=make_prior(DOMAIN, {"f": 9, "u": 1}))
        shared = graph.add_variable("s", DOMAIN)
        graph.add_factor(soft_equality("as", a, shared, 0.8))
        graph.add_factor(soft_equality("bs", b, shared, 0.8))
        max_result = run_max_product(graph, max_iters=100)
        sum_result = run_sum_product(graph, max_iters=100)
        # Both must be coherent; the MAP pick must match enumeration.
        exact_map, _ = map_assignment(graph)
        assert max_result.most_likely(shared)[0] == exact_map["s"]
        assert np.isclose(sum_result.marginals["s"].sum(), 1.0)

    def test_map_extraction_on_anek_model(self):
        """MAP and marginal extraction agree on the clean wrapper case."""
        from repro.core.heuristics import HeuristicConfig
        from repro.core.model import MethodModel
        from repro.core.pfg_builder import build_pfg
        from tests.conftest import build_program, method_ref

        program = build_program(
            "class T { @Perm(\"share\") Collection<Integer> items;"
            " Iterator<Integer> createIt() { return items.iterator(); } }"
        )
        ref = method_ref(program, "T", "createIt")
        model = MethodModel(
            program, build_pfg(program, ref), HeuristicConfig()
        ).build()
        sum_result = run_sum_product(model.graph, max_iters=50)
        max_result = run_max_product(model.graph, max_iters=50)
        result_var = model.vars.kind(model.pfg.result_node)
        assert (
            sum_result.most_likely(result_var)[0]
            == max_result.most_likely(result_var)[0]
            == "unique"
        )
