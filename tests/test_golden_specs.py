"""Golden regression corpus for the example programs.

Each golden file under ``tests/golden/`` records, line by line, every
non-empty spec the pipeline infers for one example program (in sorted
method order) followed by the PLURAL warnings on the annotated result.
Any change to the inference numerics, heuristics, or extraction shows up
here as a diff against a reviewed snapshot.

To bless intentional changes::

    PYTHONPATH=src python -m pytest tests/test_golden_specs.py --update-golden
"""

import os

import pytest

from repro.core import infer_and_check
from repro.corpus.examples import figure3_sources
from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.corpus.stream_api import stream_sources

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

QUICKSTART_CLIENT = """
class Ledger {
    @Perm("share")
    Collection<Integer> amounts;

    Ledger() {
        this.amounts = new ArrayList<Integer>();
    }

    Iterator<Integer> createAmountIter() {
        return amounts.iterator();
    }

    int total() {
        int sum = 0;
        Iterator<Integer> it = createAmountIter();
        while (it.hasNext()) {
            sum = sum + it.next();
        }
        return sum;
    }
}
"""

STREAM_CLIENT = """
class LogManager {
    @Perm("share")
    FileSystem fs;
    Stream createLogStream() {
        return fs.open("app.log");
    }
    int tail() {
        int total = 0;
        Stream s = createLogStream();
        while (s.ready()) { total = total + s.read(); }
        s.close();
        return total;
    }
}
"""

PROGRAMS = {
    "quickstart": lambda: [ITERATOR_API_SOURCE, QUICKSTART_CLIENT],
    "stream_protocol": lambda: stream_sources(STREAM_CLIENT),
    "figure3_conflicts": figure3_sources,
}


def render_spec(spec):
    parts = []
    for name, arguments in spec.to_annotations():
        rendered = ", ".join(
            '%s="%s"' % (key, value)
            for key, value in sorted(arguments.items())
        )
        parts.append("@%s(%s)" % (name, rendered))
    return " ".join(parts)


def snapshot(sources):
    """The canonical golden text for one program."""
    result = infer_and_check(sources)
    lines = []
    for ref, spec in sorted(
        result.specs.items(), key=lambda kv: kv[0].qualified_name
    ):
        if spec.is_empty:
            continue
        lines.append("%-36s %s" % (ref.qualified_name, render_spec(spec)))
    lines.append("")
    lines.append("warnings: %d" % len(result.warnings))
    for warning in result.warnings:
        lines.append("  " + warning.format())
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_golden_specs(name, update_golden):
    actual = snapshot(PROGRAMS[name]())
    path = os.path.join(GOLDEN_DIR, name + ".txt")
    if update_golden:
        with open(path, "w") as handle:
            handle.write(actual)
        return
    assert os.path.exists(path), (
        "missing golden file %s; run with --update-golden to create it"
        % path
    )
    with open(path) as handle:
        expected = handle.read()
    assert actual == expected, (
        "golden mismatch for %s; if the change is intentional, rerun with "
        "--update-golden and review the diff" % name
    )
