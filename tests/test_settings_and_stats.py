"""Tests for inference settings, stats bookkeeping, and small helpers."""

import pytest

from repro.core import AnekInference, InferenceSettings
from repro.core.infer import InferenceStats
from repro.corpus.iterator_api import iterator_protocol_dot
from tests.conftest import build_program


class TestInferenceSettings:
    def test_default_resolves_to_three_passes(self):
        settings = InferenceSettings()
        assert settings.resolved_max_iters(10) == 30

    def test_explicit_cap_wins(self):
        settings = InferenceSettings(max_worklist_iters=7)
        assert settings.resolved_max_iters(100) == 7

    def test_zero_methods_still_positive(self):
        settings = InferenceSettings()
        assert settings.resolved_max_iters(0) >= 1

    def test_threshold_range_used_by_extraction(self):
        # The paper: t in [0.5, 1).  Values outside still behave sanely
        # (extraction simply becomes all-or-nothing).
        program = build_program(
            "class T { int id(int x) { return x; } }", include_api=False
        )
        inference = AnekInference(
            program, settings=InferenceSettings(threshold=0.99)
        )
        specs = inference.extract_specs()
        assert all(spec.is_empty for spec in specs.values())


class TestInferenceStats:
    def test_stats_accumulate(self):
        program = build_program(
            """
            class T {
                @Perm("share") Collection<Integer> items;
                Iterator<Integer> createIt() { return items.iterator(); }
                boolean peek() { return createIt().hasNext(); }
            }
            """
        )
        inference = AnekInference(program)
        inference.run()
        stats = inference.stats
        assert stats.methods >= 2
        assert stats.solves >= stats.methods
        assert stats.pfg_nodes > 0
        assert stats.factors > 0
        assert stats.elapsed_seconds > 0

    def test_fresh_stats_are_zero(self):
        stats = InferenceStats()
        assert stats.methods == 0
        assert stats.constraint_counts == {}


class TestSmallHelpers:
    def test_iterator_protocol_dot(self):
        dot = iterator_protocol_dot()
        assert "ALIVE -> HASNEXT" in dot

    def test_summary_store_counts(self):
        from repro.core.summaries import SummaryStore, TargetMarginal

        store = SummaryStore()
        assert store.evidence_count() == 0
        store.deposit_evidence(
            "callee", "pre", "it", ("site", 0), TargetMarginal(kind={"pure": 1.0})
        )
        assert store.evidence_count() == 1

    def test_pipeline_preannotated_tracking(self):
        from repro.core import AnekPipeline
        from repro.corpus.examples import figure3_sources

        result = AnekPipeline(run_checker=False).run_on_sources(
            figure3_sources()
        )
        # Only inferred (body-carrying) methods are tracked; the API
        # implementation class is pre-annotated, the client is not.
        assert "ListIterator.next" in result.preannotated_methods
        assert "Row.copy" not in result.preannotated_methods
