"""Unit tests for the resilience layer and its satellites.

Covers the failure ledger, the policy, the deterministic fault-injection
plan machinery, CLI exit codes and argument validation, the
malformed-input corpus smoke test, and cache schema-validation
quarantine.  The end-to-end fault differential harness lives in
``tests/test_fault_injection.py``.
"""

import io
import json
import pickle

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.pipeline import AnekPipeline, infer_and_check
from repro.corpus.examples import FIGURE3_CLIENT
from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.resilience.faults import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    clear_fault_plan,
    install_fault_plan,
    maybe_fault,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import (
    FailureRecord,
    FailureReport,
    record_from_exception,
)

from tests.conftest import build_program


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends without an installed fault plan."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_fault_plan()
    yield
    clear_fault_plan()


# ---------------------------------------------------------------------------
# The failure ledger
# ---------------------------------------------------------------------------


class TestFailureReport:
    def test_empty_report_is_clean(self):
        report = FailureReport()
        assert report.is_clean
        assert not report
        assert len(report) == 0
        assert not report.has_degradation
        assert "no failures" in report.summary_line()

    def test_record_from_exception(self):
        record = record_from_exception(
            "solve", "A.m#0", ValueError("boom"), "recovered", retries=2
        )
        assert record.error == "ValueError"
        assert record.retries == 2
        assert "recovered" in record.format()
        assert "2 retries" in record.format()

    def test_recovered_only_is_not_degraded(self):
        report = FailureReport()
        report.record("solve", "A.m#0", RuntimeError("x"), "recovered")
        report.record("worker", "chunk", RuntimeError("x"), "worker-restarted")
        assert report
        assert not report.has_degradation
        assert "all failures recovered" in report.summary_line()

    def test_quarantine_is_degraded(self):
        report = FailureReport()
        report.record("parse", "unit:1", RuntimeError("x"), "unit-quarantined")
        assert report.has_degradation
        assert report.degraded() == report.records
        assert "completed with quarantines" in report.summary_line()

    def test_by_stage_and_payload(self):
        report = FailureReport()
        report.record("parse", "unit:0", ValueError("a"), "unit-quarantined")
        report.record("solve", "A.m#0", ValueError("b"), "recovered")
        report.record("solve", "B.n#1", ValueError("c"), "degraded-prior-only")
        assert report.by_stage() == {"parse": 1, "solve": 2}
        payload = json.loads(report.to_json())
        assert payload["degraded"] is True
        assert len(payload["failures"]) == 3
        assert payload["failures"][0]["stage"] == "parse"

    def test_records_pickle(self):
        record = FailureRecord(
            stage="solve",
            key="A.m#0",
            error="ValueError",
            message="x",
            disposition="recovered",
        )
        assert pickle.loads(pickle.dumps(record)) == record


# ---------------------------------------------------------------------------
# The policy
# ---------------------------------------------------------------------------


class TestResiliencePolicy:
    def test_defaults_enabled(self):
        policy = ResiliencePolicy()
        assert policy.enabled
        assert policy.solve_retries >= 1

    def test_disabled(self):
        assert not ResiliencePolicy.disabled().enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(solve_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(retry_damping=1.5)
        with pytest.raises(ValueError):
            ResiliencePolicy(solve_deadline=-0.1)

    def test_retry_damping_escalates_and_caps(self):
        policy = ResiliencePolicy(solve_retries=5, retry_damping=0.5)
        values = [policy.retry_damping_for(i, 0.2) for i in range(1, 6)]
        assert values == sorted(values)
        assert all(0.5 <= v <= 0.9 for v in values)

    def test_settings_reject_bad_policy(self):
        from repro.core.infer import InferenceSettings

        with pytest.raises(ValueError):
            InferenceSettings(policy="aggressive")


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(stage="nope", key="")
        with pytest.raises(ValueError):
            FaultSpec(stage="solve", key="", kind="explode")

    def test_no_plan_is_noop(self):
        assert maybe_fault("solve", "anything") is None

    def test_raise_kind_and_count_burnout(self):
        install_fault_plan([{"stage": "solve", "key": "A.m", "kind": "raise"}])
        with pytest.raises(InjectedFault):
            maybe_fault("solve", "A.m#0")
        # count=1 burnt out: same site no longer fires.
        assert maybe_fault("solve", "A.m#0") is None

    def test_substring_and_stage_matching(self):
        plan = install_fault_plan(
            [{"stage": "solve", "key": "B.n", "kind": "nan", "count": -1}]
        )
        assert maybe_fault("pfg", "B.n#0") is None  # wrong stage
        assert maybe_fault("solve", "A.m#0") is None  # wrong key
        assert maybe_fault("solve", "B.n#0") == "nan"
        assert maybe_fault("solve", "B.n#0") == "nan"  # unlimited
        assert plan.fired == [
            ("solve", "B.n#0", "nan"),
            ("solve", "B.n#0", "nan"),
        ]

    def test_env_roundtrip(self, monkeypatch):
        plan = FaultPlan(
            [FaultSpec(stage="parse", key="unit:1", kind="raise")]
        )
        monkeypatch.setenv(ENV_VAR, plan.env()[ENV_VAR])
        clear_fault_plan()  # force the lazy env parse
        with pytest.raises(InjectedFault):
            maybe_fault("parse", "unit:1")

    def test_marker_is_once_only_across_plans(self, tmp_path):
        marker = str(tmp_path / "fired.marker")
        spec = {"stage": "solve", "key": "", "kind": "raise", "count": -1,
                "marker": marker}
        install_fault_plan([spec])
        with pytest.raises(InjectedFault):
            maybe_fault("solve", "X.y#0")
        # A fresh plan (a forked worker's copy) sees the claimed marker.
        install_fault_plan([spec])
        assert maybe_fault("solve", "X.y#0") is None


# ---------------------------------------------------------------------------
# Malformed-input corpus: quarantine, never crash
# ---------------------------------------------------------------------------

MALFORMED_SOURCES = [
    "",  # empty file
    "class Truncated { void f() {",  # truncated body
    "class Comment { } /* unterminated",  # unterminated block comment
    'class Str { String s = "unterminated; }',  # unterminated string
    "☃ class Snowman { }",  # stray unicode at top level
    "class A { void f( { if } }",  # garbled parameter list
]


class TestMalformedCorpus:
    def _specs(self, result):
        return {
            ref.qualified_name: str(spec)
            for ref, spec in result.specs.items()
            if not spec.is_empty
        }

    def test_malformed_units_quarantined_not_fatal(self):
        good = [ITERATOR_API_SOURCE, FIGURE3_CLIENT]
        clean = infer_and_check(good)
        assert clean.failures.is_clean
        mixed = infer_and_check(good + MALFORMED_SOURCES)
        # The run completed, quarantining only the malformed units...
        assert mixed.degraded
        stages = {record.stage for record in mixed.failures}
        assert stages <= {"parse", "resolve"}
        quarantined_keys = {record.key for record in mixed.failures}
        expected = {"unit:%d" % (len(good) + i)
                    for i in range(len(MALFORMED_SOURCES))}
        # Every quarantined unit is one of the malformed ones (some
        # malformed sources may legitimately parse to empty units).
        assert quarantined_keys <= expected
        assert len(quarantined_keys) >= 3
        # ...and the surviving units' specs are unchanged.
        assert self._specs(mixed) == self._specs(clean)

    def test_no_resilience_raises_on_malformed(self):
        from repro.core.infer import InferenceSettings

        pipeline = AnekPipeline(
            settings=InferenceSettings(policy=ResiliencePolicy.disabled())
        )
        with pytest.raises(Exception):
            pipeline.run_on_sources(
                [ITERATOR_API_SOURCE, "class Broken { /* nope"]
            )


# ---------------------------------------------------------------------------
# CLI exit codes, validation, --fail-report
# ---------------------------------------------------------------------------


class TestCliResilience:
    @pytest.fixture
    def demo_file(self, tmp_path):
        path = tmp_path / "Demo.java"
        path.write_text(
            """
class Demo {
    int total(java.util.List items) {
        Iterator it = items.iterator();
        int n = 0;
        while (it.hasNext()) { it.next(); n = n + 1; }
        return n;
    }
}
"""
        )
        return str(path)

    @pytest.fixture
    def broken_file(self, tmp_path):
        path = tmp_path / "Broken.java"
        path.write_text("class Broken { void f( { /* nope")
        return str(path)

    def test_clean_run_exits_zero(self, demo_file):
        out = io.StringIO()
        assert cli_main(["infer", demo_file, "--no-cache"], out) == 0

    def test_quarantined_run_exits_two(self, demo_file, broken_file):
        out = io.StringIO()
        code = cli_main(
            ["infer", demo_file, broken_file, "--no-cache"], out
        )
        assert code == 2
        assert "completed with quarantines" in out.getvalue()

    def test_fail_report_json(self, demo_file, broken_file, tmp_path):
        report_path = tmp_path / "failures.json"
        code = cli_main(
            ["infer", demo_file, broken_file, "--no-cache",
             "--fail-report", str(report_path)],
            io.StringIO(),
        )
        assert code == 2
        payload = json.loads(report_path.read_text())
        assert payload["degraded"] is True
        assert payload["by_stage"] == {"parse": 1}
        (record,) = payload["failures"]
        assert record["disposition"] == "unit-quarantined"
        assert record["key"] == "unit:2"  # API unit is 0, demo is 1

    def test_usage_errors_exit_three(self, demo_file):
        for argv in (
            ["infer", demo_file, "--jobs", "0"],
            ["infer", demo_file, "--jobs", "-2"],
            ["infer", demo_file, "--threshold", "0.4"],
            ["infer", demo_file, "--threshold", "1.0"],
            ["infer", demo_file, "--max-iters", "0"],
            ["infer", demo_file, "--solve-retries", "-1"],
            ["infer", demo_file, "--worker-timeout", "-5"],
        ):
            with pytest.raises(SystemExit) as exc:
                cli_main(argv, io.StringIO())
            assert exc.value.code == 3

    def test_fatal_error_exits_four(self, capsys):
        code = cli_main(
            ["infer", "/nonexistent/Missing.java", "--no-cache"],
            io.StringIO(),
        )
        assert code == 4
        assert "fatal" in capsys.readouterr().err

    def test_debug_reraises(self):
        with pytest.raises(FileNotFoundError):
            cli_main(
                ["--debug", "infer", "/nonexistent/Missing.java",
                 "--no-cache"],
                io.StringIO(),
            )

    def test_no_resilience_makes_parse_errors_fatal(
        self, demo_file, broken_file, capsys
    ):
        code = cli_main(
            ["infer", demo_file, broken_file, "--no-cache",
             "--no-resilience"],
            io.StringIO(),
        )
        assert code == 4
        assert "fatal" in capsys.readouterr().err

    def test_env_fault_hook(self, demo_file, monkeypatch):
        plan = FaultPlan(
            [FaultSpec(stage="parse", key="unit:1", kind="raise")]
        )
        monkeypatch.setenv(ENV_VAR, plan.env()[ENV_VAR])
        out = io.StringIO()
        code = cli_main(["infer", demo_file, "--no-cache"], out)
        assert code == 2
        assert "unit:1" in out.getvalue()


# ---------------------------------------------------------------------------
# Cache hardening: schema-invalid entries are quarantined
# ---------------------------------------------------------------------------


class TestCacheSchemaValidation:
    def _run(self, cache, sources):
        pipeline = AnekPipeline(
            run_checker=False, apply_annotations=False, cache=cache
        )
        return pipeline.run_on_sources(sources)

    def _entry_paths(self, cache_dir):
        import os

        found = []
        for root, _dirs, files in os.walk(str(cache_dir / "objects")):
            for name in files:
                if name.endswith(".pkl"):
                    found.append(os.path.join(root, name))
        return sorted(found)

    def test_schema_invalid_entries_quarantined(self, tmp_path):
        from repro.cache import AnalysisCache

        cache_dir = tmp_path / "cache"
        sources = [ITERATOR_API_SOURCE, FIGURE3_CLIENT]
        clean = self._run(AnalysisCache(cache_dir=str(cache_dir)), sources)

        # Garble every entry into a *valid pickle* of the wrong shape:
        # deserialization succeeds, schema validation must catch it.
        paths = self._entry_paths(cache_dir)
        assert paths
        for path in paths:
            with open(path, "wb") as handle:
                pickle.dump({"wrong": "shape"}, handle)

        cache = AnalysisCache(cache_dir=str(cache_dir))
        with pytest.warns(RuntimeWarning, match="schema-invalid"):
            reran = self._run(cache, sources)
        assert cache.stats.schema_invalid > 0
        # These were NOT pickle-corrupt: the legacy counter stays put
        # (the manifest is JSON and is tracked separately from entries).
        assert cache.stats.corrupt_entries == 0
        # The run silently fell back to a cold build: same output.
        clean_specs = {
            ref.qualified_name: str(spec) for ref, spec in clean.specs.items()
        }
        reran_specs = {
            ref.qualified_name: str(spec) for ref, spec in reran.specs.items()
        }
        assert reran_specs == clean_specs
        # Quarantine deleted + resaved the entries: a third run hits.
        cache3 = AnalysisCache(cache_dir=str(cache_dir))
        self._run(cache3, sources)
        assert cache3.stats.schema_invalid == 0
        assert cache3.stats.hits() > 0

    def test_cache_stats_describe_mentions_schema_counter(self):
        from repro.cache.manager import CacheStats

        stats = CacheStats(schema_invalid=3)
        assert "schema-invalid 3" in stats.describe()
