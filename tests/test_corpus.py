"""Tests for the synthetic corpus generator and oracle."""

import pytest

from repro.corpus import CorpusSpec, generate_pmd_corpus
from repro.corpus.generator import (
    generate_branchy_program,
    generate_inlined_program,
)
from repro.corpus.oracle import (
    apply_oracle,
    oracle_annotation_count,
    oracle_specs,
)
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import resolve_program
from repro.plural.checker import check_program


@pytest.fixture(scope="module")
def small_bundle():
    return generate_pmd_corpus(CorpusSpec().scaled(0.08))


@pytest.fixture(scope="module")
def small_program(small_bundle):
    return resolve_program(
        [parse_compilation_unit(s) for s in small_bundle.all_sources()]
    )


class TestGeneratorDeterminism:
    def test_same_spec_same_output(self):
        spec = CorpusSpec().scaled(0.05)
        first = generate_pmd_corpus(spec)
        second = generate_pmd_corpus(spec)
        assert first.sources == second.sources

    def test_line_count_matches_spec(self, small_bundle):
        assert small_bundle.line_count() == small_bundle.spec.lines

    def test_full_spec_matches_table1(self):
        spec = CorpusSpec()
        assert spec.lines == 38483
        assert spec.classes == 463
        assert spec.methods == 3120
        # next() call accounting: guarded + wrapper users + param
        # consumers + unguarded + consumeFirst = 170.
        total = (
            spec.guarded_direct
            + spec.wrapper_users
            + spec.param_consumers
            + spec.unguarded_direct
            + 1
        )
        assert total == 170

    def test_registry_covers_patterns(self, small_bundle):
        tags = set(small_bundle.registry.values())
        for expected in (
            "wrapper",
            "guarded",
            "unguarded",
            "wrapper-user",
            "param-consumer",
            "consume-first",
            "conditional-caller",
            "misleading-setter",
            "state-test-override",
            "filler",
        ):
            assert expected in tags


class TestGeneratedCodeParses:
    def test_all_sources_parse_and_resolve(self, small_program):
        assert small_program.lookup_class("Iterator") is not None
        assert small_program.lookup_class("Helper") is not None

    def test_class_count_matches_spec(self, small_bundle, small_program):
        api_classes = 5  # Iterator, Iterable, Collection, ListIterator, ArrayList
        assert (
            len(small_program.classes) - api_classes
            == small_bundle.spec.classes
        )

    def test_method_count_matches_spec(self, small_bundle, small_program):
        client_methods = [
            ref
            for ref in small_program.all_methods()
            if ref.class_decl.name
            not in ("Iterator", "Iterable", "Collection", "ListIterator", "ArrayList")
        ]
        assert len(client_methods) == small_bundle.spec.methods

    def test_helper_class_resolves_consume_first(self, small_program):
        ref = small_program.resolve_method("Helper", "consumeFirst", 1)
        assert ref is not None


class TestWarningAccounting:
    def test_original_warning_count(self, small_bundle, small_program):
        warnings = check_program(small_program)
        spec = small_bundle.spec
        expected = (
            spec.unguarded_direct
            + 2 * spec.wrapper_users
            + 2 * spec.param_consumers
            + 2  # consumeFirst body
            + spec.misleading_setters  # unguarded hasNext probes
        )
        assert len(warnings) == expected

    def test_oracle_eliminates_all_but_false_positives(self, small_bundle):
        program = resolve_program(
            [parse_compilation_unit(s) for s in small_bundle.all_sources()]
        )
        apply_oracle(program, small_bundle)
        warnings = check_program(program)
        assert len(warnings) == small_bundle.spec.unguarded_direct
        assert all(w.kind == "wrong-state" for w in warnings)


class TestOracle:
    def test_oracle_covers_expected_patterns(self, small_bundle):
        specs = oracle_specs(small_bundle)
        expected = (
            small_bundle.spec.wrappers
            + small_bundle.spec.param_consumers
            + 1
            + small_bundle.spec.state_test_overrides
            + small_bundle.spec.misleading_setters
        )
        assert oracle_annotation_count(small_bundle) == expected
        assert len(specs) == expected

    def test_full_scale_oracle_is_26(self):
        bundle = generate_pmd_corpus(CorpusSpec())
        assert oracle_annotation_count(bundle) == 26

    def test_consume_first_demands_hasnext(self, small_bundle):
        specs = oracle_specs(small_bundle)
        consume = [
            spec
            for name, spec in specs.items()
            if name.endswith("consumeFirst")
        ][0]
        assert consume.requires[0].state == "HASNEXT"

    def test_state_test_specs_have_indicates(self, small_bundle):
        specs = oracle_specs(small_bundle)
        state_tests = [
            spec for spec in specs.values() if spec.is_state_test
        ]
        assert len(state_tests) == small_bundle.spec.state_test_overrides


class TestTable3Programs:
    def test_branchy_program_parses(self):
        source = generate_branchy_program(8)
        unit = parse_compilation_unit(source)
        assert unit.types[0].name == "Branchy"
        assert len(unit.types[0].methods) == 8

    def test_inlined_program_parses(self):
        source = generate_inlined_program(8)
        unit = parse_compilation_unit(source)
        assert unit.types[0].name == "Inlined"
        assert len(unit.types[0].methods) == 1

    def test_default_branchy_size_near_400_lines(self):
        source = generate_branchy_program(24)
        assert 380 <= len(source.splitlines()) <= 440

    def test_branchy_and_inlined_have_same_iterator_count(self):
        branchy = generate_branchy_program(10)
        inlined = generate_inlined_program(10)
        assert branchy.count(".iterator()") == inlined.count(".iterator()")


class TestScaleOut:
    """``scaled(factor)`` with factor > 1: the Table 2 warning-producing
    pattern mix is frozen while bulk (classes, methods, lines, guarded
    loops, wrappers) scales, a second protocol family interleaves, and
    seeded filler call chains densify the call graph."""

    @pytest.fixture(scope="class")
    def base_spec(self):
        return CorpusSpec().scaled(0.08)

    @pytest.fixture(scope="class")
    def big_spec(self, base_spec):
        return base_spec.scaled(2.0)

    @pytest.fixture(scope="class")
    def big_bundle(self, big_spec):
        return generate_pmd_corpus(big_spec)

    @pytest.fixture(scope="class")
    def big_program(self, big_bundle):
        return resolve_program(
            [parse_compilation_unit(s) for s in big_bundle.all_sources()]
        )

    def test_bulk_scales_but_pattern_mix_is_frozen(
        self, base_spec, big_spec
    ):
        assert big_spec.methods == 2 * base_spec.methods
        assert big_spec.classes == 2 * base_spec.classes
        assert big_spec.lines == 2 * base_spec.lines
        # Warning-producing counts are the invariant core.
        assert big_spec.unguarded_direct == base_spec.unguarded_direct
        assert big_spec.wrapper_users == base_spec.wrapper_users
        assert big_spec.param_consumers == base_spec.param_consumers
        assert big_spec.misleading_setters == base_spec.misleading_setters
        # Scale-out knobs engage.
        assert big_spec.protocol_families >= 2
        assert big_spec.stream_consumers > 0
        assert big_spec.filler_call_density > 0

    def test_counts_are_exact(self, big_spec, big_bundle, big_program):
        api_classes = {
            "Iterator", "Iterable", "Collection", "ListIterator",
            "ArrayList", "Stream", "FileSystem", "ByteStream",
        }
        assert big_bundle.line_count() == big_spec.lines
        assert len(big_bundle.sources) == big_spec.classes
        client_methods = [
            ref
            for ref in big_program.all_methods()
            if ref.class_decl.name not in api_classes
        ]
        assert len(client_methods) == big_spec.methods

    def test_stream_family_present(self, big_bundle):
        assert big_bundle.extra_api_sources
        assert "stream-consumer" in set(big_bundle.registry.values())
        assert any(
            "StreamConsumer" in source for source in big_bundle.sources
        )

    def test_warning_count_invariant_at_scale(
        self, big_spec, big_program
    ):
        warnings = check_program(big_program)
        expected = (
            big_spec.unguarded_direct
            + 2 * big_spec.wrapper_users
            + 2 * big_spec.param_consumers
            + 2  # consumeFirst body
            + big_spec.misleading_setters
        )
        assert len(warnings) == expected

    def test_seeded_determinism(self, big_spec):
        from dataclasses import replace

        first = generate_pmd_corpus(big_spec)
        second = generate_pmd_corpus(big_spec)
        assert first.sources == second.sources
        other_seed = generate_pmd_corpus(replace(big_spec, seed=1))
        assert first.sources != other_seed.sources

    def test_filler_call_chains_are_acyclic_references(self, big_bundle):
        # A filler that calls opN does so only on earlier methods of the
        # same class, so the synthetic call graph stays a DAG.
        import re

        for source in big_bundle.sources:
            if "Filler" not in source:
                continue
            for match in re.finditer(r"op(\d+)\(b\);", source):
                callee = int(match.group(1))
                caller = int(
                    source[: match.start()].rsplit("int op", 1)[1]
                    .split("(", 1)[0]
                )
                assert callee < caller
