"""Tests for ANEK-INFER, summaries, extraction, and the applier."""

import pytest

from repro.core import AnekInference, InferenceSettings
from repro.core.applier import apply_specs, render_annotated_sources
from repro.core.extract import (
    clause_from_marginal,
    count_clauses,
    count_nonempty,
    pick_kind,
)
from repro.core.heuristics import HeuristicConfig
from repro.core.summaries import (
    MethodSummary,
    SummaryStore,
    TargetMarginal,
    clip_marginal,
    satisfaction_evidence,
)
from repro.corpus.examples import FIGURE3_CLIENT
from repro.permissions.spec import spec_of_method
from tests.conftest import build_program, method_ref


def infer(program, **settings_kwargs):
    settings = InferenceSettings(**settings_kwargs)
    inference = AnekInference(program, settings=settings)
    results = inference.run()
    specs = inference.extract_specs(results)
    return inference, {
        ref.qualified_name: spec for ref, spec in specs.items()
    }


class TestSummaries:
    def test_update_reports_change(self):
        store = SummaryStore(change_threshold=0.01)
        marginal = TargetMarginal(kind={"full": 0.8, "none": 0.2})
        assert store.update("m", "pre", "this", marginal)
        assert not store.update("m", "pre", "this", marginal)

    def test_small_changes_below_threshold_ignored(self):
        store = SummaryStore(change_threshold=0.05)
        store.update("m", "pre", "x", TargetMarginal(kind={"full": 0.80}))
        assert not store.update(
            "m", "pre", "x", TargetMarginal(kind={"full": 0.81})
        )

    def test_evidence_keyed_by_site(self):
        store = SummaryStore()
        marginal = TargetMarginal(kind={"pure": 1.0})
        store.deposit_evidence("callee", "pre", "it", ("caller", 0), marginal)
        store.deposit_evidence("callee", "pre", "it", ("caller", 1), marginal)
        assert len(store.evidence_for("callee", "pre", "it")) == 2
        assert store.evidence_count() == 2

    def test_clip_marginal_bounds_certainty(self):
        clipped = clip_marginal(
            TargetMarginal(kind={"full": 0.999, "none": 0.001}), 0.85
        )
        assert max(clipped.kind.values()) <= 0.86

    def test_satisfaction_evidence_never_vetoes_none(self):
        supply = TargetMarginal(kind={"unique": 1.0})
        evidence = satisfaction_evidence(supply)
        assert evidence.kind["none"] >= max(
            value for key, value in evidence.kind.items() if key != "none"
        ) * 0.99

    def test_satisfaction_evidence_vetoes_unmeetable_requirement(self):
        supply = TargetMarginal(kind={"pure": 1.0})
        evidence = satisfaction_evidence(supply)
        assert evidence.kind["unique"] < evidence.kind["pure"]

    def test_summary_slots(self):
        summary = MethodSummary("m")
        marginal = TargetMarginal(kind={"full": 1.0})
        summary.set("result", "result", marginal)
        assert summary.get("result", "result") is marginal


class TestExtraction:
    def test_pick_kind_gates_on_none_mass(self):
        assert pick_kind({"full": 0.5, "none": 0.5}) is None

    def test_pick_kind_weakest_plausible(self):
        dist = {
            "unique": 0.19, "full": 0.19, "share": 0.19,
            "immutable": 0.19, "pure": 0.19, "none": 0.05,
        }
        assert pick_kind(dist) == "pure"

    def test_pick_kind_concentrated_demand(self):
        dist = {"unique": 0.45, "full": 0.45, "share": 0.02,
                "immutable": 0.02, "pure": 0.02, "none": 0.04}
        assert pick_kind(dist) == "full"

    def test_clause_includes_state_above_threshold(self):
        marginal = TargetMarginal(
            kind={"full": 0.9, "none": 0.02},
            state={"ALIVE": 0.2, "HASNEXT": 0.75, "END": 0.05},
        )
        clause = clause_from_marginal("it", marginal, threshold=0.5)
        assert clause.kind == "full"
        assert clause.state == "HASNEXT"

    def test_clause_defaults_to_alive_below_threshold(self):
        marginal = TargetMarginal(
            kind={"full": 0.9, "none": 0.02},
            state={"ALIVE": 0.4, "HASNEXT": 0.35, "END": 0.25},
        )
        clause = clause_from_marginal("it", marginal, threshold=0.5)
        assert clause.state == "ALIVE"

    def test_no_clause_without_kind_marginal(self):
        assert clause_from_marginal("x", TargetMarginal(), 0.5) is None

    def test_count_helpers(self):
        from repro.permissions.spec import MethodSpec, PermClause

        specs = {
            "a": MethodSpec(requires=[PermClause("full", "x")]),
            "b": MethodSpec(),
        }
        assert count_nonempty(specs) == 1
        assert count_clauses(specs) == 1


class TestEndToEndInference:
    def test_figure3_conflict_resolution(self, figure3_program):
        _, specs = infer(figure3_program)
        wrapper = specs["Row.createColIter"]
        result_clauses = [
            clause for clause in wrapper.ensures if clause.target == "result"
        ]
        assert len(result_clauses) == 1
        # The 167-vs-3 vote of the paper: ALIVE wins over HASNEXT, and H3
        # makes the returned permission unique.
        assert result_clauses[0].state == "ALIVE"
        assert result_clauses[0].kind == "unique"

    def test_param_consumer_gets_full(self):
        program = build_program(
            """
            class D {
                int drain(Iterator<Integer> it) {
                    int acc = 0;
                    while (it.hasNext()) { acc = acc + it.next(); }
                    return acc;
                }
            }
            """
        )
        _, specs = infer(program)
        drain = specs["D.drain"]
        requires = {c.target: c for c in drain.requires}
        assert requires["it"].kind == "full"

    def test_annotated_methods_keep_declared_specs(self, api_program):
        _, specs = infer(api_program)
        # ListIterator.next is directly annotated; extraction keeps it.
        spec = specs["ListIterator.next"]
        assert spec.requires[0].state == "HASNEXT"

    def test_unused_params_get_no_annotations(self):
        program = build_program(
            "class U { int id(Collection<Integer> c, int x) { return x; } }"
        )
        _, specs = infer(program)
        assert specs["U.id"].is_empty

    def test_worklist_respects_max_iters(self, figure3_program):
        inference = AnekInference(
            figure3_program, settings=InferenceSettings(max_worklist_iters=2)
        )
        inference.run()
        assert inference.stats.solves <= 2

    def test_stats_populated(self, figure3_program):
        inference, _ = infer(figure3_program)
        assert inference.stats.methods > 0
        assert inference.stats.factors > 0
        assert inference.stats.elapsed_seconds > 0
        assert inference.stats.constraint_counts

    def test_summary_flow_between_methods(self):
        # The wrapper's unique(result) must reach the caller through the
        # summary store, making the caller's loop verify.
        program = build_program(
            """
            class W {
                @Perm("share") Collection<Integer> items;
                Iterator<Integer> createIter() { return items.iterator(); }
                int use() {
                    int acc = 0;
                    Iterator<Integer> it = createIter();
                    while (it.hasNext()) { acc = acc + it.next(); }
                    return acc;
                }
            }
            """
        )
        inference = AnekInference(program)
        specs = inference.extract_specs()
        by_name = {ref.qualified_name: s for ref, s in specs.items()}
        assert any(
            clause.kind == "unique"
            for clause in by_name["W.createIter"].ensures
        )
        from repro.plural.checker import check_program

        apply_specs(program, specs)
        warnings = check_program(program)
        assert warnings == []


class TestApplier:
    def test_apply_specs_attaches_annotations(self):
        program = build_program(
            """
            class W {
                @Perm("share") Collection<Integer> items;
                Iterator<Integer> createIter() { return items.iterator(); }
            }
            """
        )
        inference = AnekInference(program)
        specs = inference.extract_specs()
        changed = apply_specs(program, specs)
        assert changed >= 1
        method = method_ref(program, "W", "createIter").method_decl
        spec = spec_of_method(method)
        assert not spec.is_empty

    def test_existing_annotations_not_replaced_by_default(self, api_program):
        inference = AnekInference(api_program)
        specs = inference.extract_specs()
        list_iter_next = method_ref(api_program, "ListIterator", "next")
        before = spec_of_method(list_iter_next.method_decl)
        apply_specs(api_program, specs)
        after = spec_of_method(list_iter_next.method_decl)
        assert before == after

    def test_rendered_sources_parse_back(self):
        program = build_program(
            """
            class W {
                @Perm("share") Collection<Integer> items;
                Iterator<Integer> createIter() { return items.iterator(); }
            }
            """
        )
        inference = AnekInference(program)
        apply_specs(program, inference.extract_specs())
        sources = render_annotated_sources(program)
        from repro.java.parser import parse_compilation_unit

        for source in sources:
            parse_compilation_unit(source)  # must not raise
