"""Shared fixtures: the annotated Iterator API and common programs."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.txt from the current pipeline output",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")

from repro.corpus.iterator_api import ITERATOR_API_SOURCE
from repro.java.parser import parse_compilation_unit
from repro.java.symbols import MethodRef, resolve_program


def build_program(*client_sources, include_api=True):
    """Parse client sources (plus the Iterator API) into a Program."""
    sources = []
    if include_api:
        sources.append(ITERATOR_API_SOURCE)
    sources.extend(client_sources)
    return resolve_program(
        [parse_compilation_unit(source) for source in sources]
    )


def method_ref(program, class_name, method_name):
    """Look up a MethodRef by names."""
    decl = program.lookup_class(class_name)
    assert decl is not None, "no class %s" % class_name
    methods = decl.find_method(method_name)
    assert methods, "no method %s.%s" % (class_name, method_name)
    return MethodRef(decl, methods[0])


@pytest.fixture
def api_program():
    return build_program()


@pytest.fixture
def figure3_program():
    from repro.corpus.examples import FIGURE3_CLIENT

    return build_program(FIGURE3_CLIENT)
